//! FIO-runner ↔ cluster integration: every workload shape completes
//! error-free against a live cluster, and tuning affects outcomes in the
//! expected direction.

use afcstore::common::{BlockTarget, MIB};
use afcstore::workload::{self, JobSpec, Rw};
use afcstore::{Cluster, DeviceProfile, OsdTuning};
use std::time::Duration;

fn cluster(tuning: OsdTuning) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(32)
        .tuning(tuning)
        .devices(DeviceProfile::clean())
        .build()
        .unwrap()
}

fn prefill(img: &afcstore::RbdImage) {
    let buf = vec![7u8; MIB as usize];
    let mut off = 0;
    while off + MIB <= BlockTarget::size(img) {
        img.write_at(off, &buf).unwrap();
        off += MIB;
    }
}

#[test]
fn all_patterns_run_clean() {
    let c = cluster(OsdTuning::afceph());
    let img = c.create_image("wl", 32 * MIB).unwrap();
    prefill(&img);
    for rw in [
        Rw::RandWrite,
        Rw::RandRead,
        Rw::SeqWrite,
        Rw::SeqRead,
        Rw::RandRw { read_pct: 70 },
    ] {
        let spec = JobSpec::new(rw)
            .bs(4096)
            .iodepth(2)
            .runtime(Duration::from_millis(600));
        let r = workload::run(&spec, &img);
        assert_eq!(r.errors, 0, "{rw:?} had errors");
        assert!(r.ops > 10, "{rw:?} too few ops: {}", r.ops);
        assert!(r.mean_lat() > Duration::ZERO);
    }
    c.shutdown();
}

#[test]
fn large_blocks_give_more_bandwidth_fewer_iops() {
    let c = cluster(OsdTuning::afceph());
    let img = c.create_image("bw", 32 * MIB).unwrap();
    prefill(&img);
    let small = workload::run(
        &JobSpec::new(Rw::SeqRead)
            .bs(4096)
            .iodepth(2)
            .runtime(Duration::from_secs(1)),
        &img,
    );
    let large = workload::run(
        &JobSpec::new(Rw::SeqRead)
            .bs(MIB)
            .iodepth(2)
            .runtime(Duration::from_secs(1)),
        &img,
    );
    assert!(
        large.bandwidth() > small.bandwidth(),
        "large {} <= small {}",
        large.bandwidth(),
        small.bandwidth()
    );
    assert!(large.iops() < small.iops());
    c.shutdown();
}

#[test]
fn afceph_beats_community_on_small_random_writes() {
    // The paper's headline, asserted end-to-end with a margin that holds
    // under CI noise.
    let mut results = Vec::new();
    for tuning in [OsdTuning::community(), OsdTuning::afceph()] {
        let c = cluster(tuning);
        let img = c.create_image("cmp", 32 * MIB).unwrap();
        prefill(&img);
        let spec = JobSpec::new(Rw::RandWrite)
            .bs(4096)
            .numjobs(2)
            .iodepth(2)
            .runtime(Duration::from_secs(2));
        let r = workload::run(&spec, &img);
        assert_eq!(r.errors, 0);
        results.push((r.iops(), r.mean_lat()));
        c.shutdown();
    }
    let (community, afceph) = (results[0], results[1]);
    assert!(
        afceph.0 > community.0 * 1.2,
        "afceph {:.0} IOPS not clearly above community {:.0}",
        afceph.0,
        community.0
    );
    assert!(
        afceph.1 < community.1,
        "afceph latency {:?} not below community {:?}",
        afceph.1,
        community.1
    );
}

#[test]
fn nagle_disabled_cuts_single_stream_latency() {
    let mut lats = Vec::new();
    for nagle in [true, false] {
        let c = cluster(OsdTuning {
            nagle,
            ..OsdTuning::community()
        });
        let img = c.create_image("ng", 16 * MIB).unwrap();
        let spec = JobSpec::new(Rw::RandWrite)
            .bs(4096)
            .runtime(Duration::from_secs(1));
        let r = workload::run(&spec, &img);
        lats.push(r.mean_lat());
        c.shutdown();
    }
    assert!(
        lats[1] < lats[0],
        "no-nagle {:?} should beat nagle {:?} at queue depth 1",
        lats[1],
        lats[0]
    );
}
