//! Integration tests for failure handling: degraded operation, journal
//! replay, device faults.

use afcstore::common::{AfcError, OsdId, PgId};
use afcstore::{Cluster, DeviceProfile, OsdTuning};

fn cluster() -> Cluster {
    Cluster::builder()
        .nodes(3)
        .osds_per_node(2)
        .replication(2)
        .pg_num(48)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()
        .unwrap()
}

#[test]
fn degraded_reads_and_writes_after_osd_down() {
    let c = cluster();
    let client = c.client().unwrap();
    for i in 0..24 {
        client
            .write_object(&format!("pre{i}"), 0, b"before-failure")
            .unwrap();
    }
    c.monitor().mark_down(OsdId(2));
    // Everything written before stays readable (served by survivors).
    for i in 0..24 {
        assert_eq!(
            client.read_object(&format!("pre{i}"), 0, 14).unwrap(),
            b"before-failure"
        );
    }
    // New writes succeed (degraded acks with fewer replicas).
    for i in 0..12 {
        client
            .write_object(&format!("post{i}"), 0, b"after-failure")
            .unwrap();
        assert_eq!(
            client.read_object(&format!("post{i}"), 0, 13).unwrap(),
            b"after-failure"
        );
    }
    // No PG's acting set references the dead OSD.
    for seq in 0..48 {
        let acting = c
            .monitor()
            .map()
            .pg_acting(PgId {
                pool: c.pool(),
                seq,
            })
            .unwrap();
        assert!(!acting.contains(&OsdId(2)));
    }
    c.shutdown();
}

#[test]
fn whole_node_failure_still_serves() {
    let c = cluster();
    let client = c.client().unwrap();
    for i in 0..16 {
        client
            .write_object(&format!("n{i}"), 0, b"node-test")
            .unwrap();
    }
    // Take down node 0 entirely (osd.0 and osd.1 — host failure domain
    // means no PG had both replicas there).
    c.monitor().mark_down(OsdId(0));
    c.monitor().mark_down(OsdId(1));
    for i in 0..16 {
        assert_eq!(
            client.read_object(&format!("n{i}"), 0, 9).unwrap(),
            b"node-test"
        );
    }
    c.shutdown();
}

#[test]
fn journal_replay_is_idempotent_and_preserves_data() {
    let c = cluster();
    let client = c.client().unwrap();
    for i in 0..20 {
        client
            .write_object(&format!("jr{i}"), 0, format!("payload{i}").as_bytes())
            .unwrap();
    }
    // Replay whatever is still untrimmed on every OSD — twice.
    for _ in 0..2 {
        for osd in c.osds() {
            osd.replay_journal().unwrap();
        }
    }
    for i in 0..20 {
        let want = format!("payload{i}");
        assert_eq!(
            client
                .read_object(&format!("jr{i}"), 0, want.len() as u32)
                .unwrap(),
            want.as_bytes()
        );
    }
    c.shutdown();
}

#[test]
fn losing_all_replicas_fails_cleanly() {
    let c = cluster();
    let client = c.client().unwrap();
    client.write_object("doomed", 0, b"x").unwrap();
    let obj = afcstore::common::ObjectId::new(c.pool(), "doomed");
    let (pg, acting) = c.monitor().map().object_placement(&obj).unwrap();
    for o in acting {
        c.monitor().mark_down(o);
    }
    // The PG has no acting set: client submission errors instead of hanging.
    let err = client.read_object("doomed", 0, 1).unwrap_err();
    assert!(matches!(err, AfcError::NotFound(_)), "unexpected: {err}");
    let map_err = c.monitor().map().pg_acting(pg).unwrap_err();
    assert!(matches!(map_err, AfcError::NotFound(_)));
    c.shutdown();
}

#[test]
fn client_retries_after_remap() {
    // A client holding a pre-failure map must transparently retry to the
    // new primary (shared-map refresh + misdirected retry path).
    let c = cluster();
    let client = c.client().unwrap();
    client.write_object("remap", 0, b"v1").unwrap();
    let obj = afcstore::common::ObjectId::new(c.pool(), "remap");
    let (_, acting) = c.monitor().map().object_placement(&obj).unwrap();
    c.monitor().mark_down(acting[0]); // kill the primary
                                      // Old primary is gone; the write must land on the promoted survivor.
    client.write_object("remap", 0, b"v2").unwrap();
    assert_eq!(client.read_object("remap", 0, 2).unwrap(), b"v2");
    c.shutdown();
}
