//! Property-based cross-crate tests.
//!
//! The central safety claim of the paper is that the optimized paths are
//! *semantically equivalent* to the community paths — only faster. These
//! properties drive randomized operation sequences through both
//! configurations and demand identical observable state.

use afc_device::{Nvram, NvramConfig};
use afc_filestore::{FileStore, FileStoreConfig, Transaction, TxOp};
use afcstore::common::{BlockTarget, MIB};
use afcstore::{Cluster, DeviceProfile, OsdTuning};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized filestore operation.
#[derive(Debug, Clone)]
enum FsOp {
    Write {
        obj: u8,
        off: u16,
        fill: u8,
        len: u16,
    },
    Truncate {
        obj: u8,
        size: u16,
    },
    Remove {
        obj: u8,
    },
    Omap {
        obj: u8,
        key: u8,
        val: u8,
    },
}

fn fsop() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..4, 0u16..8192, any::<u8>(), 1u16..2048).prop_map(|(obj, off, fill, len)| {
            FsOp::Write {
                obj,
                off,
                fill,
                len,
            }
        }),
        (0u8..4, 0u16..8192).prop_map(|(obj, size)| FsOp::Truncate { obj, size }),
        (0u8..4).prop_map(|obj| FsOp::Remove { obj }),
        (0u8..4, any::<u8>(), any::<u8>()).prop_map(|(obj, key, val)| FsOp::Omap { obj, key, val }),
    ]
}

fn apply(fs: &FileStore, ops: &[FsOp]) {
    for op in ops {
        let mut t = Transaction::new();
        match op {
            FsOp::Write {
                obj,
                off,
                fill,
                len,
            } => {
                let name = format!("obj{obj}");
                t.push(TxOp::Touch {
                    object: name.clone(),
                });
                t.push(TxOp::Write {
                    object: name,
                    offset: *off as u64,
                    data: Bytes::from(vec![*fill; *len as usize]),
                });
            }
            FsOp::Truncate { obj, size } => {
                let name = format!("obj{obj}");
                if !fs.exists(&name) {
                    continue;
                }
                t.push(TxOp::Truncate {
                    object: name,
                    size: *size as u64,
                });
            }
            FsOp::Remove { obj } => {
                let name = format!("obj{obj}");
                if !fs.exists(&name) {
                    continue;
                }
                t.push(TxOp::Remove { object: name });
            }
            FsOp::Omap { obj, key, val } => {
                t.push(TxOp::OmapSetKeys {
                    object: format!("obj{obj}"),
                    keys: vec![(Bytes::from(format!("k{key}")), Bytes::from(vec![*val; 16]))],
                });
            }
        }
        fs.apply_sync(t).unwrap();
    }
}

type ObjState = (String, Option<Vec<u8>>, Vec<(Vec<u8>, Vec<u8>)>);

fn observable_state(fs: &FileStore) -> Vec<ObjState> {
    let mut out = Vec::new();
    for obj in 0..4u8 {
        let name = format!("obj{obj}");
        let data = if fs.exists(&name) {
            Some(fs.read(&name, 0, 16384).unwrap())
        } else {
            None
        };
        let omap = fs
            .omap_scan(&name)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        out.push((name, data, omap));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Community and light-weight transaction execution are observationally
    /// equivalent for any operation sequence.
    #[test]
    fn filestore_profiles_equivalent(ops in proptest::collection::vec(fsop(), 1..40)) {
        let mk = |cfg: FileStoreConfig| {
            FileStore::new(Arc::new(Nvram::new(NvramConfig::pmc_8g())), cfg)
                .expect("open filestore")
        };
        let community = mk(FileStoreConfig::community());
        let lwt = mk(FileStoreConfig::lightweight());
        apply(&community, &ops);
        apply(&lwt, &ops);
        prop_assert_eq!(observable_state(&community), observable_state(&lwt));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// An RBD image behaves exactly like a flat byte array for any write
    /// pattern, across both cluster configurations.
    #[test]
    fn rbd_image_matches_model(
        writes in proptest::collection::vec((0u64..(8 * 1024 * 1024 - 4096), 1usize..4096, any::<u8>()), 1..12),
        afceph in any::<bool>(),
    ) {
        let tuning = if afceph { OsdTuning::afceph() } else { OsdTuning::community() };
        let cluster = Cluster::builder()
            .nodes(2).osds_per_node(1).replication(2).pg_num(16)
            .tuning(tuning)
            .devices(DeviceProfile::clean())
            .build().unwrap();
        let img = cluster.create_image("prop", 8 * MIB).unwrap();
        let mut model = vec![0u8; 8 * MIB as usize];
        for (off, len, fill) in &writes {
            let data = vec![*fill; *len];
            img.write_at(*off, &data).unwrap();
            model[*off as usize..*off as usize + *len].copy_from_slice(&data);
        }
        for (off, len, _) in &writes {
            let got = img.read_at(*off, *len).unwrap();
            prop_assert_eq!(&got, &model[*off as usize..*off as usize + *len]);
        }
        cluster.shutdown();
    }
}
