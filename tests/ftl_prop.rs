//! Property-based tests for the stream-aware FTL.
//!
//! The FTL is the one component where a bookkeeping slip silently loses
//! user data: a live page dropped during garbage collection is gone with
//! no error path. These properties drive arbitrary write/trim
//! interleavings (which embed GC at arbitrary points via free-block
//! pressure) through the model and demand the structural invariants hold
//! after every step — forward/reverse map agreement, valid-count
//! consistency, no live pages on free blocks, flash WA >= 1.0 — plus
//! per-stream byte conservation at the device layer.

use afc_device::{BlockDev, Ftl, FtlConfig, IoReq, Ssd, SsdConfig, StreamId};
use proptest::prelude::*;
use std::time::Duration;

/// Small geometry so pressure GC fires within a few dozen ops:
/// 8 pages/block, 32 blocks, 30% over-provisioning.
fn tiny(streams: bool) -> FtlConfig {
    FtlConfig {
        page_size: 4096,
        pages_per_block: 8,
        blocks: 32,
        op_ratio: 0.3,
        gc_free_blocks: 2,
        streams_enabled: streams,
        gc_page_cost: Duration::from_micros(60),
    }
}

const STREAMS: [StreamId; 6] = StreamId::ALL;

#[derive(Debug, Clone)]
enum FtlOp {
    /// Host write of `pages` pages starting at logical page `lpn`.
    Write { lpn: u16, pages: u8, stream: u8 },
    /// Trim (unmap) `pages` pages starting at logical page `lpn`.
    Trim { lpn: u16, pages: u8 },
}

fn ftl_op() -> impl Strategy<Value = FtlOp> {
    prop_oneof![
        4 => (0u16..256, 1u8..9, 0u8..6)
            .prop_map(|(lpn, pages, stream)| FtlOp::Write { lpn, pages, stream }),
        1 => (0u16..256, 1u8..17).prop_map(|(lpn, pages)| FtlOp::Trim { lpn, pages }),
    ]
}

fn apply(ftl: &mut Ftl, ops: &[FtlOp]) {
    let page = 4096u64;
    for op in ops {
        match op {
            FtlOp::Write { lpn, pages, stream } => {
                ftl.host_write(
                    *lpn as u64 * page,
                    *pages as u32 * page as u32,
                    STREAMS[*stream as usize],
                );
            }
            FtlOp::Trim { lpn, pages } => {
                ftl.trim(*lpn as u64 * page, *pages as u32 * page as u32);
            }
        }
        // The full structural audit after every single step, so a
        // violation is pinned to the op that introduced it, not the
        // op that tripped over it later.
        ftl.check_invariants();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// No interleaving of writes, trims, and the GC they provoke ever
    /// loses a live page or corrupts the maps — on a clean drive, with
    /// and without stream separation.
    #[test]
    fn ftl_invariants_hold_under_arbitrary_interleavings(
        ops in proptest::collection::vec(ftl_op(), 1..120),
        streams in any::<bool>(),
    ) {
        let mut ftl = Ftl::new(tiny(streams));
        apply(&mut ftl, &ops);
        prop_assert!(ftl.flash_wa() >= 1.0);
        let (host, copied, passes) = ftl.counters();
        // GC only ever copies pages it had a pass for.
        prop_assert!(passes == 0 || copied > 0 || host > 0);
    }

    /// Same property starting from a pre-aged (sustained) drive, where
    /// the very first writes can already trigger collection.
    #[test]
    fn ftl_invariants_hold_on_a_pre_aged_drive(
        ops in proptest::collection::vec(ftl_op(), 1..80),
        streams in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut ftl = Ftl::new(tiny(streams));
        ftl.pre_age(seed);
        ftl.check_invariants();
        apply(&mut ftl, &ops);
        prop_assert!(ftl.flash_wa() >= 1.0);
    }

    /// Device-layer conservation: every byte the SSD reports written is
    /// attributed to exactly one stream, and flash WA never dips below
    /// 1.0 regardless of the stream mix.
    #[test]
    fn ssd_stream_bytes_are_conserved(
        writes in proptest::collection::vec((0u64..64, 1u32..5, 0u8..6), 1..64),
    ) {
        // Sustained profile: the FTL arrives pre-aged, so collection is
        // live from the first overwrite and WA accounting is exercised.
        let cfg = SsdConfig::sata3_sustained().with_seed(7).with_streams(true);
        let ssd = Ssd::new(cfg);
        for (page, pages, stream) in &writes {
            ssd.submit(IoReq::write_stream(
                page * 4096,
                pages * 4096,
                STREAMS[*stream as usize],
            ))
            .unwrap();
        }
        let s = ssd.stats();
        prop_assert_eq!(s.stream_bytes.iter().sum::<u64>(), s.bytes_written);
        prop_assert!(s.flash_write_amplification() >= 1.0);
    }
}
