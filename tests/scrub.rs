//! Deep-scrub integration tests: replica verification and corruption
//! detection.

use afcstore::filestore::{Transaction, TxOp};
use afcstore::{Cluster, DeviceProfile, OsdTuning};
use bytes::Bytes;

fn cluster() -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(32)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()
        .unwrap()
}

#[test]
fn scrub_clean_cluster_reports_clean() {
    let c = cluster();
    let client = c.client().unwrap();
    for i in 0..30 {
        client
            .write_object(&format!("s{i}"), 0, format!("scrub-payload-{i}").as_bytes())
            .unwrap();
    }
    c.quiesce();
    let report = c.deep_scrub().unwrap();
    assert!(
        report.is_clean(),
        "unexpected inconsistencies: {:?}",
        report.inconsistent
    );
    assert_eq!(report.objects_checked, 30);
    assert_eq!(report.pgs_checked, 32);
    c.shutdown();
}

#[test]
fn scrub_detects_injected_corruption() {
    let c = cluster();
    let client = c.client().unwrap();
    client
        .write_object("victim", 0, b"pristine-content")
        .unwrap();
    for i in 0..10 {
        client.write_object(&format!("ok{i}"), 0, b"fine").unwrap();
    }
    c.quiesce();
    // Flip bytes in ONE replica directly (bit rot).
    let obj = afcstore::common::ObjectId::new(c.pool(), "victim");
    let (_pg, acting) = c.monitor().map().object_placement(&obj).unwrap();
    let replica = c.osd(acting[1]).unwrap();
    let mut t = Transaction::new();
    t.push(TxOp::Write {
        object: obj.to_string(),
        offset: 0,
        data: Bytes::from_static(b"CORRUPTED!"),
    });
    replica.store().apply_sync(t).unwrap();
    let report = c.deep_scrub().unwrap();
    assert_eq!(report.inconsistent.len(), 1, "{:?}", report.inconsistent);
    assert!(report.inconsistent[0].1.contains("victim"));
    c.shutdown();
}

#[test]
fn scrub_detects_missing_replica() {
    let c = cluster();
    let client = c.client().unwrap();
    client.write_object("ghost", 0, b"here-and-gone").unwrap();
    c.quiesce();
    let obj = afcstore::common::ObjectId::new(c.pool(), "ghost");
    let (_pg, acting) = c.monitor().map().object_placement(&obj).unwrap();
    let replica = c.osd(acting[1]).unwrap();
    let mut t = Transaction::new();
    t.push(TxOp::Remove {
        object: obj.to_string(),
    });
    replica.store().apply_sync(t).unwrap();
    let report = c.deep_scrub().unwrap();
    assert_eq!(report.inconsistent.len(), 1);
    c.shutdown();
}
