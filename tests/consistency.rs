//! Cross-crate integration tests: the strong-consistency guarantees the
//! paper's optimizations must preserve ("Our works does not influence Ceph
//! negatively because it preserves the basic semantics of Ceph").

use afcstore::common::{BlockTarget, MIB};
use afcstore::messages::ObjectOp;
use afcstore::{Cluster, DeviceProfile, OsdTuning};
use bytes::Bytes;
use std::sync::Arc;

fn cluster(tuning: OsdTuning) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(32)
        .tuning(tuning)
        .devices(DeviceProfile::clean())
        .build()
        .unwrap()
}

/// Every configuration must give identical, correct results.
fn tunings() -> Vec<(&'static str, OsdTuning)> {
    vec![
        ("community", OsdTuning::community()),
        ("afceph", OsdTuning::afceph()),
        (
            "afceph+ordered",
            OsdTuning {
                ordered_acks: true,
                ..OsdTuning::afceph()
            },
        ),
    ]
}

#[test]
fn read_your_writes_across_configs() {
    for (name, tuning) in tunings() {
        let cluster = cluster(tuning);
        let client = cluster.client().unwrap();
        for i in 0..40 {
            let body = format!("object-{i}-payload");
            client
                .write_object(&format!("o{i}"), 0, body.as_bytes())
                .unwrap();
            let back = client
                .read_object(&format!("o{i}"), 0, body.len() as u32)
                .unwrap();
            assert_eq!(back, body.as_bytes(), "{name}: o{i}");
        }
        cluster.shutdown();
    }
}

#[test]
fn overwrites_are_strongly_consistent() {
    for (name, tuning) in tunings() {
        let cluster = cluster(tuning);
        let client = cluster.client().unwrap();
        for v in 0..25u8 {
            client.write_object("hot", 0, &[v; 256]).unwrap();
            let back = client.read_object("hot", 0, 256).unwrap();
            assert_eq!(back, vec![v; 256], "{name}: stale read after ack (v={v})");
        }
        cluster.shutdown();
    }
}

#[test]
fn pipelined_writes_to_one_object_apply_in_order() {
    for (name, tuning) in tunings() {
        let cluster = cluster(tuning);
        let client = cluster.client().unwrap();
        // Issue 30 async overwrites of the same object without waiting.
        let handles: Vec<_> = (0..30u8)
            .map(|v| {
                client
                    .write_object_async("seq", 0, Bytes::from(vec![v; 512]))
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        // Per-PG ordering: the final state must be the LAST issued write.
        let back = client.read_object("seq", 0, 512).unwrap();
        assert_eq!(back, vec![29u8; 512], "{name}: write order violated");
        cluster.shutdown();
    }
}

#[test]
fn concurrent_clients_distinct_objects() {
    let cluster = cluster(OsdTuning::afceph());
    let cluster = Arc::new(cluster);
    std::thread::scope(|s| {
        for t in 0..6 {
            let cluster = Arc::clone(&cluster);
            s.spawn(move || {
                let client = cluster.client().unwrap();
                for i in 0..25 {
                    let name = format!("t{t}-o{i}");
                    let body = format!("{t}/{i}");
                    client.write_object(&name, 0, body.as_bytes()).unwrap();
                    assert_eq!(
                        client.read_object(&name, 0, body.len() as u32).unwrap(),
                        body.as_bytes()
                    );
                }
            });
        }
    });
    cluster.shutdown();
}

#[test]
fn data_is_on_both_replicas() {
    let cluster = cluster(OsdTuning::afceph());
    let client = cluster.client().unwrap();
    client
        .write_object("replicated", 0, b"twice-stored")
        .unwrap();
    cluster.quiesce();
    // Find the object's acting set and check each OSD's filestore.
    let obj = afcstore::common::ObjectId::new(cluster.pool(), "replicated");
    let (_pg, acting) = cluster.monitor().map().object_placement(&obj).unwrap();
    assert_eq!(acting.len(), 2);
    for osd_id in acting {
        let osd = cluster.osd(osd_id).unwrap();
        let data = osd.store().read(&obj.to_string(), 0, 12).unwrap();
        assert_eq!(data, b"twice-stored", "{osd_id} missing replica data");
    }
    cluster.shutdown();
}

#[test]
fn rbd_image_data_integrity_random_pattern() {
    let cluster = cluster(OsdTuning::afceph());
    let img = cluster.create_image("integ", 16 * MIB).unwrap();
    // Model the image in memory, apply identical writes, compare regions.
    let mut model = vec![0u8; 16 * MIB as usize];
    let mut seed = 0x1234_5678_u64;
    for _ in 0..60 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let off = (seed >> 16) % (16 * MIB - 8192);
        let len = 512 + (seed >> 40) % 7680;
        let fill = (seed >> 8) as u8;
        let data = vec![fill; len as usize];
        img.write_at(off, &data).unwrap();
        model[off as usize..(off + len) as usize].copy_from_slice(&data);
    }
    for check in 0..20 {
        let off = (check * 793 * 1024) % (16 * MIB - 4096);
        let got = img.read_at(off, 4096).unwrap();
        assert_eq!(
            got,
            model[off as usize..off as usize + 4096],
            "mismatch at {off}"
        );
    }
    cluster.shutdown();
}

#[test]
fn object_api_full_lifecycle() {
    let cluster = cluster(OsdTuning::afceph());
    let client = cluster.client().unwrap();
    client.write_object("life", 100, b"xyz").unwrap();
    assert_eq!(client.stat_object("life").unwrap(), 103);
    client.delete_object("life").unwrap();
    assert!(matches!(
        client.submit("life", ObjectOp::Stat).unwrap().wait(),
        Err(afcstore::common::AfcError::NotFound(_))
    ));
    cluster.shutdown();
}

#[test]
fn async_messenger_cluster_is_equivalent() {
    // Extension: Ceph's AsyncMessenger direction — a fixed receive pool
    // must preserve all ordering/consistency guarantees.
    let cluster = Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(32)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .messenger_mode(afcstore::messenger::MessengerMode::Async { workers: 3 })
        .build()
        .unwrap();
    let client = cluster.client().unwrap();
    for i in 0..30 {
        let body = format!("async-{i}");
        client
            .write_object(&format!("am{i}"), 0, body.as_bytes())
            .unwrap();
        assert_eq!(
            client
                .read_object(&format!("am{i}"), 0, body.len() as u32)
                .unwrap(),
            body.as_bytes()
        );
    }
    // Pipelined overwrites stay ordered through the shared lanes.
    let handles: Vec<_> = (0..20u8)
        .map(|v| {
            client
                .write_object_async("am-seq", 0, Bytes::from(vec![v; 256]))
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    assert_eq!(
        client.read_object("am-seq", 0, 256).unwrap(),
        vec![19u8; 256]
    );
    cluster.quiesce();
    assert!(cluster.deep_scrub().unwrap().is_clean());
    assert_eq!(cluster.network().counters().get("net.lanes"), 3);
    cluster.shutdown();
}
