#!/usr/bin/env bash
# CI gate: static hygiene + format + clippy + tests.
#
# Everything here must pass before merge. Run locally from the workspace
# root:   ./scripts/check.sh        (or: bash scripts/check.sh)
#
# Steps degrade gracefully: if a toolchain component (rustfmt, clippy) is
# not installed, that step is skipped with a warning instead of failing —
# the xtask analyze pass and the test suite always run.

set -u
cd "$(dirname "$0")/.."

failures=0

step() {
    echo
    echo "==> $*"
    if "$@"; then
        echo "    OK"
    else
        echo "    FAILED: $*"
        failures=$((failures + 1))
    fi
}

maybe_step() {
    # maybe_step <probe...> -- <cmd...>: skip (warn) if the probe fails.
    local probe=()
    while [ "$1" != "--" ]; do probe+=("$1"); shift; done
    shift
    if "${probe[@]}" >/dev/null 2>&1; then
        step "$@"
    else
        echo
        echo "==> $* — SKIPPED (${probe[*]} unavailable)"
    fi
}

# 1. Cross-file static analysis (lock order, site names, memory-ordering
#    hygiene; see crates/analyze). Dependency-free, so it works even when
#    the rest of the workspace is broken. Runs before clippy and fails
#    fast; also emits analyze-report.json as a machine-readable artifact
#    for CI annotation.
step cargo run --quiet --package xtask -- analyze --write-report analyze-report.json
if [ "$failures" -ne 0 ]; then
    # Fail fast: span-accurate diagnostics are the most actionable output
    # this script produces; don't bury them under clippy/test noise.
    echo
    echo "check.sh: static analysis failed (see analyze-report.json)"
    exit 1
fi

# 2. Formatting.
maybe_step cargo fmt --version -- cargo fmt --all --check

# 3. Clippy, warnings as errors.
maybe_step cargo clippy --version -- cargo clippy --workspace --all-targets --quiet -- -D warnings

# 4. Build + tests (includes the lockdep stress tests and the PG
#    contention tests in the default debug profile, where lockdep is
#    active).
step cargo build --workspace --quiet
step cargo test --workspace --quiet

# 5. Fault matrix: the crash-recovery harness, injected-fault suite and
#    the failure-detection/recovery suite (heartbeats, peering, degraded
#    I/O, backfill) run as an explicit pass so a fault-handling
#    regression is named in CI output even when the workspace test step
#    is green-but-skipped.
step cargo test --quiet --package afc-core --test crash_recovery --test fault_matrix --test recovery

# 6. API docs build clean (rustdoc warnings are errors: broken intra-doc
#    links and malformed examples fail the gate).
step env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# 7. Performance baseline: re-run the deterministic smoke workload and
#    compare IOPS, write amplification (logical and device-level flash)
#    and per-stage p95 latencies against the committed BENCH_baseline.json
#    (>20% regression fails).
step cargo xtask bench-check

# 8. Multi-stream separation record: run the sustained-device overwrite
#    workload with stream separation off and on, and refresh
#    bench_results/streams.json. The off/on ordering claim (separation
#    strictly lowers flash WA) is gated by the seed-pinned device test in
#    step 4; this step records the cluster-level numbers for EXPERIMENTS.md.
step cargo run --release --quiet --package afc-bench --bin baseline -- --write-streams

# 9. Multi-tenant QoS fairness: run the reserved-tenant-vs-noisy-neighbors
#    experiment (QoS on and off), refresh bench_results/qos.json, and fail
#    if the protected tenant's contended p99 blows past the gate
#    (solo p99 × AFC_QOS_P99_FACTOR + AFC_QOS_P99_SLACK_MS, QoS-on must
#    beat QoS-off, nobody starves). bench-check (step 7) applies the same
#    gate to the *committed* qos.json; this step gates a fresh run.
step cargo run --release --quiet --package afc-bench --bin baseline -- --write-qos

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) failed"
    exit 1
fi
echo "check.sh: all checks passed"
