//! # afcstore — All-Flash Scale-Out Storage
//!
//! Umbrella crate for the `afcstore` workspace: a from-scratch Rust
//! reproduction of *"Performance Optimization for All Flash Scale-out
//! Storage"* (IEEE CLUSTER 2016). It re-exports each layer of the stack so
//! examples, integration tests and downstream users need a single dependency.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured results.

pub use afc_common as common;
pub use afc_crush as crush;
pub use afc_device as device;
pub use afc_filestore as filestore;
pub use afc_journal as journal;
pub use afc_kvstore as kvstore;
pub use afc_logging as logging;
pub use afc_messenger as messenger;
pub use afc_solidfire as solidfire;
pub use afc_workload as workload;

pub use afc_core::*;
