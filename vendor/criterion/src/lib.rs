//! Offline stand-in for the `criterion` crate.
//!
//! Supports the structural API the workspace's micro-benchmarks use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! `criterion_group!` / `criterion_main!` macros. Instead of statistical
//! sampling it runs a fixed warm-up plus a timed window and prints a
//! mean ns/iter line, which is enough for the repo's "does the hot path
//! regress by an order of magnitude" smoke usage.

use std::time::{Duration, Instant};

/// Batch sizing hint; the stand-in treats all variants identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Configure per-benchmark measurement window (builder style).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            measurement_time,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let t = self.measurement_time;
        run_one(name, t, f);
        self
    }

    /// No-op in the stand-in (real criterion prints a summary).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set this group's measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.measurement_time, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, window: Duration, mut f: F) {
    let mut b = Bencher {
        window,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!(
        "bench {label:<40} {per_iter:>12.1} ns/iter ({} iters)",
        b.iters
    );
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    window: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly for the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up to get code/caches hot before the measured window.
        for _ in 0..16 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.window {
            black_box(routine());
            iters += 1;
        }
        self.iters += iters;
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..16 {
            black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.window;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(5)).sample_size(10);
        let mut ran = 0u64;
        g.bench_function("inc", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran > 0);
    }
}
