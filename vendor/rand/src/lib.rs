//! Offline stand-in for the `rand` crate (0.9 API names).
//!
//! Provides [`rngs::StdRng`] (a splitmix64 generator — statistically fine
//! for workload shaping and tests, not cryptographic), the [`Rng`] extension
//! trait with `random`/`random_range`/`random_bool`, and [`SeedableRng`].

use std::ops::{Bound, RangeBounds};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types constructible from a stream of random bits (the `random::<T>()`
/// family).
pub trait FromRandom {
    /// Draw a value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with `random_range`.
pub trait SampleUniform: Copy {
    /// Widen to i128 for uniform arithmetic.
    fn to_i128(self) -> i128;
    /// Narrow from i128 (value guaranteed in range).
    fn from_i128(v: i128) -> Self;
    /// Inclusive maximum of the type.
    fn max_value() -> i128;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
            fn max_value() -> i128 { <$t>::MAX as i128 }
        }
    )*};
}

sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator extension methods (rand 0.9 naming).
pub trait Rng: RngCore {
    /// A uniformly random `T`.
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Uniform draw from an integer range (`start..end` or `start..=end`).
    fn random_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() - 1,
            Bound::Unbounded => T::max_value(),
        };
        assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
        let span = (hi - lo + 1) as u128;
        // Modulo bias is < 2^-64 for any span that fits the workspace's uses.
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        T::from_i128(lo + draw as i128)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_random(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = r.random_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_bool_probability_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
