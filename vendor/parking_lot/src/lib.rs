//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: infallible
//! `lock()`/`read()`/`write()` (poisoning is swallowed — a panicking holder
//! does not poison the data for everyone else), `try_lock()` returning
//! `Option`, and a `Condvar` that works with this crate's [`MutexGuard`].
//!
//! Only the API surface the workspace uses is implemented. See
//! `vendor/README.md` for the policy on extending it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError, TryLockError};
use std::time::{Duration, Instant};

// ------------------------------------------------------------------ //
// Mutex
// ------------------------------------------------------------------ //

/// A mutual-exclusion lock with an infallible `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Releases on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire without blocking; `None` if already held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Whether the lock is currently held by anyone.
    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) | Err(TryLockError::Poisoned(_)) => false,
            Err(TryLockError::WouldBlock) => true,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ------------------------------------------------------------------ //
// Condvar
// ------------------------------------------------------------------ //

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with this crate's [`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let dur = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, dur)
    }

    /// Block until notified or `dur` elapses.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = self
            .inner
            .wait_timeout(g, dur)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ------------------------------------------------------------------ //
// RwLock
// ------------------------------------------------------------------ //

/// A reader-writer lock with infallible `read()`/`write()`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock guarding `t`.
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Shared access without blocking; `None` if a writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without blocking; `None` if anyone holds the lock.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.is_locked());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_mutex_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_readers_share_writer_excludes() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        assert!(l.try_write().is_none());
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
