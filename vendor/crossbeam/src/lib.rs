//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided: a Mutex+Condvar MPMC channel with
//! cloneable senders *and* receivers, bounded and unbounded flavours, and
//! crossbeam's disconnect semantics (send fails once every receiver is gone,
//! recv fails once the queue is empty and every sender is gone).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        q: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when empty and all senders gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("send on closed channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("recv on closed channel")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                q: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.q.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.q.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.cap {
                if st.q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.q.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().q.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.q.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive, blocking up to `timeout` for a message or disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.q.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.q.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().q.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, _rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(2).unwrap();
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            h.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (tx, rx) = unbounded::<u64>();
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut collectors = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                collectors.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            let mut all: Vec<u64> = collectors
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            let expect: Vec<u64> = (0..4u64)
                .flat_map(|t| (0..100).map(move |i| t * 1000 + i))
                .collect();
            assert_eq!(all, expect);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
    }
}
