//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<[u8]>`. Cloning is a refcount bump; all reads go through `Deref` to
//! `[u8]`. `slice()` keeps the backing allocation alive and narrows the
//! view, like the real crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static byte slice (copies once into the Arc).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data)
    }

    /// Length in bytes of this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(s);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(&s[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(64) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "… +{}", self.len() - 64)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_flavours() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
        assert_eq!(&Bytes::from(vec![1, 2, 3])[..], &[1, 2, 3]);
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
        assert_eq!(&Bytes::copy_from_slice(&[9, 8])[..], &[9, 8]);
        assert_eq!(&Bytes::from(String::from("hi"))[..], b"hi");
        assert_eq!(&Bytes::from(&b"hey"[..])[..], b"hey");
    }

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1024);
        assert_eq!(b[1023], 0);
    }

    #[test]
    fn slice_narrows_view() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn ordering_and_hashing_are_content_based() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(Bytes::from(&b"b"[..]), 2);
        m.insert(Bytes::from(&b"a"[..]), 1);
        let keys: Vec<_> = m.keys().map(|k| k.to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec()]);
    }
}
