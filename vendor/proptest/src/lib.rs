//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, integer-range / tuple / `any` /
//! [`Just`] / regex-literal strategies, `collection::vec`, `option::of`,
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` macros, and
//! [`ProptestConfig`] with a `cases` knob.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! generated inputs via the panic message of the failing assertion), and
//! generation is deterministic per test name, so failures reproduce
//! run-to-run without a persistence file.

use std::ops::Range;
use std::rc::Rc;

// ------------------------------------------------------------------ //
// RNG
// ------------------------------------------------------------------ //

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

// ------------------------------------------------------------------ //
// Config
// ------------------------------------------------------------------ //

/// Test-run configuration (functional-update friendly, like the real one).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Unused (no shrinking); kept for struct-literal compatibility.
    pub max_shrink_iters: u32,
    /// Unused; kept for struct-literal compatibility.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

// ------------------------------------------------------------------ //
// Strategy
// ------------------------------------------------------------------ //

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase (needed by `prop_oneof!` arms of different types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges: `lo..hi` is a uniform strategy over [lo, hi).
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Marker for types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// See [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// Tuples of strategies are strategies.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// A string literal is a strategy for strings matching a small regex subset:
// sequences of literal chars or `[class]`es, each optionally repeated with
// `{m}`, `{m,n}`, `?`, `+` or `*` (the latter two capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed [class] in pattern")
                + i;
            let class = &chars[i + 1..close];
            i = close + 1;
            expand_class(class)
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed {rep} in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("rep lower bound"),
                    n.trim().parse::<usize>().expect("rep upper bound"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("rep count");
                    (m, m)
                }
            }
        } else if i < chars.len() && (chars[i] == '+' || chars[i] == '*' || chars[i] == '?') {
            let r = match chars[i] {
                '+' => (1, 8),
                '*' => (0, 8),
                _ => (0, 1),
            };
            i += 1;
            r
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(class: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            for c in class[j]..=class[j + 2] {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(class[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty [class] in pattern");
    set
}

/// Weighted union of type-erased arms (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively-weighted arm"
        );
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut draw = rng.below(self.total);
        for (w, s) in &self.arms {
            if draw < *w as u64 {
                return s.generate(rng);
            }
            draw -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// A vector whose elements come from `element` and whose length is drawn
    /// from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.lo < self.len.hi, "empty vec length range");
            let span = (self.len.hi - self.len.lo) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

// ------------------------------------------------------------------ //
// Macros
// ------------------------------------------------------------------ //

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Pick among strategy arms, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert within a property test (no shrinking; panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_domain() {
        let mut rng = TestRng::deterministic("self-test");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let _: bool = any::<bool>().generate(&mut rng);
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::deterministic("vec-test");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_honours_weights_roughly() {
        let mut rng = TestRng::deterministic("union-test");
        let u = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "ones={ones}");
    }

    #[test]
    fn pattern_strategy_matches_subset() {
        let mut rng = TestRng::deterministic("pattern-test");
        for _ in 0..200 {
            let s = "[a-z0-9._-]{1,40}".generate(&mut rng);
            assert!((1..=40).contains(&s.len()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c)));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::deterministic("option-test");
        let s = crate::option::of(0u8..10);
        let got: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(got.iter().any(|v| v.is_none()));
        assert!(got.iter().any(|v| v.is_some()));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_runs(x in 0u32..100, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(a < 4);
            prop_assert_eq!(b as u8 <= 1, true);
            prop_assert_ne!(x + 1, 0);
        }
    }
}
