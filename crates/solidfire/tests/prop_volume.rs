//! Property tests: a SolidFire volume is observationally a flat byte
//! array, regardless of chunking, dedup and read-modify-write paths.

use afc_common::blocktarget::MemBlockTarget;
use afc_common::BlockTarget;
use afc_device::{NvramConfig, SsdConfig};
use afc_solidfire::{chunk_extents, SfCluster, SfConfig, CHUNK};
use proptest::prelude::*;
use std::time::Duration;

const VOL: u64 = 1 << 20; // 1 MiB keeps cases fast

fn fast_cluster() -> std::sync::Arc<SfCluster> {
    SfCluster::new(SfConfig {
        nodes: 2,
        ssds_per_node: 2,
        ssd: SsdConfig {
            jitter: 0.0,
            read_base: Duration::ZERO,
            write_base: Duration::ZERO,
            ..SsdConfig::sata3()
        },
        nvram: NvramConfig {
            access: Duration::ZERO,
            ..NvramConfig::pmc_8g()
        },
        stage_limit: 1024,
        hop_latency: Duration::ZERO,
        meta_hop: Duration::ZERO,
        write_pipeline: Duration::ZERO,
        read_pipeline: Duration::ZERO,
        replicate: true, // exercise the RF=2 path in the model check
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Same writes → same reads as an in-memory byte array, for arbitrary
    /// (unaligned, overlapping) patterns.
    #[test]
    fn volume_equals_flat_array(
        writes in proptest::collection::vec((0u64..VOL - 1, 1usize..9000, any::<u8>()), 1..16),
        reads in proptest::collection::vec((0u64..VOL - 1, 1usize..9000), 1..8),
    ) {
        let cluster = fast_cluster();
        let vol = cluster.volume("p", VOL).unwrap();
        let model = MemBlockTarget::new(VOL);
        for (off, len, fill) in &writes {
            let len = (*len as u64).min(VOL - off) as usize;
            let data = vec![*fill; len];
            vol.write_at(*off, &data).unwrap();
            model.write_at(*off, &data).unwrap();
        }
        for (off, len) in &reads {
            let len = (*len as u64).min(VOL - off) as usize;
            prop_assert_eq!(vol.read_at(*off, len).unwrap(), model.read_at(*off, len).unwrap());
        }
    }

    /// Chunk extents tile the request exactly: contiguous, within-chunk,
    /// complete.
    #[test]
    fn extents_tile_exactly(off in 0u64..1_000_000, len in 1u64..200_000) {
        let ext = chunk_extents(off, len);
        let mut cursor = off;
        for e in &ext {
            prop_assert_eq!(e.index, cursor / CHUNK);
            prop_assert_eq!(e.within, cursor % CHUNK);
            prop_assert!(e.within + e.len <= CHUNK);
            cursor += e.len;
        }
        prop_assert_eq!(cursor, off + len);
    }

    /// Refcounts: distinct volumes writing identical content share chunks;
    /// overwriting all copies reclaims them.
    #[test]
    fn dedup_refcount_reclamation(fill in any::<u8>(), copies in 1u64..12) {
        let cluster = fast_cluster();
        let vol = cluster.volume("rc", VOL).unwrap();
        let data = vec![fill; CHUNK as usize];
        for i in 0..copies {
            vol.write_at(i * CHUNK, &data).unwrap();
        }
        cluster.quiesce();
        // RF=2: one unique chunk lives as two node-local copies.
        prop_assert_eq!(cluster.stats().chunks, 2);
        // Overwrite each copy with unique content: the shared chunk dies.
        for i in 0..copies {
            let mut unique = vec![fill ^ 0xff; CHUNK as usize];
            unique[..8].copy_from_slice(&i.to_le_bytes());
            vol.write_at(i * CHUNK, &unique).unwrap();
        }
        cluster.quiesce();
        prop_assert_eq!(cluster.stats().chunks, copies * 2);
    }
}
