//! The SolidFire cluster and its iSCSI-like volumes.

use crate::chunk::{chunk_extents, CHUNK};
use crate::node::SfNode;
use afc_common::blocktarget::check_range;
use afc_common::rng::hash_bytes;
use afc_common::{sleep_for, AfcError, BlockTarget, Result};
use afc_device::{BlockDev, Nvram, NvramConfig, Raid0, Ssd, SsdConfig};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct SfConfig {
    /// Storage nodes (the paper compared 4 vs 4).
    pub nodes: usize,
    /// SSDs per node (10 in the paper's SolidFire boxes).
    pub ssds_per_node: usize,
    /// SSD model.
    pub ssd: SsdConfig,
    /// NVRAM model.
    pub nvram: NvramConfig,
    /// NVRAM staging buffer, in chunks, per node.
    pub stage_limit: usize,
    /// One-way network latency per volume request (iSCSI hop).
    pub hop_latency: Duration,
    /// Metadata-service update latency, paid **per chunk** on writes (the
    /// LBA→fingerprint map lives on the metadata service the paper notes
    /// SolidFire needs; CRUSH avoids this component entirely) and once per
    /// read request.
    pub meta_hop: Duration,
    /// End-to-end iSCSI-target + dual-replication + dedup pipeline latency
    /// per write request, calibrated to the paper's observed SolidFire
    /// latency floor (≈3 ms 4K random writes at load).
    pub write_pipeline: Duration,
    /// Pipeline latency per read request (no replication/dedup stages).
    pub read_pipeline: Duration,
    /// Store each chunk on two nodes (SolidFire's Double Helix RF=2).
    pub replicate: bool,
}

impl SfConfig {
    /// The paper's comparison setup: 4 nodes × 10 SSDs + NVRAM.
    pub fn paper() -> Self {
        SfConfig {
            nodes: 4,
            ssds_per_node: 10,
            ssd: SsdConfig::sata3_sustained(),
            nvram: NvramConfig::pmc_8g(),
            stage_limit: 4096,
            hop_latency: Duration::from_micros(80),
            meta_hop: Duration::from_micros(330),
            write_pipeline: Duration::from_micros(2200),
            read_pipeline: Duration::from_micros(600),
            replicate: true,
        }
    }
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SfStats {
    /// Dedup hits across nodes.
    pub dedup_hits: u64,
    /// Dedup misses (unique chunks stored).
    pub dedup_misses: u64,
    /// Distinct chunks resident.
    pub chunks: u64,
    /// Flash stats across nodes.
    pub flash: afc_device::DevStats,
}

/// A SolidFire-style cluster.
pub struct SfCluster {
    cfg: SfConfig,
    nodes: Vec<Arc<SfNode>>,
}

impl SfCluster {
    /// Build a cluster from `cfg`.
    pub fn new(cfg: SfConfig) -> Result<Arc<Self>> {
        if cfg.nodes == 0 || cfg.ssds_per_node == 0 {
            return Err(AfcError::InvalidArgument(
                "solidfire needs nodes and ssds".into(),
            ));
        }
        let mut nodes = Vec::new();
        for n in 0..cfg.nodes {
            let members: Vec<Arc<dyn BlockDev>> = (0..cfg.ssds_per_node)
                .map(|d| {
                    let seed = SEED_BASE ^ ((n as u64) << 8) ^ d as u64;
                    Arc::new(Ssd::new(cfg.ssd.clone().with_seed(seed))) as Arc<dyn BlockDev>
                })
                .collect();
            let data: Arc<dyn BlockDev> = Arc::new(Raid0::new(members, 64 * 1024)?);
            let nvram: Arc<dyn BlockDev> = Arc::new(Nvram::new(cfg.nvram.clone()));
            nodes.push(SfNode::new(data, nvram, cfg.stage_limit));
        }
        Ok(Arc::new(SfCluster { cfg, nodes }))
    }

    /// Create a volume.
    pub fn volume(self: &Arc<Self>, name: impl Into<String>, size: u64) -> Result<SfVolume> {
        if size == 0 {
            return Err(AfcError::InvalidArgument(
                "volume size must be positive".into(),
            ));
        }
        Ok(SfVolume {
            cluster: Arc::clone(self),
            _name: name.into(),
            size,
            lba_map: Mutex::new(HashMap::new()),
        })
    }

    fn node_for(&self, hash: u64) -> &Arc<SfNode> {
        &self.nodes[(hash % self.nodes.len() as u64) as usize]
    }

    /// Replica node for Double-Helix RF=2 (next node in fingerprint order).
    fn replica_for(&self, hash: u64) -> &Arc<SfNode> {
        &self.nodes[((hash + 1) % self.nodes.len() as u64) as usize]
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SfStats {
        let mut s = SfStats::default();
        for n in &self.nodes {
            let (h, m) = n.dedup_stats();
            s.dedup_hits += h;
            s.dedup_misses += m;
            s.chunks += n.chunk_count() as u64;
            s.flash = s.flash.combined(&n.data_dev().stats());
        }
        s
    }

    /// Wait for all staged chunks to flush.
    pub fn quiesce(&self) {
        for n in &self.nodes {
            n.quiesce();
        }
    }
}

/// Device jitter seed base for SolidFire nodes.
const SEED_BASE: u64 = 0x0050_11df;

/// An iSCSI-like block volume over the dedup store.
pub struct SfVolume {
    cluster: Arc<SfCluster>,
    _name: String,
    size: u64,
    /// LBA-chunk index → fingerprint (the volume's metadata map).
    lba_map: Mutex<HashMap<u64, u64>>,
}

impl SfVolume {
    fn read_chunk(&self, index: u64) -> Result<Bytes> {
        let hash = self.lba_map.lock().get(&index).copied();
        match hash {
            Some(h) => self.cluster.node_for(h).get_chunk(h),
            None => Ok(Bytes::from(vec![0u8; CHUNK as usize])), // unwritten
        }
    }

    fn write_chunk(&self, index: u64, data: Bytes) -> Result<()> {
        debug_assert_eq!(data.len() as u64, CHUNK);
        let hash = hash_bytes(&data); // real dedup fingerprinting cost
                                      // Per-chunk metadata-service update (LBA map + fingerprint table).
        sleep_for(self.cluster.cfg.meta_hop);
        self.cluster.node_for(hash).put_chunk(hash, data.clone())?;
        if self.cluster.cfg.replicate && self.cluster.nodes.len() > 1 {
            self.cluster.replica_for(hash).put_chunk(hash, data)?;
        }
        let old = self.lba_map.lock().insert(index, hash);
        if let Some(old) = old {
            // Rewrite releases the previous mapping's reference(s); for
            // identical content this cancels the refcount bump from put.
            self.cluster.node_for(old).unref_chunk(old);
            if self.cluster.cfg.replicate && self.cluster.nodes.len() > 1 {
                self.cluster.replica_for(old).unref_chunk(old);
            }
        }
        Ok(())
    }
}

impl BlockTarget for SfVolume {
    fn size(&self) -> u64 {
        self.size
    }

    fn write_at(&self, off: u64, data: &[u8]) -> Result<()> {
        check_range(self.size, off, data.len() as u64)?;
        sleep_for(self.cluster.cfg.hop_latency + self.cluster.cfg.write_pipeline);
        let mut cursor = 0usize;
        for e in chunk_extents(off, data.len() as u64) {
            let slice = &data[cursor..cursor + e.len as usize];
            cursor += e.len as usize;
            let chunk_data = if e.is_full() {
                Bytes::copy_from_slice(slice)
            } else {
                // Read-modify-write at chunk edges: the non-4K penalty.
                let old = self.read_chunk(e.index)?;
                let mut buf = old.to_vec();
                buf[e.within as usize..(e.within + e.len) as usize].copy_from_slice(slice);
                Bytes::from(buf)
            };
            self.write_chunk(e.index, chunk_data)?;
        }
        Ok(())
    }

    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        check_range(self.size, off, len as u64)?;
        sleep_for(
            self.cluster.cfg.hop_latency
                + self.cluster.cfg.read_pipeline
                + self.cluster.cfg.meta_hop,
        );
        let mut out = Vec::with_capacity(len);
        for e in chunk_extents(off, len as u64) {
            let chunk = self.read_chunk(e.index)?;
            out.extend_from_slice(&chunk[e.within as usize..(e.within + e.len) as usize]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::MIB;

    fn cluster() -> Arc<SfCluster> {
        let cfg = SfConfig {
            nodes: 2,
            ssds_per_node: 2,
            ssd: SsdConfig {
                jitter: 0.0,
                ..SsdConfig::sata3()
            },
            hop_latency: Duration::ZERO,
            meta_hop: Duration::ZERO,
            write_pipeline: Duration::ZERO,
            read_pipeline: Duration::ZERO,
            replicate: false,
            ..SfConfig::paper()
        };
        SfCluster::new(cfg).unwrap()
    }

    #[test]
    fn volume_roundtrip_aligned() {
        let c = cluster();
        let v = c.volume("v", 64 * MIB).unwrap();
        let data = vec![0x42u8; 8192];
        v.write_at(4096, &data).unwrap();
        assert_eq!(v.read_at(4096, 8192).unwrap(), data);
        // Unwritten regions read as zeros.
        assert_eq!(v.read_at(0, 4096).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn unaligned_write_rmw_preserves_neighbors() {
        let c = cluster();
        let v = c.volume("v", 64 * MIB).unwrap();
        v.write_at(0, &vec![0x11u8; 4096]).unwrap();
        // Overwrite the middle 100 bytes.
        v.write_at(1000, &[0x22u8; 100]).unwrap();
        let out = v.read_at(0, 4096).unwrap();
        assert_eq!(out[999], 0x11);
        assert_eq!(out[1000], 0x22);
        assert_eq!(out[1099], 0x22);
        assert_eq!(out[1100], 0x11);
    }

    #[test]
    fn identical_content_dedups_across_lbas() {
        let c = cluster();
        let v = c.volume("v", 64 * MIB).unwrap();
        let data = vec![0x7fu8; 4096];
        for i in 0..32 {
            v.write_at(i * 4096, &data).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.dedup_misses, 1, "{s:?}");
        assert_eq!(s.dedup_hits, 31);
        assert_eq!(s.chunks, 1);
    }

    #[test]
    fn overwrite_releases_old_chunk() {
        let c = cluster();
        let v = c.volume("v", 64 * MIB).unwrap();
        v.write_at(0, &vec![1u8; 4096]).unwrap();
        v.write_at(0, &vec![2u8; 4096]).unwrap();
        c.quiesce();
        assert_eq!(c.stats().chunks, 1, "old chunk not freed");
        assert_eq!(v.read_at(0, 4096).unwrap(), vec![2u8; 4096]);
    }

    #[test]
    fn sequential_reads_shatter_into_chunk_ios() {
        let c = cluster();
        let v = c.volume("v", 64 * MIB).unwrap();
        // Unique content per chunk (no dedup) over 1 MiB.
        for i in 0..256u64 {
            let mut data = vec![0u8; 4096];
            data[..8].copy_from_slice(&i.to_le_bytes());
            v.write_at(i * 4096, &data).unwrap();
        }
        c.quiesce();
        let before = c.stats().flash.reads;
        v.read_at(0, MIB as usize).unwrap();
        let after = c.stats().flash.reads;
        // One flash read per 4K chunk — no large-transfer coalescing.
        assert_eq!(after - before, 256);
    }

    #[test]
    fn rejects_bad_ranges_and_sizes() {
        let c = cluster();
        let v = c.volume("v", MIB).unwrap();
        assert!(v.write_at(MIB, &[0u8; 1]).is_err());
        assert!(v.read_at(0, 0).is_err());
        assert!(c.volume("w", 0).is_err());
    }
}
