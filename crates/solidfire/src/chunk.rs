//! Fixed 4 KB chunking math.

/// SolidFire's fixed dedup unit.
pub const CHUNK: u64 = 4096;

/// One chunk touched by a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkExtent {
    /// Chunk index (LBA / 4K).
    pub index: u64,
    /// Offset of the touched range within the chunk.
    pub within: u64,
    /// Touched bytes within the chunk.
    pub len: u64,
}

impl ChunkExtent {
    /// Whether the request covers the whole chunk (no read-modify-write).
    pub fn is_full(&self) -> bool {
        self.within == 0 && self.len == CHUNK
    }
}

/// Split `[off, off+len)` into per-chunk extents.
pub fn chunk_extents(off: u64, len: u64) -> Vec<ChunkExtent> {
    let mut out = Vec::with_capacity(((len / CHUNK) + 2) as usize);
    let mut cur = off;
    let end = off + len;
    while cur < end {
        let index = cur / CHUNK;
        let within = cur % CHUNK;
        let take = (CHUNK - within).min(end - cur);
        out.push(ChunkExtent {
            index,
            within,
            len: take,
        });
        cur += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_single_chunk() {
        let e = chunk_extents(8192, 4096);
        assert_eq!(
            e,
            vec![ChunkExtent {
                index: 2,
                within: 0,
                len: 4096
            }]
        );
        assert!(e[0].is_full());
    }

    #[test]
    fn unaligned_spans_two_chunks() {
        let e = chunk_extents(1000, 4096);
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[0],
            ChunkExtent {
                index: 0,
                within: 1000,
                len: 3096
            }
        );
        assert_eq!(
            e[1],
            ChunkExtent {
                index: 1,
                within: 0,
                len: 1000
            }
        );
        assert!(!e[0].is_full());
        assert!(!e[1].is_full());
    }

    #[test]
    fn large_write_shatters() {
        let e = chunk_extents(0, 32 * 1024);
        assert_eq!(e.len(), 8);
        assert!(e.iter().all(|x| x.is_full()));
        let total: u64 = e.iter().map(|x| x.len).sum();
        assert_eq!(total, 32 * 1024);
    }

    #[test]
    fn sub_chunk_write() {
        let e = chunk_extents(100, 50);
        assert_eq!(
            e,
            vec![ChunkExtent {
                index: 0,
                within: 100,
                len: 50
            }]
        );
    }
}
