//! A SolidFire-style all-flash comparator (§4.4, Figure 11).
//!
//! The paper benchmarks its optimized Ceph against SolidFire, whose
//! architecture it characterizes as: **content-addressed 4 KB chunks** with
//! mandatory deduplication, chunk hashes and metadata staged in **NVRAM**
//! (fast write acks), data laid out **log-structured** on flash, and a
//! metadata service that maps volume LBAs to chunk fingerprints. The
//! consequences the paper measures — and this model reproduces:
//!
//! - strong 4 KB random-write performance (NVRAM-acked, dedup-amortized);
//! - degraded non-4K performance (every op shatters into 4 KB chunks, with
//!   read-modify-write at unaligned edges);
//! - poor sequential bandwidth: "client's sequential workload would be
//!   random workload in the storage cluster because SolidFire divides all
//!   inputs to 4KB unit for deduplication" — large reads become per-chunk
//!   lookups with no large-transfer coalescing.
//!
//! Chunks are placed on nodes by fingerprint (`hash % nodes`), giving
//! global dedup; real content hashing ([`afc_common::rng::hash_bytes`])
//! keeps dedup behaviour honest under the benchmark's data patterns.

pub mod chunk;
pub mod cluster;
pub mod node;

pub use chunk::{chunk_extents, ChunkExtent, CHUNK};
pub use cluster::{SfCluster, SfConfig, SfStats, SfVolume};
pub use node::SfNode;
