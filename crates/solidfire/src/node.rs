//! A SolidFire storage node: NVRAM staging + log-structured flash.
//!
//! Writes ack once the chunk is staged in NVRAM; a background flusher
//! drains staged chunks to the flash log. Reads check the staging buffer
//! first, then fetch from the chunk's stored (scattered) log position —
//! every read is an independent 4 KB device access, which is the
//! fragmentation that ruins SolidFire's sequential bandwidth.

use crate::chunk::CHUNK;
use afc_common::{AfcError, Result};
use afc_device::{BlockDev, IoReq};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fingerprint → chunk record.
struct ChunkRec {
    data: Bytes,
    refs: u64,
    /// Log offset on flash (None while only staged in NVRAM).
    log_off: Option<u64>,
}

struct NodeState {
    chunks: HashMap<u64, ChunkRec>,
    staged: u64,
}

/// One storage node.
pub struct SfNode {
    data_dev: Arc<dyn BlockDev>,
    nvram: Arc<dyn BlockDev>,
    state: Mutex<NodeState>,
    log_head: AtomicU64,
    flush_tx: Sender<u64>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    dedup_hits: AtomicU64,
    dedup_misses: AtomicU64,
}

impl SfNode {
    /// Create a node over a flash device and an NVRAM card. `stage_limit`
    /// bounds NVRAM-staged chunks before writers feel flash backpressure.
    pub fn new(
        data_dev: Arc<dyn BlockDev>,
        nvram: Arc<dyn BlockDev>,
        stage_limit: usize,
    ) -> Arc<Self> {
        let (tx, rx): (Sender<u64>, Receiver<u64>) = bounded(stage_limit.max(1));
        let node = Arc::new(SfNode {
            data_dev,
            nvram,
            state: Mutex::new(NodeState {
                chunks: HashMap::new(),
                staged: 0,
            }),
            log_head: AtomicU64::new(0),
            flush_tx: tx,
            flusher: Mutex::new(None),
            dedup_hits: AtomicU64::new(0),
            dedup_misses: AtomicU64::new(0),
        });
        let n2 = Arc::clone(&node);
        *node.flusher.lock() = Some(
            std::thread::Builder::new()
                .name("sf-flusher".into())
                .spawn(move || {
                    while let Ok(hash) = rx.recv() {
                        n2.flush_one(hash);
                    }
                })
                .expect("spawn sf flusher"),
        );
        node
    }

    fn flush_one(&self, hash: u64) {
        let cap = self.data_dev.capacity();
        let off = self.log_head.fetch_add(CHUNK, Ordering::Relaxed) % (cap - CHUNK);
        // Log append on flash.
        let _ = self.data_dev.submit(IoReq::write(off, CHUNK as u32));
        let mut st = self.state.lock();
        if let Some(rec) = st.chunks.get_mut(&hash) {
            if rec.log_off.is_none() {
                rec.log_off = Some(off);
                st.staged = st.staged.saturating_sub(1);
            }
        }
    }

    /// Store a chunk by fingerprint. Deduplicated chunks only bump a
    /// refcount (metadata write to NVRAM); new chunks stage their data in
    /// NVRAM (ack) and queue the flash flush. Blocks when the staging
    /// buffer is full — flash bandwidth is then the limiter.
    pub fn put_chunk(&self, hash: u64, data: Bytes) -> Result<()> {
        debug_assert_eq!(data.len() as u64, CHUNK);
        // Metadata (LBA map + fingerprint table) update in NVRAM.
        self.nvram
            .submit(IoReq::write(hash % (self.nvram.capacity() - 256), 256))?;
        let is_new = {
            let mut st = self.state.lock();
            match st.chunks.get_mut(&hash) {
                Some(rec) => {
                    rec.refs += 1;
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    false
                }
                None => {
                    st.chunks.insert(
                        hash,
                        ChunkRec {
                            data: data.clone(),
                            refs: 1,
                            log_off: None,
                        },
                    );
                    st.staged += 1;
                    self.dedup_misses.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
        };
        if is_new {
            // Chunk payload into NVRAM (the fast ack), then queue the flush.
            self.nvram.submit(IoReq::write(
                hash % (self.nvram.capacity() - CHUNK),
                CHUNK as u32,
            ))?;
            self.flush_tx
                .send(hash)
                .map_err(|_| AfcError::ShutDown("solidfire node".into()))?;
        }
        Ok(())
    }

    /// Fetch a chunk by fingerprint. Staged chunks read from NVRAM; flushed
    /// chunks pay an independent 4 KB flash read at their log position.
    pub fn get_chunk(&self, hash: u64) -> Result<Bytes> {
        let (data, log_off) = {
            let st = self.state.lock();
            let rec = st
                .chunks
                .get(&hash)
                .ok_or_else(|| AfcError::NotFound(format!("chunk {hash:#x}")))?;
            (rec.data.clone(), rec.log_off)
        };
        match log_off {
            Some(off) => {
                self.data_dev.submit(IoReq::read(off, CHUNK as u32))?;
            }
            None => {
                self.nvram.submit(IoReq::read(0, CHUNK as u32))?;
            }
        }
        Ok(data)
    }

    /// Drop one reference; frees the chunk at zero.
    pub fn unref_chunk(&self, hash: u64) {
        let mut st = self.state.lock();
        if let Some(rec) = st.chunks.get_mut(&hash) {
            rec.refs -= 1;
            if rec.refs == 0 {
                if rec.log_off.is_none() {
                    st.staged = st.staged.saturating_sub(1);
                }
                st.chunks.remove(&hash);
            }
        }
    }

    /// `(dedup hits, dedup misses)`.
    pub fn dedup_stats(&self) -> (u64, u64) {
        (
            self.dedup_hits.load(Ordering::Relaxed),
            self.dedup_misses.load(Ordering::Relaxed),
        )
    }

    /// Distinct chunks resident.
    pub fn chunk_count(&self) -> usize {
        self.state.lock().chunks.len()
    }

    /// The flash device (stats).
    pub fn data_dev(&self) -> &Arc<dyn BlockDev> {
        &self.data_dev
    }

    /// Wait until all staged chunks are flushed (test helper).
    pub fn quiesce(&self) {
        while self.state.lock().staged > 0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

impl Drop for SfNode {
    fn drop(&mut self) {
        let (dead, _) = bounded(1);
        self.flush_tx = dead;
        if let Some(h) = self.flusher.lock().take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::rng::hash_bytes;
    use afc_device::{Nvram, NvramConfig, Ssd, SsdConfig};

    fn node() -> Arc<SfNode> {
        let ssd = Arc::new(Ssd::new(SsdConfig {
            jitter: 0.0,
            ..SsdConfig::sata3()
        }));
        let nv = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        SfNode::new(ssd, nv, 64)
    }

    fn chunk(fill: u8) -> Bytes {
        Bytes::from(vec![fill; CHUNK as usize])
    }

    #[test]
    fn put_get_roundtrip() {
        let n = node();
        let data = chunk(7);
        let h = hash_bytes(&data);
        n.put_chunk(h, data.clone()).unwrap();
        assert_eq!(n.get_chunk(h).unwrap(), data);
        assert!(n.get_chunk(12345).is_err());
    }

    #[test]
    fn duplicate_chunks_dedup() {
        let n = node();
        let data = chunk(9);
        let h = hash_bytes(&data);
        for _ in 0..10 {
            n.put_chunk(h, data.clone()).unwrap();
        }
        let (hits, misses) = n.dedup_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 9);
        assert_eq!(n.chunk_count(), 1);
        n.quiesce();
        // Only one flash log write happened for ten puts.
        assert_eq!(n.data_dev().stats().writes, 1);
    }

    #[test]
    fn refcount_frees_at_zero() {
        let n = node();
        let data = chunk(3);
        let h = hash_bytes(&data);
        n.put_chunk(h, data.clone()).unwrap();
        n.put_chunk(h, data).unwrap();
        n.unref_chunk(h);
        assert_eq!(n.chunk_count(), 1);
        n.unref_chunk(h);
        assert_eq!(n.chunk_count(), 0);
    }

    #[test]
    fn flushed_reads_hit_flash() {
        let n = node();
        let data = chunk(1);
        let h = hash_bytes(&data);
        n.put_chunk(h, data).unwrap();
        n.quiesce();
        let before = n.data_dev().stats().reads;
        n.get_chunk(h).unwrap();
        assert_eq!(n.data_dev().stats().reads, before + 1);
    }
}
