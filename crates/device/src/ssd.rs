//! Flash SSD timing model.
//!
//! Captures the flash behaviours the paper's optimizations depend on:
//!
//! - **Internal parallelism**: `channels` concurrent operations (NAND planes
//!   behind the SATA controller). This is what coarse-grained PG locking
//!   wastes and the pending queue recovers.
//! - **Clean vs. sustained state** (§4.1): once the drive has been filled,
//!   writes pay garbage-collection overhead — a service-time multiplier plus
//!   GC stalls driven by a small FTL model ([`crate::ftl`]): free-block
//!   pressure selects a victim erase block and the live pages copied out of
//!   it are charged to the triggering write. Multi-stream separation
//!   ([`crate::StreamId`], `SsdConfig::with_streams`) gives each write
//!   stream its own allocation group so short-lived blocks die wholesale
//!   and GC copies less. Figure 9 uses clean drives, Figures 10/11
//!   sustained (pre-aged FTL).
//! - **Read/write interference** (§3.4, citing FIOS): a read serviced while
//!   writes are in flight takes a latency penalty. The light-weight
//!   transaction's write-through metadata cache exists to keep metadata
//!   *reads* out of the write path because of exactly this effect.
//! - **Bandwidth cap**: large transfers are dominated by `len / bandwidth`.

use crate::ftl::{Ftl, FtlConfig};
use crate::plan::ChannelPool;
use crate::stats::{DevStats, StatsCell};
use crate::{validate, BlockDev, FaultInjector, IoKind, IoPlan, IoReq};
use afc_common::rng::mix64;
use afc_common::{Result, GIB, MIB};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Flash wear state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsdState {
    /// Freshly trimmed drive: writes at full speed.
    Clean,
    /// Steady-state drive: writes pay GC overhead and stalls.
    Sustained,
}

/// SSD model parameters.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Internal parallelism (concurrent in-flight operations).
    pub channels: usize,
    /// Base 4K-read service time.
    pub read_base: Duration,
    /// Base 4K-write service time in the clean state.
    pub write_base: Duration,
    /// Sequential read bandwidth (bytes/sec) for the transfer component.
    pub read_bw: u64,
    /// Sequential write bandwidth (bytes/sec) for the transfer component.
    pub write_bw: u64,
    /// Multiplier applied to write service time in the sustained state.
    pub sustained_write_factor: f64,
    /// Deprecated alias, ignored: GC no longer fires on a write-count
    /// modulo. Kept so existing configs and tuning labels still parse;
    /// the FTL's free-block pressure threshold
    /// ([`FtlConfig::gc_free_blocks`]) replaces it.
    pub gc_every: u64,
    /// Deprecated alias, ignored: GC stalls are now charged per copied
    /// page ([`FtlConfig::gc_page_cost`]) instead of a fixed pause.
    pub gc_pause: Duration,
    /// Flash-translation-layer model (allocation groups, valid-page
    /// accounting, pressure-driven GC).
    pub ftl: FtlConfig,
    /// Extra latency for a read issued while a write is in flight.
    pub rw_interference: Duration,
    /// Deterministic jitter amplitude as a fraction of service time (0..1).
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Initial wear state.
    pub state: SsdState,
}

impl SsdConfig {
    /// A SATA3 consumer-ish SSD like the paper's testbed drives.
    pub fn sata3() -> Self {
        SsdConfig {
            capacity: 512 * GIB,
            channels: 8,
            read_base: Duration::from_micros(90),
            write_base: Duration::from_micros(70),
            read_bw: 500 * MIB,
            write_bw: 450 * MIB,
            sustained_write_factor: 3.0,
            gc_every: 32,
            gc_pause: Duration::from_millis(3),
            rw_interference: Duration::from_micros(250),
            jitter: 0.10,
            seed: 0x55d_f1a5,
            state: SsdState::Clean,
            ftl: FtlConfig::default(),
        }
    }

    /// Same drive, pre-aged to the sustained state.
    pub fn sata3_sustained() -> Self {
        SsdConfig {
            state: SsdState::Sustained,
            ..Self::sata3()
        }
    }

    /// Set the capacity (builder style).
    #[must_use]
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Set the jitter seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable/disable multi-stream write separation (builder style).
    #[must_use]
    pub fn with_streams(mut self, on: bool) -> Self {
        self.ftl.streams_enabled = on;
        self
    }
}

/// A flash SSD timing model. See the module docs for the modeled effects.
pub struct Ssd {
    cfg: SsdConfig,
    pool: ChannelPool,
    stats: StatsCell,
    faults: FaultInjector,
    state: AtomicU8,
    op_seq: AtomicU64,
    /// The flash-translation layer: page mapping, allocation groups and
    /// pressure-driven GC. Every write consults it; GC copy-forward work
    /// is charged into that write's service time.
    ftl: Mutex<Ftl>,
    /// Completion instant of the most recently planned write; a read planned
    /// before this instant counts as interfered.
    last_write_end: Mutex<Instant>,
}

impl Ssd {
    /// Build an SSD from `cfg`. A drive starting in the sustained state
    /// gets a pre-aged (fragmented, low-free-space) FTL so GC pressure is
    /// present from the first write.
    pub fn new(cfg: SsdConfig) -> Self {
        let state = match cfg.state {
            SsdState::Clean => 0,
            SsdState::Sustained => 1,
        };
        let mut ftl = Ftl::new(cfg.ftl.clone());
        if cfg.state == SsdState::Sustained {
            ftl.pre_age(cfg.seed);
        }
        Ssd {
            pool: ChannelPool::new(cfg.channels),
            stats: StatsCell::new(),
            faults: FaultInjector::new(),
            state: AtomicU8::new(state),
            op_seq: AtomicU64::new(0),
            ftl: Mutex::new(ftl),
            last_write_end: Mutex::new(Instant::now()),
            cfg,
        }
    }

    /// Current wear state.
    pub fn state(&self) -> SsdState {
        if self.state.load(Ordering::Relaxed) == 0 {
            SsdState::Clean
        } else {
            SsdState::Sustained
        }
    }

    /// Force the wear state (harnesses age drives between phases).
    pub fn set_state(&self, s: SsdState) {
        self.state
            .store(matches!(s, SsdState::Sustained) as u8, Ordering::Relaxed);
    }

    /// Fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Register this device's stat counters into a cluster metric
    /// registry under `<prefix>.<field>` (e.g. `osd0.data.writes`).
    pub fn register_metrics(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        self.stats.register_into(m, prefix);
    }

    /// Deterministic jitter multiplier in `[1-j, 1+j]` for op `n`.
    fn jitter_mul(&self, n: u64) -> f64 {
        if self.cfg.jitter == 0.0 {
            return 1.0;
        }
        let h = mix64(self.cfg.seed ^ n);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + self.cfg.jitter * (2.0 * unit - 1.0)
    }

    fn service_time(&self, req: &IoReq, op_n: u64) -> (Duration, bool) {
        let sustained = self.state() == SsdState::Sustained;
        match req.kind {
            IoKind::Read => {
                let xfer = Duration::from_secs_f64(req.len as f64 / self.cfg.read_bw as f64);
                let mut t = self.cfg.read_base + xfer;
                let interfered = {
                    let lw = self.last_write_end.lock();
                    Instant::now() < *lw
                };
                if interfered {
                    t += self.cfg.rw_interference;
                }
                (t.mul_f64(self.jitter_mul(op_n)), interfered)
            }
            IoKind::Write => {
                let xfer = Duration::from_secs_f64(req.len as f64 / self.cfg.write_bw as f64);
                let mut t = self.cfg.write_base + xfer;
                if sustained {
                    t = t.mul_f64(self.cfg.sustained_write_factor);
                }
                t = t.mul_f64(self.jitter_mul(op_n));
                // FTL accounting: remap the written pages and, under
                // free-block pressure, collect garbage — copied pages
                // stall *this* write (no jitter: GC cost is mechanical).
                let gc = self.ftl.lock().host_write(req.offset, req.len, req.stream);
                if gc.passes > 0 {
                    let copied_bytes = gc.copied_pages * self.cfg.ftl.page_size as u64;
                    self.stats.on_gc(gc.passes, copied_bytes);
                    t += self
                        .cfg
                        .ftl
                        .gc_page_cost
                        .saturating_mul(gc.copied_pages.min(u32::MAX as u64) as u32);
                }
                (t, false)
            }
            IoKind::Flush => (self.cfg.write_base, false),
        }
    }
}

impl BlockDev for Ssd {
    fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    fn plan(&self, req: IoReq) -> Result<IoPlan> {
        validate(&req, self.cfg.capacity)?;
        let spike = self.faults.check(&req)?.unwrap_or_default();
        let op_n = self.op_seq.fetch_add(1, Ordering::Relaxed);
        let (service, interfered) = self.service_time(&req, op_n);
        let service = service + spike;
        let completion = match req.kind {
            IoKind::Flush => self.pool.reserve_barrier(service),
            _ => self.pool.reserve(service),
        };
        match req.kind {
            IoKind::Read => self.stats.on_read(req.len as u64, service, interfered),
            IoKind::Write => {
                self.stats.on_write(req.len as u64, req.stream, service);
                let mut lw = self.last_write_end.lock();
                if completion > *lw {
                    *lw = completion;
                }
            }
            IoKind::Flush => self.stats.on_flush(service),
        }
        Ok(IoPlan {
            completion,
            service,
        })
    }

    fn stats(&self) -> DevStats {
        self.stats.snapshot()
    }

    fn model(&self) -> &str {
        "ssd-sata3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::KIB;

    fn quiet(cfg: SsdConfig) -> SsdConfig {
        SsdConfig { jitter: 0.0, ..cfg }
    }

    #[test]
    fn small_read_takes_base_latency() {
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        let lat = ssd.submit(IoReq::read(0, 4 * KIB as u32)).unwrap();
        assert!(lat >= Duration::from_micros(90), "lat={lat:?}");
        assert!(lat < Duration::from_millis(5), "lat={lat:?}");
    }

    #[test]
    fn sustained_writes_slower_than_clean() {
        let clean = Ssd::new(quiet(SsdConfig::sata3()));
        let aged = Ssd::new(quiet(SsdConfig::sata3_sustained()));
        let pc = clean.plan(IoReq::write(0, 4096)).unwrap();
        let pa = aged.plan(IoReq::write(0, 4096)).unwrap();
        assert!(
            pa.service >= pc.service.mul_f64(2.5),
            "clean={:?} aged={:?}",
            pc.service,
            pa.service
        );
    }

    #[test]
    fn gc_fires_under_free_block_pressure_not_on_a_modulo() {
        // A clean drive never collects while the modeled window has free
        // blocks — regardless of write count (the old model stalled every
        // `gc_every`-th write no matter what).
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        for i in 0..64u64 {
            ssd.plan(IoReq::write(i * 4096, 4096)).unwrap();
        }
        assert_eq!(ssd.stats().gc_pauses, 0);
        // A pre-aged drive is already at the pressure threshold: writing a
        // couple of erase blocks' worth must trigger GC, and the copied
        // pages both stall the triggering write and show up in the stats.
        let aged = Ssd::new(quiet(SsdConfig::sata3_sustained()));
        let page = aged.cfg.ftl.page_size as u64;
        let ppb = aged.cfg.ftl.pages_per_block as u64;
        let mut max_service = Duration::ZERO;
        for i in 0..(4 * ppb) {
            let p = aged.plan(IoReq::write(i * page, page as u32)).unwrap();
            max_service = max_service.max(p.service);
        }
        let s = aged.stats();
        assert!(s.gc_pauses > 0, "pressure never triggered GC");
        assert!(s.gc_copied_bytes > 0);
        assert!(s.flash_write_amplification() > 1.0);
        // Copy-forward stall is visible in service time: the worst write
        // paid well over the plain sustained-write service.
        let plain = Duration::from_micros(70).mul_f64(3.0);
        assert!(max_service > plain + Duration::from_micros(200));
    }

    #[test]
    fn stream_separation_drops_flash_wa_on_mixed_workload() {
        // Seed-pinned before/after: identical mixed journal+compaction
        // write sequences on two identically-seeded aged drives, the only
        // difference being `streams_enabled`. Separation must strictly
        // reduce GC copy-forward and device-level write amplification.
        let run = |streams: bool| {
            let cfg = quiet(SsdConfig::sata3_sustained())
                .with_seed(0x5eed_cafe)
                .with_streams(streams);
            let ssd = Ssd::new(cfg);
            let page = 4096u64;
            for i in 0..2048u64 {
                // Long-lived compaction output: sequential sweep.
                ssd.plan(IoReq::write_stream(
                    i * page,
                    page as u32,
                    crate::StreamId::KvCompaction,
                ))
                .unwrap();
                // Short-lived journal ring: 16 pages, rewritten constantly.
                ssd.plan(IoReq::write_stream(
                    (1 << 30) + (i % 16) * page,
                    page as u32,
                    crate::StreamId::Journal,
                ))
                .unwrap();
            }
            ssd.stats()
        };
        let mixed = run(false);
        let separated = run(true);
        assert_eq!(mixed.bytes_written, separated.bytes_written);
        // Per-stream accounting conserves bytes.
        for s in [&mixed, &separated] {
            assert_eq!(s.stream_bytes.iter().sum::<u64>(), s.bytes_written);
        }
        assert!(
            separated.gc_copied_bytes < mixed.gc_copied_bytes,
            "separation did not reduce copy-forward: {} vs {}",
            separated.gc_copied_bytes,
            mixed.gc_copied_bytes
        );
        assert!(
            separated.flash_write_amplification() < mixed.flash_write_amplification(),
            "flash WA did not drop: {} vs {}",
            separated.flash_write_amplification(),
            mixed.flash_write_amplification()
        );
    }

    #[test]
    fn read_during_write_pays_interference() {
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        // Plan a large write that keeps the device busy, then read.
        ssd.plan(IoReq::write(0, 8 * MIB as u32)).unwrap();
        let p = ssd.plan(IoReq::read(0, 4096)).unwrap();
        assert!(
            p.service >= Duration::from_micros(90 + 250),
            "service={:?}",
            p.service
        );
        assert_eq!(ssd.stats().interfered_reads, 1);
        // A read after the write completes is clean.
        std::thread::sleep(Duration::from_millis(25));
        let p2 = ssd.plan(IoReq::read(0, 4096)).unwrap();
        assert!(p2.service < Duration::from_micros(90 + 250));
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        // 4 MiB at 500 MiB/s ≈ 8 ms.
        let p = ssd.plan(IoReq::read(0, 4 * MIB as u32)).unwrap();
        assert!(p.service >= Duration::from_millis(7), "{:?}", p.service);
        assert!(p.service <= Duration::from_millis(12), "{:?}", p.service);
    }

    #[test]
    fn channels_allow_concurrency() {
        let mut cfg = quiet(SsdConfig::sata3());
        cfg.channels = 4;
        let ssd = Ssd::new(cfg);
        let t0 = Instant::now();
        let plans: Vec<IoPlan> = (0..4)
            .map(|i| ssd.plan(IoReq::read(i * 4096, 4096)).unwrap())
            .collect();
        for p in &plans {
            assert!(p.completion <= t0 + Duration::from_millis(2));
        }
        let p5 = ssd.plan(IoReq::read(0, 4096)).unwrap();
        assert!(p5.completion >= t0 + Duration::from_micros(170));
    }

    #[test]
    fn jitter_is_deterministic() {
        let a = Ssd::new(SsdConfig::sata3());
        let b = Ssd::new(SsdConfig::sata3());
        for i in 0..32 {
            let pa = a.plan(IoReq::read(i * 4096, 4096)).unwrap();
            let pb = b.plan(IoReq::read(i * 4096, 4096)).unwrap();
            assert_eq!(pa.service, pb.service);
        }
    }

    #[test]
    fn fault_injection_fails_plan() {
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        ssd.faults().inject(1);
        assert!(ssd.plan(IoReq::read(0, 4096)).is_err());
        assert!(ssd.plan(IoReq::read(0, 4096)).is_ok());
    }

    #[test]
    fn state_toggle() {
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        assert_eq!(ssd.state(), SsdState::Clean);
        ssd.set_state(SsdState::Sustained);
        assert_eq!(ssd.state(), SsdState::Sustained);
    }

    #[test]
    fn stats_accumulate() {
        let ssd = Ssd::new(quiet(SsdConfig::sata3()));
        ssd.submit(IoReq::write(0, 4096)).unwrap();
        ssd.submit(IoReq::read(0, 4096)).unwrap();
        ssd.submit(IoReq::flush()).unwrap();
        let s = ssd.stats();
        assert_eq!((s.reads, s.writes, s.flushes), (1, 1, 1));
        assert_eq!(s.bytes_written, 4096);
        assert!(s.busy_us > 0);
    }
}

#[cfg(test)]
mod motivation_tests {
    use super::*;
    use crate::hdd::{Hdd, HddConfig};
    use crate::{BlockDev, IoReq};

    /// The paper's opening premise: flash turns random I/O from a seek-bound
    /// disaster into something the *software* must now keep up with. The SSD
    /// model must beat the HDD model on 4K random by orders of magnitude
    /// while sequential bandwidth stays comparable.
    #[test]
    fn ssd_vs_hdd_random_gap_dwarfs_sequential_gap() {
        let ssd = Ssd::new(SsdConfig {
            jitter: 0.0,
            ..SsdConfig::sata3()
        });
        let hdd = Hdd::new(HddConfig {
            jitter: 0.0,
            ..HddConfig::nearline_7k2()
        });
        // Random 4K service times, far-apart offsets.
        let mut ssd_rand = Duration::ZERO;
        let mut hdd_rand = Duration::ZERO;
        for i in 0..32u64 {
            let off = (i * 37 % 97) * (1 << 30);
            ssd_rand += ssd
                .plan(IoReq::read(off % ssd.capacity(), 4096))
                .unwrap()
                .service;
            hdd_rand += hdd
                .plan(IoReq::read(off % hdd.capacity(), 4096))
                .unwrap()
                .service;
        }
        // Sequential 1 MiB service times.
        let ssd_seq = ssd.plan(IoReq::read(0, 1 << 20)).unwrap().service;
        let hdd_seq = hdd.plan(IoReq::read(4096, 1 << 20)).unwrap().service;
        let random_gap = hdd_rand.as_secs_f64() / ssd_rand.as_secs_f64();
        let seq_gap = hdd_seq.as_secs_f64() / ssd_seq.as_secs_f64();
        assert!(random_gap > 20.0, "random gap only {random_gap:.1}x");
        assert!(
            seq_gap < 8.0,
            "sequential gap unexpectedly large: {seq_gap:.1}x"
        );
        assert!(
            random_gap > 4.0 * seq_gap,
            "random should dominate: {random_gap:.1} vs {seq_gap:.1}"
        );
    }
}
