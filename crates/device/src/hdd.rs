//! Rotating-disk timing model.
//!
//! The HDD is the design baseline Ceph was built for: a single actuator, so
//! one channel; random access pays seek + rotational latency while
//! near-sequential access streams at media bandwidth. The model exists so the
//! benchmark harnesses can demonstrate *why* the community defaults (batching,
//! HDD-sized throttles) made sense on spinning media, and how drop-in flash
//! replacement exposes the software stack instead.

use crate::plan::ChannelPool;
use crate::stats::{DevStats, StatsCell};
use crate::{validate, BlockDev, FaultInjector, IoKind, IoPlan, IoReq};
use afc_common::rng::mix64;
use afc_common::{Result, GIB, MIB};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// HDD model parameters.
#[derive(Debug, Clone)]
pub struct HddConfig {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Average seek + rotational latency for a random access.
    pub seek: Duration,
    /// Track-to-track settle for near-sequential access.
    pub settle: Duration,
    /// Offsets within this distance of the previous access count as
    /// sequential.
    pub seq_window: u64,
    /// Media bandwidth (bytes/sec).
    pub bandwidth: u64,
    /// Deterministic jitter amplitude (fraction of service time).
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl HddConfig {
    /// A 7200 RPM nearline disk.
    pub fn nearline_7k2() -> Self {
        HddConfig {
            capacity: 4096 * GIB,
            seek: Duration::from_millis(8),
            settle: Duration::from_micros(500),
            seq_window: 2 * MIB,
            bandwidth: 160 * MIB,
            jitter: 0.15,
            seed: 0xdd_c01d,
        }
    }
}

/// A rotating-disk timing model (single actuator, seek-sensitive).
pub struct Hdd {
    cfg: HddConfig,
    pool: ChannelPool,
    stats: StatsCell,
    faults: FaultInjector,
    op_seq: AtomicU64,
    last_offset: Mutex<u64>,
}

impl Hdd {
    /// Build an HDD from `cfg`.
    pub fn new(cfg: HddConfig) -> Self {
        Hdd {
            pool: ChannelPool::new(1),
            stats: StatsCell::new(),
            faults: FaultInjector::new(),
            op_seq: AtomicU64::new(0),
            last_offset: Mutex::new(0),
            cfg,
        }
    }

    /// Fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Register this device's stat counters into a cluster metric
    /// registry under `<prefix>.<field>` (e.g. `osd0.data.writes`).
    pub fn register_metrics(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        self.stats.register_into(m, prefix);
    }

    fn jitter_mul(&self, n: u64) -> f64 {
        if self.cfg.jitter == 0.0 {
            return 1.0;
        }
        let h = mix64(self.cfg.seed ^ n);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.cfg.jitter * (2.0 * unit - 1.0)
    }

    fn service_time(&self, req: &IoReq, op_n: u64) -> Duration {
        if req.kind == IoKind::Flush {
            return self.cfg.settle;
        }
        let positioning = {
            let mut last = self.last_offset.lock();
            let dist = req.offset.abs_diff(*last);
            *last = req.offset + req.len as u64;
            if dist <= self.cfg.seq_window {
                self.cfg.settle
            } else {
                self.cfg.seek
            }
        };
        let xfer = Duration::from_secs_f64(req.len as f64 / self.cfg.bandwidth as f64);
        (positioning + xfer).mul_f64(self.jitter_mul(op_n))
    }
}

impl BlockDev for Hdd {
    fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    fn plan(&self, req: IoReq) -> Result<IoPlan> {
        validate(&req, self.cfg.capacity)?;
        let spike = self.faults.check(&req)?.unwrap_or_default();
        let op_n = self.op_seq.fetch_add(1, Ordering::Relaxed);
        let service = self.service_time(&req, op_n) + spike;
        let completion = match req.kind {
            IoKind::Flush => self.pool.reserve_barrier(service),
            _ => self.pool.reserve(service),
        };
        match req.kind {
            IoKind::Read => self.stats.on_read(req.len as u64, service, false),
            IoKind::Write => self.stats.on_write(req.len as u64, req.stream, service),
            IoKind::Flush => self.stats.on_flush(service),
        }
        Ok(IoPlan {
            completion,
            service,
        })
    }

    fn stats(&self) -> DevStats {
        self.stats.snapshot()
    }

    fn model(&self) -> &str {
        "hdd-7k2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::KIB;

    fn quiet() -> HddConfig {
        HddConfig {
            jitter: 0.0,
            ..HddConfig::nearline_7k2()
        }
    }

    #[test]
    fn random_access_pays_seek() {
        let hdd = Hdd::new(quiet());
        // Jump far away: full seek.
        let p = hdd.plan(IoReq::read(100 * GIB, 4 * KIB as u32)).unwrap();
        assert!(p.service >= Duration::from_millis(8), "{:?}", p.service);
    }

    #[test]
    fn sequential_access_streams() {
        let hdd = Hdd::new(quiet());
        hdd.plan(IoReq::write(0, MIB as u32)).unwrap();
        // Next write is adjacent: only settle + transfer.
        let p = hdd.plan(IoReq::write(MIB, MIB as u32)).unwrap();
        assert!(p.service < Duration::from_millis(8), "{:?}", p.service);
    }

    #[test]
    fn single_actuator_serializes() {
        let hdd = Hdd::new(quiet());
        let p1 = hdd.plan(IoReq::read(0, 4096)).unwrap();
        let p2 = hdd.plan(IoReq::read(64 * GIB, 4096)).unwrap();
        assert!(p2.completion >= p1.completion + Duration::from_millis(7));
    }

    #[test]
    fn random_iops_are_low() {
        // 4K random reads spread over the disk: ~125 IOPS at 8 ms seek.
        let hdd = Hdd::new(quiet());
        let mut total = Duration::ZERO;
        for i in 0..20u64 {
            let off = (i * 37 % 100) * GIB;
            total += hdd.plan(IoReq::read(off, 4096)).unwrap().service;
        }
        let iops = 20.0 / total.as_secs_f64();
        assert!(iops < 200.0, "iops={iops}");
    }

    #[test]
    fn stats_and_faults() {
        let hdd = Hdd::new(quiet());
        hdd.faults().inject(1);
        assert!(hdd.plan(IoReq::read(0, 512)).is_err());
        hdd.plan(IoReq::write(0, 512)).unwrap();
        assert_eq!(hdd.stats().writes, 1);
        assert_eq!(hdd.model(), "hdd-7k2");
    }
}
