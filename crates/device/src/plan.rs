//! Channel-reservation pool shared by the device models.
//!
//! A device with `n` internal channels can service `n` requests concurrently;
//! further requests queue. [`ChannelPool::reserve`] picks the earliest-free
//! channel, reserves `service` time on it starting no earlier than now, and
//! returns the completion instant. Callers then sleep until completion
//! ([`crate::BlockDev::submit`]) or aggregate several completions (RAID-0).

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Earliest-free-channel reservation pool.
#[derive(Debug)]
pub struct ChannelPool {
    busy_until: Mutex<Vec<Instant>>,
}

impl ChannelPool {
    /// Create a pool with `channels` independent service channels.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "device needs at least one channel");
        ChannelPool {
            busy_until: Mutex::new(vec![Instant::now(); channels]),
        }
    }

    /// Reserve `service` time on the earliest-free channel. Returns the
    /// completion instant (queue wait included).
    pub fn reserve(&self, service: Duration) -> Instant {
        let now = Instant::now();
        let mut slots = self.busy_until.lock();
        let slot = slots
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("pool has at least one channel");
        let start = (*slot).max(now);
        let completion = start + service;
        *slot = completion;
        completion
    }

    /// Reserve `service` time on *every* channel starting after the last
    /// currently-reserved instant — a barrier. Used for flush.
    pub fn reserve_barrier(&self, service: Duration) -> Instant {
        let now = Instant::now();
        let mut slots = self.busy_until.lock();
        let latest = slots.iter().copied().max().unwrap_or(now).max(now);
        let completion = latest + service;
        for s in slots.iter_mut() {
            *s = completion;
        }
        completion
    }

    /// Instant when the whole device goes idle (for tests/metrics).
    pub fn idle_at(&self) -> Instant {
        let slots = self.busy_until.lock();
        slots.iter().copied().max().unwrap_or_else(Instant::now)
    }

    /// Number of channels currently busy (reserved past `now`).
    pub fn busy_channels(&self) -> usize {
        let now = Instant::now();
        self.busy_until.lock().iter().filter(|t| **t > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn single_channel_serializes() {
        let p = ChannelPool::new(1);
        let c1 = p.reserve(10 * MS);
        let c2 = p.reserve(10 * MS);
        // Second reservation starts after the first completes.
        assert!(c2 >= c1 + 10 * MS);
    }

    #[test]
    fn multiple_channels_overlap() {
        let p = ChannelPool::new(4);
        let t0 = Instant::now();
        let completions: Vec<Instant> = (0..4).map(|_| p.reserve(10 * MS)).collect();
        // All four fit concurrently: all complete ~10ms from now.
        for c in &completions {
            assert!(*c <= t0 + 15 * MS, "channel did not run concurrently");
        }
        // A fifth queues behind one of them.
        let c5 = p.reserve(10 * MS);
        assert!(c5 >= t0 + 20 * MS - MS);
    }

    #[test]
    fn barrier_waits_for_all() {
        let p = ChannelPool::new(2);
        let _ = p.reserve(5 * MS);
        let long = p.reserve(20 * MS);
        let b = p.reserve_barrier(MS);
        assert!(b >= long + MS);
        // After a barrier, all channels are busy until the barrier completes.
        assert_eq!(p.busy_channels(), 2);
    }

    #[test]
    fn idle_at_tracks_latest() {
        let p = ChannelPool::new(2);
        let c = p.reserve(50 * MS);
        assert_eq!(p.idle_at(), c);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        ChannelPool::new(0);
    }
}
