//! Battery-backed NVRAM timing model (the paper's journal device).
//!
//! The testbed used an 8 GB PMC NVRAM card per node, shared by 4 OSDs (2 GB
//! of journal each). NVRAM writes are byte-addressable and complete in single-
//! digit microseconds, which is why the paper notes "throttle parameter for
//! journal has no impact because writing journal (NVRAM) is very fast".

use crate::plan::ChannelPool;
use crate::stats::{DevStats, StatsCell};
use crate::{validate, BlockDev, FaultInjector, IoKind, IoPlan, IoReq};
use afc_common::{Result, GIB};
use std::time::Duration;

/// NVRAM model parameters.
#[derive(Debug, Clone)]
pub struct NvramConfig {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Concurrent in-flight operations.
    pub channels: usize,
    /// Fixed access latency.
    pub access: Duration,
    /// Transfer bandwidth (bytes/sec).
    pub bandwidth: u64,
}

impl NvramConfig {
    /// An 8 GB PCIe NVRAM card like the paper's PMC device.
    pub fn pmc_8g() -> Self {
        NvramConfig {
            capacity: 8 * GIB,
            channels: 16,
            access: Duration::from_micros(8),
            bandwidth: 2 * GIB,
        }
    }

    /// Set the capacity (builder style).
    #[must_use]
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }
}

/// Battery-backed NVRAM: microsecond access, deep parallelism.
pub struct Nvram {
    cfg: NvramConfig,
    pool: ChannelPool,
    stats: StatsCell,
    faults: FaultInjector,
}

impl Nvram {
    /// Build an NVRAM device from `cfg`.
    pub fn new(cfg: NvramConfig) -> Self {
        Nvram {
            pool: ChannelPool::new(cfg.channels),
            stats: StatsCell::new(),
            faults: FaultInjector::new(),
            cfg,
        }
    }

    /// Fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Register this device's stat counters into a cluster metric
    /// registry under `<prefix>.<field>` (e.g. `osd0.data.writes`).
    pub fn register_metrics(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        self.stats.register_into(m, prefix);
    }
}

impl BlockDev for Nvram {
    fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    fn plan(&self, req: IoReq) -> Result<IoPlan> {
        validate(&req, self.cfg.capacity)?;
        let spike = self.faults.check(&req)?.unwrap_or_default();
        let xfer = Duration::from_secs_f64(req.len as f64 / self.cfg.bandwidth as f64);
        let service = self.cfg.access + xfer + spike;
        let completion = match req.kind {
            IoKind::Flush => self.pool.reserve_barrier(self.cfg.access),
            _ => self.pool.reserve(service),
        };
        match req.kind {
            IoKind::Read => self.stats.on_read(req.len as u64, service, false),
            IoKind::Write => self.stats.on_write(req.len as u64, req.stream, service),
            IoKind::Flush => self.stats.on_flush(self.cfg.access),
        }
        Ok(IoPlan {
            completion,
            service,
        })
    }

    fn stats(&self) -> DevStats {
        self.stats.snapshot()
    }

    fn model(&self) -> &str {
        "nvram-pmc8g"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::KIB;

    #[test]
    fn writes_are_microsecond_scale() {
        let nv = Nvram::new(NvramConfig::pmc_8g());
        let p = nv.plan(IoReq::write(0, 4 * KIB as u32)).unwrap();
        assert!(p.service < Duration::from_micros(20), "{:?}", p.service);
    }

    #[test]
    fn much_faster_than_ssd_writes() {
        let nv = Nvram::new(NvramConfig::pmc_8g());
        let ssd = crate::Ssd::new(crate::SsdConfig {
            jitter: 0.0,
            ..crate::SsdConfig::sata3()
        });
        let pn = nv.plan(IoReq::write(0, 4096)).unwrap();
        let ps = ssd.plan(IoReq::write(0, 4096)).unwrap();
        assert!(ps.service > pn.service.mul_f64(3.0));
    }

    #[test]
    fn deep_parallelism() {
        let nv = Nvram::new(NvramConfig::pmc_8g());
        let t0 = std::time::Instant::now();
        for i in 0..16 {
            let p = nv.plan(IoReq::write(i * 4096, 4096)).unwrap();
            assert!(p.completion <= t0 + Duration::from_micros(200));
        }
    }

    #[test]
    fn capacity_enforced() {
        let nv = Nvram::new(NvramConfig::pmc_8g().with_capacity(1024));
        assert!(nv.plan(IoReq::write(1024, 1)).is_err());
        assert!(nv.plan(IoReq::write(0, 1024)).is_ok());
    }

    #[test]
    fn flush_is_barrier() {
        let nv = Nvram::new(NvramConfig::pmc_8g());
        let pw = nv.plan(IoReq::write(0, MIB_U32)).unwrap();
        let pf = nv.plan(IoReq::flush()).unwrap();
        assert!(pf.completion >= pw.completion);
        assert_eq!(nv.stats().flushes, 1);
    }

    const MIB_U32: u32 = 1024 * 1024;
}
