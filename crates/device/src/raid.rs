//! RAID-0 striping over member devices.
//!
//! The paper's OSDs each sit on a RAID-0 set of 2–3 SATA SSDs. Striped
//! requests are planned on every involved member up front (reserving channel
//! time on each) and the aggregate completes at the latest member completion,
//! so stripe parallelism is real without helper threads.

use crate::stats::DevStats;
use crate::{validate, BlockDev, IoKind, IoPlan, IoReq};
use afc_common::{AfcError, Result};
use std::sync::Arc;
use std::time::Duration;

/// A RAID-0 (striping) aggregate of homogeneous members.
pub struct Raid0 {
    members: Vec<Arc<dyn BlockDev>>,
    stripe: u64,
    capacity: u64,
}

impl Raid0 {
    /// Build a RAID-0 set with the given stripe unit (bytes).
    pub fn new(members: Vec<Arc<dyn BlockDev>>, stripe: u64) -> Result<Self> {
        if members.is_empty() {
            return Err(AfcError::InvalidArgument(
                "RAID-0 needs at least one member".into(),
            ));
        }
        if stripe == 0 {
            return Err(AfcError::InvalidArgument(
                "stripe unit must be positive".into(),
            ));
        }
        let min_cap = members.iter().map(|m| m.capacity()).min().unwrap();
        let capacity = min_cap * members.len() as u64;
        Ok(Raid0 {
            members,
            stripe,
            capacity,
        })
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Split `[offset, offset+len)` into per-member segments.
    fn segments(&self, offset: u64, len: u64) -> Vec<(usize, u64, u32)> {
        let n = self.members.len() as u64;
        let mut out = Vec::new();
        let mut off = offset;
        let mut remaining = len;
        while remaining > 0 {
            let stripe_idx = off / self.stripe;
            let within = off % self.stripe;
            let member = (stripe_idx % n) as usize;
            let member_stripe = stripe_idx / n;
            let member_off = member_stripe * self.stripe + within;
            let take = (self.stripe - within).min(remaining);
            out.push((member, member_off, take as u32));
            off += take;
            remaining -= take;
        }
        out
    }
}

impl BlockDev for Raid0 {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn plan(&self, req: IoReq) -> Result<IoPlan> {
        validate(&req, self.capacity)?;
        if req.kind == IoKind::Flush {
            let mut latest: Option<IoPlan> = None;
            for m in &self.members {
                let p = m.plan(IoReq::flush())?;
                latest = Some(match latest {
                    Some(prev) if prev.completion >= p.completion => prev,
                    _ => p,
                });
            }
            return Ok(latest.expect("non-empty members"));
        }
        let mut completion = None;
        let mut service = Duration::ZERO;
        for (member, off, len) in self.segments(req.offset, req.len as u64) {
            let p = self.members[member].plan(IoReq {
                kind: req.kind,
                offset: off,
                len,
                stream: req.stream,
            })?;
            service = service.max(p.service);
            completion = Some(match completion {
                Some(prev) if prev >= p.completion => prev,
                _ => p.completion,
            });
        }
        Ok(IoPlan {
            completion: completion.expect("len > 0 produces segments"),
            service,
        })
    }

    fn stats(&self) -> DevStats {
        self.members
            .iter()
            .map(|m| m.stats())
            .fold(DevStats::default(), |acc, s| acc.combined(&s))
    }

    fn model(&self) -> &str {
        "raid0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ssd, SsdConfig};
    use afc_common::{KIB, MIB};
    use std::time::Instant;

    fn raid(width: usize) -> Raid0 {
        let members: Vec<Arc<dyn BlockDev>> = (0..width)
            .map(|i| {
                Arc::new(Ssd::new(SsdConfig {
                    jitter: 0.0,
                    ..SsdConfig::sata3().with_seed(i as u64)
                })) as Arc<dyn BlockDev>
            })
            .collect();
        Raid0::new(members, 64 * KIB).unwrap()
    }

    #[test]
    fn capacity_is_members_times_min() {
        let r = raid(3);
        assert_eq!(r.capacity(), 3 * 512 * afc_common::GIB);
        assert_eq!(r.width(), 3);
    }

    #[test]
    fn small_io_hits_one_member() {
        let r = raid(3);
        let segs = r.segments(4 * KIB, 4 * KIB);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 0); // within first stripe
    }

    #[test]
    fn large_io_spans_members_round_robin() {
        let r = raid(3);
        let segs = r.segments(0, 256 * KIB); // 4 stripes of 64K
        assert_eq!(segs.len(), 4);
        let members: Vec<usize> = segs.iter().map(|s| s.0).collect();
        assert_eq!(members, vec![0, 1, 2, 0]);
        // Second visit to member 0 is its second stripe.
        assert_eq!(segs[3].1, 64 * KIB);
    }

    #[test]
    fn unaligned_io_splits_at_stripe_boundary() {
        let r = raid(2);
        let segs = r.segments(60 * KIB, 8 * KIB);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], (0, 60 * KIB, 4 * KIB as u32));
        assert_eq!(segs[1], (1, 0, 4 * KIB as u32));
    }

    #[test]
    fn striping_overlaps_large_transfers() {
        // A 4 MiB read over 3 members should complete ~3x faster than over 1.
        let r1 = raid(1);
        let r3 = raid(3);
        let t0 = Instant::now();
        let p1 = r1.plan(IoReq::read(0, 4 * MIB as u32)).unwrap();
        let p3 = r3.plan(IoReq::read(0, 4 * MIB as u32)).unwrap();
        let d1 = p1.completion - t0;
        let d3 = p3.completion - t0;
        assert!(d3 < d1.mul_f64(0.5), "d1={d1:?} d3={d3:?}");
    }

    #[test]
    fn stats_aggregate_members() {
        let r = raid(2);
        r.plan(IoReq::write(0, (128 * KIB) as u32)).unwrap();
        let s = r.stats();
        assert_eq!(s.writes, 2); // one 64K segment per member
        assert_eq!(s.bytes_written, 128 * KIB);
    }

    #[test]
    fn flush_fans_out() {
        let r = raid(3);
        r.plan(IoReq::flush()).unwrap();
        assert_eq!(r.stats().flushes, 3);
    }

    #[test]
    fn invalid_construction() {
        assert!(Raid0::new(vec![], 64 * KIB).is_err());
        let m: Vec<Arc<dyn BlockDev>> = vec![Arc::new(Ssd::new(SsdConfig::sata3()))];
        assert!(Raid0::new(m, 0).is_err());
    }

    #[test]
    fn segments_cover_request_exactly() {
        let r = raid(3);
        for (off, len) in [
            (0u64, 1u64),
            (63 * KIB, 2 * KIB),
            (5 * KIB, 300 * KIB),
            (191 * KIB, 66 * KIB),
        ] {
            let segs = r.segments(off, len);
            let total: u64 = segs.iter().map(|s| s.2 as u64).sum();
            assert_eq!(total, len, "off={off} len={len}");
        }
    }
}
