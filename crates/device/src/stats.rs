//! Accumulated device statistics.

use crate::StreamId;
use afc_common::metrics::{Counter, Metrics};
use std::time::Duration;

/// Snapshot of device activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Completed flush requests.
    pub flushes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written (host writes; GC copy-forward excluded).
    pub bytes_written: u64,
    /// Accumulated service time in microseconds (busy time across channels).
    pub busy_us: u64,
    /// Reads that were planned while at least one write was in flight —
    /// the read/write interference events the light-weight transaction
    /// optimization removes from the write path.
    pub interfered_reads: u64,
    /// Host bytes written per stream, indexed by [`StreamId::index`].
    /// Sums to `bytes_written` on stream-aware devices.
    pub stream_bytes: [u64; 6],
    /// Bytes the FTL copied forward during garbage collection (flash
    /// writes beyond the host's). Zero on devices without an FTL model.
    pub gc_copied_bytes: u64,
    /// Garbage-collection passes that stalled a host write.
    pub gc_pauses: u64,
}

/// Thread-safe accumulator backing [`DevStats`]. Fields are shared
/// metric cells so device counters can be registered into a cluster
/// [`Metrics`] registry ([`StatsCell::register_into`]).
#[derive(Debug, Default)]
pub struct StatsCell {
    reads: Counter,
    writes: Counter,
    flushes: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    busy_us: Counter,
    interfered_reads: Counter,
    stream_bytes: [Counter; 6],
    gc_copied_bytes: Counter,
    gc_pauses: Counter,
}

impl StatsCell {
    /// Create a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account a read of `len` bytes taking `service`; `interfered` marks a
    /// read planned while writes were in flight.
    pub fn on_read(&self, len: u64, service: Duration, interfered: bool) {
        self.reads.inc();
        self.bytes_read.add(len);
        self.busy_us.add(service.as_micros() as u64);
        if interfered {
            self.interfered_reads.inc();
        }
    }

    /// Account a host write of `len` bytes on `stream` taking `service`.
    pub fn on_write(&self, len: u64, stream: StreamId, service: Duration) {
        self.writes.inc();
        self.bytes_written.add(len);
        self.stream_bytes[stream.index()].add(len);
        self.busy_us.add(service.as_micros() as u64);
    }

    /// Account a flush taking `service`.
    pub fn on_flush(&self, service: Duration) {
        self.flushes.inc();
        self.busy_us.add(service.as_micros() as u64);
    }

    /// Account `passes` GC passes that copied `copied_bytes` of live data
    /// forward (one host write can trigger a chain of passes).
    pub fn on_gc(&self, passes: u64, copied_bytes: u64) {
        self.gc_pauses.add(passes);
        self.gc_copied_bytes.add(copied_bytes);
    }

    /// Take a consistent-enough snapshot (relaxed reads; counters only).
    pub fn snapshot(&self) -> DevStats {
        DevStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            flushes: self.flushes.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            busy_us: self.busy_us.get(),
            interfered_reads: self.interfered_reads.get(),
            stream_bytes: core::array::from_fn(|i| self.stream_bytes[i].get()),
            gc_copied_bytes: self.gc_copied_bytes.get(),
            gc_pauses: self.gc_pauses.get(),
        }
    }

    /// Register every cell under `<prefix>.<field>` (e.g.
    /// `osd0.data.writes`, `osd0.data.stream.journal.bytes`,
    /// `osd0.data.gc.copied_bytes`). RAID-0 members registered under one
    /// prefix are summed in snapshots, matching [`DevStats::combined`].
    pub fn register_into(&self, m: &Metrics, prefix: &str) {
        let fields: [(&str, &Counter); 9] = [
            ("reads", &self.reads),
            ("writes", &self.writes),
            ("flushes", &self.flushes),
            ("bytes_read", &self.bytes_read),
            ("bytes_written", &self.bytes_written),
            ("busy_us", &self.busy_us),
            ("interfered_reads", &self.interfered_reads),
            ("gc.copied_bytes", &self.gc_copied_bytes),
            ("gc.pauses", &self.gc_pauses),
        ];
        for (name, cell) in fields {
            m.register_counter(format!("{prefix}.{name}"), cell);
        }
        for s in StreamId::ALL {
            let cell = &self.stream_bytes[s.index()];
            m.register_counter(format!("{prefix}.stream.{}.bytes", s.metric_name()), cell);
        }
    }
}

impl DevStats {
    /// Total requests of all kinds.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.flushes
    }

    /// Device-level write amplification: flash page writes (host +
    /// GC copy-forward) over host writes. 1.0 when GC never copied a
    /// live page (or the device has no FTL model / saw no writes).
    pub fn flash_write_amplification(&self) -> f64 {
        if self.bytes_written == 0 {
            return 1.0;
        }
        (self.bytes_written + self.gc_copied_bytes) as f64 / self.bytes_written as f64
    }

    /// Sum two snapshots (used by RAID-0 to aggregate members).
    #[must_use]
    pub fn combined(&self, other: &DevStats) -> DevStats {
        DevStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            flushes: self.flushes + other.flushes,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            busy_us: self.busy_us + other.busy_us,
            interfered_reads: self.interfered_reads + other.interfered_reads,
            stream_bytes: core::array::from_fn(|i| self.stream_bytes[i] + other.stream_bytes[i]),
            gc_copied_bytes: self.gc_copied_bytes + other.gc_copied_bytes,
            gc_pauses: self.gc_pauses + other.gc_pauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let c = StatsCell::new();
        c.on_read(4096, Duration::from_micros(100), false);
        c.on_read(4096, Duration::from_micros(100), true);
        c.on_write(8192, StreamId::Journal, Duration::from_micros(50));
        c.on_flush(Duration::from_micros(10));
        let s = c.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes_read, 8192);
        assert_eq!(s.bytes_written, 8192);
        assert_eq!(s.busy_us, 260);
        assert_eq!(s.interfered_reads, 1);
        assert_eq!(s.stream_bytes[StreamId::Journal.index()], 8192);
        assert_eq!(s.stream_bytes.iter().sum::<u64>(), s.bytes_written);
        assert_eq!(s.total_ops(), 4);
    }

    #[test]
    fn gc_accounting_and_flash_wa() {
        let c = StatsCell::new();
        // No writes yet: WA degenerates to 1.0, not NaN.
        assert_eq!(c.snapshot().flash_write_amplification(), 1.0);
        c.on_write(4096, StreamId::DataCold, Duration::from_micros(50));
        c.on_gc(1, 8192);
        let s = c.snapshot();
        assert_eq!(s.gc_pauses, 1);
        assert_eq!(s.gc_copied_bytes, 8192);
        assert!((s.flash_write_amplification() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn combined_sums_fields() {
        let a = DevStats {
            reads: 1,
            writes: 2,
            flushes: 3,
            bytes_read: 4,
            bytes_written: 5,
            busy_us: 6,
            interfered_reads: 7,
            stream_bytes: [1, 2, 3, 4, 5, 6],
            gc_copied_bytes: 8,
            gc_pauses: 9,
        };
        let b = a;
        let c = a.combined(&b);
        assert_eq!(c.reads, 2);
        assert_eq!(c.interfered_reads, 14);
        assert_eq!(c.stream_bytes, [2, 4, 6, 8, 10, 12]);
        assert_eq!(c.gc_copied_bytes, 16);
        assert_eq!(c.gc_pauses, 18);
        assert_eq!(c.total_ops(), 12);
    }
}
