//! A small flash-translation-layer model: pages, blocks, per-stream
//! allocation groups, valid-page accounting and greedy garbage collection.
//!
//! Real SSDs remap every host write to a fresh flash page; overwritten
//! pages become garbage that GC must reclaim by copying the *live* pages
//! out of a victim erase block. When writes with different lifetimes mix
//! in the same block (journal next to cold data), victims always hold
//! live pages and GC copies them forward — device-level write
//! amplification. Multi-stream separation gives each producer its own
//! allocation group so short-lived blocks die wholesale and GC finds
//! (nearly) empty victims.
//!
//! Scale: modelling the full 512 GiB drive page-by-page would be absurd
//! in a timing simulation, so the FTL models a *representative window*
//! of flash and folds the logical address space onto it
//! (`lpn = page % logical_pages`). Overwrite behaviour — the thing GC
//! cares about — is preserved: hot ranges refold onto the same logical
//! pages and invalidate them, cold ranges stay live. All bookkeeping is
//! plain memory ops; only GC copy-forward charges simulated time (the
//! caller converts copied pages into a service-time stall).

use crate::StreamId;
use afc_common::rng::mix64;
use std::time::Duration;

/// Sentinel: logical page not mapped / physical page never written.
const FREE: u32 = u32::MAX;
/// Sentinel: physical page holds stale (overwritten or trimmed) data.
const INVALID: u32 = u32::MAX - 1;

/// One allocation group per stream when separation is on.
const GROUPS: usize = StreamId::ALL.len();

/// FTL model parameters.
#[derive(Debug, Clone)]
pub struct FtlConfig {
    /// Flash page size in bytes.
    pub page_size: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Physical erase blocks in the modeled window.
    pub blocks: u32,
    /// Over-provisioning: fraction of physical pages *not* exposed as
    /// logical space. Guarantees GC can always find a non-full victim.
    pub op_ratio: f64,
    /// GC engages while the free-block count is at or below this
    /// threshold (free-block pressure, not a write-count modulo).
    pub gc_free_blocks: u32,
    /// Map each [`StreamId`] to its own allocation group. Off = the
    /// community mixed-stream behaviour (everything in one group).
    pub streams_enabled: bool,
    /// Service-time charge per live page GC copies forward (internal
    /// page read + program), billed to the host write that triggered it.
    pub gc_page_cost: Duration,
}

impl Default for FtlConfig {
    fn default() -> Self {
        // 24 MiB modeled window (96 × 64 × 4 KiB), 12.5% over-provisioned.
        // The reserve must exceed `gc_free_blocks` plus one open block per
        // allocation group, or a fully-valid steady state could leave GC
        // with no reclaimable victim (asserted in [`Ftl::new`]).
        FtlConfig {
            page_size: 4096,
            pages_per_block: 64,
            blocks: 96,
            op_ratio: 0.125,
            gc_free_blocks: 4,
            streams_enabled: false,
            gc_page_cost: Duration::from_micros(60),
        }
    }
}

impl FtlConfig {
    /// Enable/disable multi-stream allocation groups (builder style).
    #[must_use]
    pub fn with_streams(mut self, on: bool) -> Self {
        self.streams_enabled = on;
        self
    }
}

/// GC activity caused by one host write (or trim); the device model
/// converts copied pages into a stall charged to that write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// GC passes (erase-block reclaims) triggered.
    pub passes: u64,
    /// Live pages copied forward across those passes.
    pub copied_pages: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    /// On the free list, erased.
    Free,
    /// Open for allocation by some group.
    Active,
    /// Fully written; GC victim candidate.
    Sealed,
}

#[derive(Debug, Clone, Copy)]
struct Active {
    block: u32,
    next: u32,
}

/// The flash-translation layer. Not internally synchronized — the owning
/// device wraps it in a mutex alongside its other write-path state.
#[derive(Debug)]
pub struct Ftl {
    cfg: FtlConfig,
    logical_pages: u32,
    /// lpn → ppn ([`FREE`] if unmapped).
    forward: Vec<u32>,
    /// ppn → lpn ([`FREE`] erased, [`INVALID`] stale).
    rev: Vec<u32>,
    /// Live pages per block.
    valid: Vec<u32>,
    state: Vec<BlockState>,
    /// Group a block was opened under (GC copies stay in this group).
    block_group: Vec<u8>,
    /// Erased blocks, used as a stack.
    free: Vec<u32>,
    active: [Option<Active>; GROUPS],
    host_pages: u64,
    copied_pages: u64,
    gc_passes: u64,
}

impl Ftl {
    /// Build an empty (freshly erased) FTL.
    pub fn new(cfg: FtlConfig) -> Self {
        assert!(cfg.page_size > 0 && cfg.pages_per_block > 0 && cfg.blocks > 1);
        assert!(cfg.gc_free_blocks >= 2, "GC needs transient copy headroom");
        let physical = cfg.blocks * cfg.pages_per_block;
        let logical = ((physical as f64 * (1.0 - cfg.op_ratio)) as u32)
            .clamp(cfg.pages_per_block, physical - cfg.pages_per_block);
        // Over-provisioning floor: with fewer reserve blocks than the GC
        // threshold plus the open blocks, pressure could strand GC with
        // only fully-valid victims.
        let groups = if cfg.streams_enabled {
            GROUPS as u32
        } else {
            1
        };
        assert!(
            cfg.blocks - logical.div_ceil(cfg.pages_per_block) > cfg.gc_free_blocks + groups,
            "over-provisioning too small for gc_free_blocks + stream groups"
        );
        Ftl {
            logical_pages: logical,
            forward: vec![FREE; logical as usize],
            rev: vec![FREE; physical as usize],
            valid: vec![0; cfg.blocks as usize],
            state: vec![BlockState::Free; cfg.blocks as usize],
            block_group: vec![0; cfg.blocks as usize],
            free: (0..cfg.blocks).rev().collect(),
            active: [None; GROUPS],
            host_pages: 0,
            copied_pages: 0,
            gc_passes: 0,
            cfg,
        }
    }

    /// Pre-age to steady state: fill the whole logical span, then
    /// overwrite a seeded pseudorandom half so sealed blocks carry mixed
    /// validity (the fragmentation a drive accumulates in service).
    /// Aging traffic is not counted in the WA statistics.
    pub fn pre_age(&mut self, seed: u64) {
        let mut out = GcOutcome::default();
        for lpn in 0..self.logical_pages {
            self.write_lpn(lpn, self.group_of(StreamId::DataCold), &mut out);
        }
        for i in 0..(self.logical_pages as u64 / 2) {
            let lpn = (mix64(seed ^ i) % self.logical_pages as u64) as u32;
            self.write_lpn(lpn, self.group_of(StreamId::DataCold), &mut out);
        }
        self.host_pages = 0;
        self.copied_pages = 0;
        self.gc_passes = 0;
    }

    /// Logical pages exposed by the folding window.
    pub fn logical_pages(&self) -> u32 {
        self.logical_pages
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// (host pages written, GC-copied pages, GC passes) since creation
    /// (or since [`Ftl::pre_age`]).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.host_pages, self.copied_pages, self.gc_passes)
    }

    /// Device-level write amplification: (host + copied) / host pages.
    pub fn flash_wa(&self) -> f64 {
        if self.host_pages == 0 {
            return 1.0;
        }
        (self.host_pages + self.copied_pages) as f64 / self.host_pages as f64
    }

    fn group_of(&self, stream: StreamId) -> usize {
        if self.cfg.streams_enabled {
            stream.index()
        } else {
            0
        }
    }

    /// Account a host write of `len` bytes at `offset` on `stream`.
    /// Returns the GC work it triggered.
    pub fn host_write(&mut self, offset: u64, len: u32, stream: StreamId) -> GcOutcome {
        let mut out = GcOutcome::default();
        if len == 0 {
            return out;
        }
        let group = self.group_of(stream);
        let page = self.cfg.page_size as u64;
        let first = offset / page;
        let last = (offset + len as u64 - 1) / page;
        for pn in first..=last {
            let lpn = (pn % self.logical_pages as u64) as u32;
            self.write_lpn(lpn, group, &mut out);
            self.host_pages += 1;
        }
        out
    }

    /// Discard the mapping for `[offset, offset+len)` (journal trim,
    /// deleted object). Frees garbage without copying anything.
    pub fn trim(&mut self, offset: u64, len: u32) {
        if len == 0 {
            return;
        }
        let page = self.cfg.page_size as u64;
        let first = offset / page;
        let last = (offset + len as u64 - 1) / page;
        for pn in first..=last.min(first + self.logical_pages as u64 - 1) {
            let lpn = (pn % self.logical_pages as u64) as usize;
            let ppn = self.forward[lpn];
            if ppn != FREE {
                self.invalidate(ppn);
                self.forward[lpn] = FREE;
            }
        }
    }

    fn invalidate(&mut self, ppn: u32) {
        let b = (ppn / self.cfg.pages_per_block) as usize;
        debug_assert!(self.valid[b] > 0);
        self.rev[ppn as usize] = INVALID;
        self.valid[b] -= 1;
    }

    fn write_lpn(&mut self, lpn: u32, group: usize, out: &mut GcOutcome) {
        let old = self.forward[lpn as usize];
        if old != FREE {
            self.invalidate(old);
        }
        let ppn = self.alloc_page(group, true, out);
        self.forward[lpn as usize] = ppn;
        self.rev[ppn as usize] = lpn;
        self.valid[(ppn / self.cfg.pages_per_block) as usize] += 1;
    }

    /// Claim the next page in `group`'s active block, opening a fresh
    /// block (after a pressure-triggered GC sweep when `gc` is set —
    /// GC's own copy-forward allocations must not recurse) as needed.
    fn alloc_page(&mut self, group: usize, gc: bool, out: &mut GcOutcome) -> u32 {
        loop {
            if let Some(a) = &mut self.active[group] {
                if a.next < self.cfg.pages_per_block {
                    let ppn = a.block * self.cfg.pages_per_block + a.next;
                    a.next += 1;
                    return ppn;
                }
                self.state[a.block as usize] = BlockState::Sealed;
                self.active[group] = None;
            }
            if gc {
                while self.free.len() <= self.cfg.gc_free_blocks as usize {
                    if !self.gc_once(out) {
                        break;
                    }
                }
                if self.active[group].is_some() {
                    // GC copy-forward reopened this group's block — use it
                    // instead of popping (and leaking) another free block.
                    continue;
                }
            }
            let b = self
                .free
                .pop()
                .expect("ftl: out of flash (over-provisioning misconfigured)");
            self.state[b as usize] = BlockState::Active;
            self.block_group[b as usize] = group as u8;
            self.active[group] = Some(Active { block: b, next: 1 });
            return b * self.cfg.pages_per_block;
        }
    }

    /// One greedy GC pass: erase the sealed block with the fewest live
    /// pages, copying those pages into its group's active block. Returns
    /// false when no reclaimable victim exists.
    fn gc_once(&mut self, out: &mut GcOutcome) -> bool {
        let victim = (0..self.cfg.blocks)
            .filter(|&b| self.state[b as usize] == BlockState::Sealed)
            .min_by_key(|&b| (self.valid[b as usize], b));
        let Some(victim) = victim else { return false };
        if self.valid[victim as usize] >= self.cfg.pages_per_block {
            // Every sealed block is fully live: copying reclaims nothing.
            return false;
        }
        let group = if self.cfg.streams_enabled {
            self.block_group[victim as usize] as usize
        } else {
            0
        };
        let base = victim * self.cfg.pages_per_block;
        let mut copied = 0u64;
        for slot in 0..self.cfg.pages_per_block {
            let lpn = self.rev[(base + slot) as usize];
            if lpn == FREE || lpn == INVALID {
                continue;
            }
            self.rev[(base + slot) as usize] = INVALID;
            self.valid[victim as usize] -= 1;
            let ppn = self.alloc_page(group, false, out);
            self.forward[lpn as usize] = ppn;
            self.rev[ppn as usize] = lpn;
            self.valid[(ppn / self.cfg.pages_per_block) as usize] += 1;
            copied += 1;
        }
        for slot in 0..self.cfg.pages_per_block {
            self.rev[(base + slot) as usize] = FREE;
        }
        debug_assert_eq!(self.valid[victim as usize], 0);
        self.state[victim as usize] = BlockState::Free;
        self.free.push(victim);
        self.copied_pages += copied;
        self.gc_passes += 1;
        out.copied_pages += copied;
        out.passes += 1;
        true
    }

    /// Model invariants, asserted by the property tests:
    /// every mapped logical page round-trips through the reverse map,
    /// per-block valid counts agree with the reverse map, and no
    /// physical page is claimed by two logical pages.
    pub fn check_invariants(&self) {
        let ppb = self.cfg.pages_per_block;
        let mut live_by_block = vec![0u32; self.cfg.blocks as usize];
        let mut mapped = 0u64;
        for (lpn, &ppn) in self.forward.iter().enumerate() {
            if ppn == FREE {
                continue;
            }
            mapped += 1;
            assert_eq!(
                self.rev[ppn as usize], lpn as u32,
                "forward/reverse map disagree for lpn {lpn}"
            );
            live_by_block[(ppn / ppb) as usize] += 1;
        }
        let mut rev_live = 0u64;
        for &lpn in &self.rev {
            if lpn != FREE && lpn != INVALID {
                rev_live += 1;
            }
        }
        assert_eq!(mapped, rev_live, "a live page was lost or duplicated");
        for (b, &live) in live_by_block.iter().enumerate() {
            assert_eq!(self.valid[b], live, "valid count drifted for block {b}");
            if self.state[b] == BlockState::Free {
                assert_eq!(self.valid[b], 0, "free block {b} holds live pages");
            }
        }
        assert!(self.flash_wa() >= 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(streams: bool) -> FtlConfig {
        FtlConfig {
            pages_per_block: 8,
            blocks: 32,
            op_ratio: 0.3,
            gc_free_blocks: 2,
            streams_enabled: streams,
            ..FtlConfig::default()
        }
    }

    #[test]
    fn clean_sequential_fill_never_collects() {
        let mut f = Ftl::new(tiny(false));
        let span = f.logical_pages() as u64 * 4096;
        let out = f.host_write(0, span as u32, StreamId::DataCold);
        assert_eq!(out, GcOutcome::default());
        assert_eq!(f.flash_wa(), 1.0);
        f.check_invariants();
    }

    #[test]
    fn overwrites_trigger_pressure_gc() {
        let mut f = Ftl::new(tiny(false));
        let span = f.logical_pages() as u64 * 4096;
        // Three full logical laps: folding rewrites every lpn, garbage
        // accumulates, free-block pressure forces GC.
        for lap in 0..3u64 {
            f.host_write(lap * span, span as u32, StreamId::DataCold);
        }
        let (_, _, passes) = f.counters();
        assert!(passes > 0, "GC never fired");
        assert!(f.flash_wa() >= 1.0);
        f.check_invariants();
    }

    #[test]
    fn trim_frees_without_copying() {
        let mut f = Ftl::new(tiny(false));
        let span = f.logical_pages() as u64 * 4096;
        f.host_write(0, span as u32, StreamId::DataCold);
        f.trim(0, span as u32);
        // Everything is garbage: further laps collect empty victims.
        let out = f.host_write(0, span as u32, StreamId::DataCold);
        assert_eq!(out.copied_pages, 0, "trimmed pages were copied");
        f.check_invariants();
    }

    #[test]
    fn stream_separation_cuts_copy_forward() {
        // Mixed lifetimes: a small hot ring (journal-like, dies fast)
        // interleaved with a cold sequential sweep (stays live).
        let run = |streams: bool| {
            let mut f = Ftl::new(tiny(streams));
            let page = 4096u64;
            let cold_pages = (f.logical_pages() / 2) as u64;
            let hot_base = cold_pages * page;
            for i in 0..cold_pages {
                f.host_write(i * page, page as u32, StreamId::DataCold);
                // 4 hot-ring overwrites per cold page, folding over 8 lpns.
                for j in 0..4 {
                    let off = hot_base + ((i * 4 + j) % 8) * page;
                    f.host_write(off, page as u32, StreamId::Journal);
                }
            }
            f.check_invariants();
            (f.flash_wa(), f.counters().1)
        };
        let (wa_mixed, copied_mixed) = run(false);
        let (wa_sep, copied_sep) = run(true);
        assert!(
            copied_sep < copied_mixed,
            "separation did not cut copies: {copied_sep} vs {copied_mixed}"
        );
        assert!(wa_sep < wa_mixed, "WA did not drop: {wa_sep} vs {wa_mixed}");
    }

    #[test]
    fn pre_age_leaves_pressure_but_zeroed_counters() {
        let mut f = Ftl::new(tiny(false));
        f.pre_age(0x5eed);
        assert_eq!(f.counters(), (0, 0, 0));
        // Most of the window is occupied: the free list sits near the
        // pressure threshold, not near the erased-drive count.
        assert!(
            f.free_blocks() <= 8,
            "pre-age left {} free",
            f.free_blocks()
        );
        f.check_invariants();
        // The very next lap of writes meets GC immediately.
        let span = f.logical_pages() as u64 * 4096;
        let out = f.host_write(0, span as u32, StreamId::DataCold);
        assert!(out.passes > 0);
    }
}
