//! Device timing models for `afcstore`.
//!
//! The paper's evaluation runs on real SATA3 SSDs (filestore), PMC NVRAM
//! (journal) and — implicitly, as the design baseline — HDDs. We do not have
//! that hardware, so this crate provides *timing models*: a device computes a
//! service time from its internal state (channel occupancy, clean/sustained
//! flash state, read/write interference, seek position) and the calling
//! thread **sleeps** for it. Upper layers are ordinary blocking code, which
//! preserves exactly the behaviour the paper studies: lock-hold times around
//! device waits, queue backlogs and throttle interactions.
//!
//! Design notes:
//!
//! - [`BlockDev::plan`] reserves time on an internal channel and returns the
//!   completion instant *without sleeping*; [`BlockDev::submit`] plans and
//!   sleeps. RAID-0 plans all stripe segments up front and sleeps until the
//!   latest, so striped I/O genuinely overlaps with zero helper threads.
//! - Devices store no data — data lives in the layers above (page cache,
//!   journal buffer, memtables). Devices account bytes and time only.
//! - All jitter is deterministic (seeded), so runs are reproducible.

pub mod hdd;
pub mod nvram;
pub mod plan;
pub mod raid;
pub mod ssd;
pub mod stats;

pub use hdd::{Hdd, HddConfig};
pub use nvram::{Nvram, NvramConfig};
pub use raid::Raid0;
pub use ssd::{Ssd, SsdConfig, SsdState};
pub use stats::DevStats;

use afc_common::{sleep_for, AfcError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The kind of a device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Read `len` bytes.
    Read,
    /// Write `len` bytes.
    Write,
    /// Barrier/flush (drains device write state).
    Flush,
}

/// A single device request.
#[derive(Debug, Clone, Copy)]
pub struct IoReq {
    /// Request kind.
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes (0 allowed only for `Flush`).
    pub len: u32,
}

impl IoReq {
    /// A read request.
    pub fn read(offset: u64, len: u32) -> Self {
        IoReq {
            kind: IoKind::Read,
            offset,
            len,
        }
    }

    /// A write request.
    pub fn write(offset: u64, len: u32) -> Self {
        IoReq {
            kind: IoKind::Write,
            offset,
            len,
        }
    }

    /// A flush request.
    pub fn flush() -> Self {
        IoReq {
            kind: IoKind::Flush,
            offset: 0,
            len: 0,
        }
    }
}

/// Outcome of planning a request: when it completes and how long the device
/// itself is busy servicing it (excluding queue wait).
#[derive(Debug, Clone, Copy)]
pub struct IoPlan {
    /// Instant at which the request completes.
    pub completion: Instant,
    /// Pure service time (queue wait excluded).
    pub service: Duration,
}

/// A block device timing model.
pub trait BlockDev: Send + Sync {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Reserve device time for `req` and return its completion plan without
    /// blocking. Accounting (byte/op counters) happens here.
    fn plan(&self, req: IoReq) -> Result<IoPlan>;

    /// Submit `req`, blocking the calling thread until the modeled
    /// completion. Returns total request latency (queue wait + service).
    fn submit(&self, req: IoReq) -> Result<Duration> {
        let start = Instant::now();
        let plan = self.plan(req)?;
        let now = Instant::now();
        if plan.completion > now {
            sleep_for(plan.completion - now);
        }
        Ok(start.elapsed())
    }

    /// Snapshot of accumulated statistics.
    fn stats(&self) -> DevStats;

    /// Human-readable model name for reports.
    fn model(&self) -> &str;
}

/// Shared fault-injection hook: devices fail the next `n` requests with
/// an I/O error. Used by failure-injection tests (journal replay, recovery).
#[derive(Debug, Default)]
pub struct FaultInjector {
    remaining: AtomicU64,
}

impl FaultInjector {
    /// Create an injector with no pending faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail the next `n` requests.
    pub fn inject(&self, n: u64) {
        self.remaining.store(n, Ordering::SeqCst);
    }

    /// Consume one fault if armed; returns an error to propagate if so.
    pub fn check(&self) -> Result<()> {
        let mut cur = self.remaining.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                return Ok(());
            }
            match self
                .remaining
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Err(AfcError::Io("injected device fault".into())),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Validate a request against a capacity. Flushes are always valid.
pub(crate) fn validate(req: &IoReq, capacity: u64) -> Result<()> {
    if req.kind == IoKind::Flush {
        return Ok(());
    }
    if req.len == 0 {
        return Err(AfcError::InvalidArgument("zero-length device I/O".into()));
    }
    if req
        .offset
        .checked_add(req.len as u64)
        .map(|e| e > capacity)
        .unwrap_or(true)
    {
        return Err(AfcError::InvalidArgument(format!(
            "device I/O [{}, +{}) beyond capacity {}",
            req.offset, req.len, capacity
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injector_counts_down() {
        let f = FaultInjector::new();
        assert!(f.check().is_ok());
        f.inject(2);
        assert!(f.check().is_err());
        assert!(f.check().is_err());
        assert!(f.check().is_ok());
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        assert!(validate(&IoReq::read(0, 0), 100).is_err());
        assert!(validate(&IoReq::read(90, 20), 100).is_err());
        assert!(validate(&IoReq::write(u64::MAX, 1), 100).is_err());
        assert!(validate(&IoReq::read(0, 100), 100).is_ok());
        assert!(validate(&IoReq::flush(), 100).is_ok());
    }
}
