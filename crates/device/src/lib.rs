//! Device timing models for `afcstore`.
//!
//! The paper's evaluation runs on real SATA3 SSDs (filestore), PMC NVRAM
//! (journal) and — implicitly, as the design baseline — HDDs. We do not have
//! that hardware, so this crate provides *timing models*: a device computes a
//! service time from its internal state (channel occupancy, clean/sustained
//! flash state, read/write interference, seek position) and the calling
//! thread **sleeps** for it. Upper layers are ordinary blocking code, which
//! preserves exactly the behaviour the paper studies: lock-hold times around
//! device waits, queue backlogs and throttle interactions.
//!
//! Design notes:
//!
//! - [`BlockDev::plan`] reserves time on an internal channel and returns the
//!   completion instant *without sleeping*; [`BlockDev::submit`] plans and
//!   sleeps. RAID-0 plans all stripe segments up front and sleeps until the
//!   latest, so striped I/O genuinely overlaps with zero helper threads.
//! - Devices store no data — data lives in the layers above (page cache,
//!   journal buffer, memtables). Devices account bytes and time only.
//! - All jitter is deterministic (seeded), so runs are reproducible.

pub mod hdd;
pub mod nvram;
pub mod plan;
pub mod raid;
pub mod ssd;
pub mod stats;

pub use hdd::{Hdd, HddConfig};
pub use nvram::{Nvram, NvramConfig};
pub use raid::Raid0;
pub use ssd::{Ssd, SsdConfig, SsdState};
pub use stats::DevStats;

use afc_common::faults::{FaultKind, FaultRegistry};
use afc_common::{sleep_for, AfcError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The kind of a device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Read `len` bytes.
    Read,
    /// Write `len` bytes.
    Write,
    /// Barrier/flush (drains device write state).
    Flush,
}

/// A single device request.
#[derive(Debug, Clone, Copy)]
pub struct IoReq {
    /// Request kind.
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes (0 allowed only for `Flush`).
    pub len: u32,
}

impl IoReq {
    /// A read request.
    pub fn read(offset: u64, len: u32) -> Self {
        IoReq {
            kind: IoKind::Read,
            offset,
            len,
        }
    }

    /// A write request.
    pub fn write(offset: u64, len: u32) -> Self {
        IoReq {
            kind: IoKind::Write,
            offset,
            len,
        }
    }

    /// A flush request.
    pub fn flush() -> Self {
        IoReq {
            kind: IoKind::Flush,
            offset: 0,
            len: 0,
        }
    }
}

/// Outcome of planning a request: when it completes and how long the device
/// itself is busy servicing it (excluding queue wait).
#[derive(Debug, Clone, Copy)]
pub struct IoPlan {
    /// Instant at which the request completes.
    pub completion: Instant,
    /// Pure service time (queue wait excluded).
    pub service: Duration,
}

/// A block device timing model.
pub trait BlockDev: Send + Sync {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Reserve device time for `req` and return its completion plan without
    /// blocking. Accounting (byte/op counters) happens here.
    fn plan(&self, req: IoReq) -> Result<IoPlan>;

    /// Submit `req`, blocking the calling thread until the modeled
    /// completion. Returns total request latency (queue wait + service).
    fn submit(&self, req: IoReq) -> Result<Duration> {
        let start = Instant::now();
        let plan = self.plan(req)?;
        let now = Instant::now();
        if plan.completion > now {
            sleep_for(plan.completion - now);
        }
        Ok(start.elapsed())
    }

    /// Snapshot of accumulated statistics.
    fn stats(&self) -> DevStats;

    /// Human-readable model name for reports.
    fn model(&self) -> &str;
}

/// Per-device fault-injection hook.
///
/// Two sources feed it: a legacy countdown ([`inject`](Self::inject) fails
/// the next `n` requests — kept for simple unit tests), and an optional
/// [`FaultRegistry`] attached with a site name, which drives kind-aware
/// faults (errors, latency spikes, torn writes) from a deterministic
/// [`afc_common::faults::FaultPlan`]. Unattached or disarmed, the check
/// costs one atomic load.
#[derive(Debug, Default)]
pub struct FaultInjector {
    remaining: AtomicU64,
    registry: OnceLock<(Arc<FaultRegistry>, String)>,
}

impl FaultInjector {
    /// Create an injector with no pending faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail the next `n` requests (legacy countdown, kind-blind).
    pub fn inject(&self, n: u64) {
        // ordering: test-only countdown. SeqCst keeps the inject visible to
        // the very next request regardless of how the test thread and the
        // device thread are (or aren't) otherwise synchronized; the op is a
        // cold path guarded by the zero check in `check`.
        self.remaining.store(n, Ordering::SeqCst);
    }

    /// Attach a fault registry under `site`. Specs may target the bare site
    /// (`"osd0.journal"`, all I/O) or a verb (`"osd0.journal.write"`).
    /// A second attach is ignored (first one wins).
    pub fn attach(&self, registry: Arc<FaultRegistry>, site: impl Into<String>) {
        let _ = self.registry.set((registry, site.into()));
    }

    /// Consult both fault sources for `req`. `Ok(Some(d))` asks the caller
    /// to stretch the request's service time by `d` (latency spike);
    /// `Err(..)` fails the request — [`AfcError::TornWrite`] for torn
    /// writes, [`AfcError::Io`] otherwise.
    pub fn check(&self, req: &IoReq) -> Result<Option<Duration>> {
        // ordering: matches `inject` — SeqCst so concurrent injectors and the
        // countdown CAS agree on one total order (n injected faults fire
        // exactly n times); on the fast path this is a single uncontended load.
        let mut cur = self.remaining.load(Ordering::SeqCst);
        while cur != 0 {
            match self
                .remaining
                // ordering: see the load above — one total order for the countdown.
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Err(AfcError::Io("injected device fault".into())),
                Err(actual) => cur = actual,
            }
        }
        let Some((reg, site)) = self.registry.get() else {
            return Ok(None);
        };
        let verb = match req.kind {
            IoKind::Read => "read",
            IoKind::Write => "write",
            IoKind::Flush => "flush",
        };
        match reg.check_io(site, verb) {
            None | Some(FaultKind::Drop) | Some(FaultKind::Duplicate) => Ok(None),
            Some(FaultKind::Delay(d)) => Ok(Some(d)),
            Some(FaultKind::Torn) if req.kind == IoKind::Write => Err(AfcError::TornWrite(
                format!("injected torn write at {site}"),
            )),
            Some(FaultKind::Torn) | Some(FaultKind::Error) => {
                Err(AfcError::Io(format!("injected fault at {site}")))
            }
        }
    }
}

/// Validate a request against a capacity. Flushes are always valid.
pub(crate) fn validate(req: &IoReq, capacity: u64) -> Result<()> {
    if req.kind == IoKind::Flush {
        return Ok(());
    }
    if req.len == 0 {
        return Err(AfcError::InvalidArgument("zero-length device I/O".into()));
    }
    if req
        .offset
        .checked_add(req.len as u64)
        .map(|e| e > capacity)
        .unwrap_or(true)
    {
        return Err(AfcError::InvalidArgument(format!(
            "device I/O [{}, +{}) beyond capacity {}",
            req.offset, req.len, capacity
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injector_counts_down() {
        let f = FaultInjector::new();
        let r = IoReq::read(0, 4096);
        assert!(f.check(&r).is_ok());
        f.inject(2);
        assert!(f.check(&r).is_err());
        assert!(f.check(&r).is_err());
        assert!(f.check(&r).is_ok());
    }

    #[test]
    fn registry_driven_faults_by_kind() {
        use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
        let f = FaultInjector::new();
        let reg = Arc::new(FaultRegistry::new());
        f.attach(Arc::clone(&reg), "dev0");
        // Disarmed registry: free pass.
        assert_eq!(f.check(&IoReq::write(0, 512)).unwrap(), None);
        reg.install(FaultSpec::new("dev0.write", FaultKind::Torn).forever());
        reg.install(FaultSpec::new(
            "dev0.read",
            FaultKind::Delay(Duration::from_millis(3)),
        ));
        let torn = f.check(&IoReq::write(0, 512)).unwrap_err();
        assert!(matches!(torn, AfcError::TornWrite(_)), "{torn}");
        assert_eq!(
            f.check(&IoReq::read(0, 512)).unwrap(),
            Some(Duration::from_millis(3))
        );
        // Torn spec targets writes only; reads pass once the delay spec is spent.
        assert_eq!(f.check(&IoReq::read(0, 512)).unwrap(), None);
        assert!(reg.hits("dev0.write") >= 1);
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        assert!(validate(&IoReq::read(0, 0), 100).is_err());
        assert!(validate(&IoReq::read(90, 20), 100).is_err());
        assert!(validate(&IoReq::write(u64::MAX, 1), 100).is_err());
        assert!(validate(&IoReq::read(0, 100), 100).is_ok());
        assert!(validate(&IoReq::flush(), 100).is_ok());
    }
}
