//! Device timing models for `afcstore`.
//!
//! The paper's evaluation runs on real SATA3 SSDs (filestore), PMC NVRAM
//! (journal) and — implicitly, as the design baseline — HDDs. We do not have
//! that hardware, so this crate provides *timing models*: a device computes a
//! service time from its internal state (channel occupancy, clean/sustained
//! flash state, read/write interference, seek position) and the calling
//! thread **sleeps** for it. Upper layers are ordinary blocking code, which
//! preserves exactly the behaviour the paper studies: lock-hold times around
//! device waits, queue backlogs and throttle interactions.
//!
//! Design notes:
//!
//! - [`BlockDev::plan`] reserves time on an internal channel and returns the
//!   completion instant *without sleeping*; [`BlockDev::submit`] plans and
//!   sleeps. RAID-0 plans all stripe segments up front and sleeps until the
//!   latest, so striped I/O genuinely overlaps with zero helper threads.
//! - Devices store no data — data lives in the layers above (page cache,
//!   journal buffer, memtables). Devices account bytes and time only.
//! - All jitter is deterministic (seeded), so runs are reproducible.

pub mod ftl;
pub mod hdd;
pub mod nvram;
pub mod plan;
pub mod raid;
pub mod ssd;
pub mod stats;

pub use ftl::{Ftl, FtlConfig};
pub use hdd::{Hdd, HddConfig};
pub use nvram::{Nvram, NvramConfig};
pub use raid::Raid0;
pub use ssd::{Ssd, SsdConfig, SsdState};
pub use stats::DevStats;

use afc_common::faults::{FaultKind, FaultRegistry};
use afc_common::{sleep_for, AfcError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The kind of a device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Read `len` bytes.
    Read,
    /// Write `len` bytes.
    Write,
    /// Barrier/flush (drains device write state).
    Flush,
}

/// Write-stream tag: which logical producer a write belongs to.
///
/// Multi-stream SSDs (T10 streams / NVMe directives) let the host segregate
/// writes by expected lifetime so the FTL never mixes short-lived journal
/// pages with long-lived cold data in one erase block — the lifetime mixing
/// that forces GC to copy live pages. Every producer in the stack tags its
/// writes; the SSD model maps each stream to its own allocation group when
/// `streams_enabled` is set (and ignores the tag otherwise, reproducing the
/// community mixed-stream behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// OSD journal ring writes (shortest lifetime: trimmed after apply).
    Journal,
    /// KV store write-ahead-log appends (trimmed at memtable flush).
    KvWal,
    /// KV compaction / table-flush output (medium lifetime, sequential).
    KvCompaction,
    /// Filestore metadata (xattrs, allocation hints).
    Meta,
    /// Frequently overwritten object data (per-object heat tracker).
    DataHot,
    /// Rarely overwritten object data. Also the default for untagged I/O
    /// (legacy constructors, tests, non-stream-aware callers): cold data is
    /// the conservative guess — it never steals room from the short-lived
    /// streams.
    DataCold,
}

impl StreamId {
    /// All streams, in allocation-group order.
    pub const ALL: [StreamId; 6] = [
        StreamId::Journal,
        StreamId::KvWal,
        StreamId::KvCompaction,
        StreamId::Meta,
        StreamId::DataHot,
        StreamId::DataCold,
    ];

    /// Stable index (allocation-group slot, metrics array slot).
    pub fn index(&self) -> usize {
        match self {
            StreamId::Journal => 0,
            StreamId::KvWal => 1,
            StreamId::KvCompaction => 2,
            StreamId::Meta => 3,
            StreamId::DataHot => 4,
            StreamId::DataCold => 5,
        }
    }

    /// Metric-name segment (`osd0.data.stream.<this>.bytes`).
    pub fn metric_name(&self) -> &'static str {
        match self {
            StreamId::Journal => "journal",
            StreamId::KvWal => "kv_wal",
            StreamId::KvCompaction => "kv_compaction",
            StreamId::Meta => "meta",
            StreamId::DataHot => "hot",
            StreamId::DataCold => "cold",
        }
    }
}

/// A single device request.
#[derive(Debug, Clone, Copy)]
pub struct IoReq {
    /// Request kind.
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes (0 allowed only for `Flush`).
    pub len: u32,
    /// Write-stream tag (meaningful for writes; ignored for reads/flushes).
    pub stream: StreamId,
}

impl IoReq {
    /// A read request.
    pub fn read(offset: u64, len: u32) -> Self {
        IoReq {
            kind: IoKind::Read,
            offset,
            len,
            stream: StreamId::DataCold,
        }
    }

    /// A write request with no stream tag (defaults to [`StreamId::DataCold`]).
    /// Production write paths should use [`IoReq::write_stream`] — the
    /// `stream-tag` analyze rule polices this in journal/kvstore/filestore.
    pub fn write(offset: u64, len: u32) -> Self {
        IoReq {
            kind: IoKind::Write,
            offset,
            len,
            stream: StreamId::DataCold,
        }
    }

    /// A write request tagged with the producer's stream.
    pub fn write_stream(offset: u64, len: u32, stream: StreamId) -> Self {
        IoReq {
            kind: IoKind::Write,
            offset,
            len,
            stream,
        }
    }

    /// A flush request.
    pub fn flush() -> Self {
        IoReq {
            kind: IoKind::Flush,
            offset: 0,
            len: 0,
            stream: StreamId::DataCold,
        }
    }
}

/// Outcome of planning a request: when it completes and how long the device
/// itself is busy servicing it (excluding queue wait).
#[derive(Debug, Clone, Copy)]
pub struct IoPlan {
    /// Instant at which the request completes.
    pub completion: Instant,
    /// Pure service time (queue wait excluded).
    pub service: Duration,
}

/// A block device timing model.
pub trait BlockDev: Send + Sync {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Reserve device time for `req` and return its completion plan without
    /// blocking. Accounting (byte/op counters) happens here.
    fn plan(&self, req: IoReq) -> Result<IoPlan>;

    /// Submit `req`, blocking the calling thread until the modeled
    /// completion. Returns total request latency (queue wait + service).
    fn submit(&self, req: IoReq) -> Result<Duration> {
        let start = Instant::now();
        let plan = self.plan(req)?;
        let now = Instant::now();
        if plan.completion > now {
            sleep_for(plan.completion - now);
        }
        Ok(start.elapsed())
    }

    /// Snapshot of accumulated statistics.
    fn stats(&self) -> DevStats;

    /// Human-readable model name for reports.
    fn model(&self) -> &str;
}

/// Per-device fault-injection hook.
///
/// Two sources feed it: a legacy countdown ([`inject`](Self::inject) fails
/// the next `n` requests — kept for simple unit tests), and an optional
/// [`FaultRegistry`] attached with a site name, which drives kind-aware
/// faults (errors, latency spikes, torn writes) from a deterministic
/// [`afc_common::faults::FaultPlan`]. Unattached or disarmed, the check
/// costs one atomic load.
#[derive(Debug, Default)]
pub struct FaultInjector {
    remaining: AtomicU64,
    registry: OnceLock<(Arc<FaultRegistry>, String)>,
}

impl FaultInjector {
    /// Create an injector with no pending faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail the next `n` requests (legacy countdown, kind-blind).
    pub fn inject(&self, n: u64) {
        // ordering: test-only countdown. SeqCst keeps the inject visible to
        // the very next request regardless of how the test thread and the
        // device thread are (or aren't) otherwise synchronized; the op is a
        // cold path guarded by the zero check in `check`.
        self.remaining.store(n, Ordering::SeqCst);
    }

    /// Attach a fault registry under `site`. Specs may target the bare site
    /// (`"osd0.journal"`, all I/O) or a verb (`"osd0.journal.write"`).
    /// A second attach is ignored (first one wins).
    pub fn attach(&self, registry: Arc<FaultRegistry>, site: impl Into<String>) {
        let _ = self.registry.set((registry, site.into()));
    }

    /// Consult both fault sources for `req`. `Ok(Some(d))` asks the caller
    /// to stretch the request's service time by `d` (latency spike);
    /// `Err(..)` fails the request — [`AfcError::TornWrite`] for torn
    /// writes, [`AfcError::Io`] otherwise.
    pub fn check(&self, req: &IoReq) -> Result<Option<Duration>> {
        // ordering: matches `inject` — SeqCst so concurrent injectors and the
        // countdown CAS agree on one total order (n injected faults fire
        // exactly n times); on the fast path this is a single uncontended load.
        let mut cur = self.remaining.load(Ordering::SeqCst);
        while cur != 0 {
            match self
                .remaining
                // ordering: see the load above — one total order for the countdown.
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Err(AfcError::Io("injected device fault".into())),
                Err(actual) => cur = actual,
            }
        }
        let Some((reg, site)) = self.registry.get() else {
            return Ok(None);
        };
        let verb = match req.kind {
            IoKind::Read => "read",
            IoKind::Write => "write",
            IoKind::Flush => "flush",
        };
        match reg.check_io(site, verb) {
            None | Some(FaultKind::Drop) | Some(FaultKind::Duplicate) => Ok(None),
            Some(FaultKind::Delay(d)) => Ok(Some(d)),
            Some(FaultKind::Torn) if req.kind == IoKind::Write => Err(AfcError::TornWrite(
                format!("injected torn write at {site}"),
            )),
            Some(FaultKind::Torn) | Some(FaultKind::Error) => {
                Err(AfcError::Io(format!("injected fault at {site}")))
            }
        }
    }
}

/// Validate a request against a capacity. Flushes are always valid.
pub(crate) fn validate(req: &IoReq, capacity: u64) -> Result<()> {
    if req.kind == IoKind::Flush {
        return Ok(());
    }
    if req.len == 0 {
        return Err(AfcError::InvalidArgument("zero-length device I/O".into()));
    }
    if req
        .offset
        .checked_add(req.len as u64)
        .map(|e| e > capacity)
        .unwrap_or(true)
    {
        return Err(AfcError::InvalidArgument(format!(
            "device I/O [{}, +{}) beyond capacity {}",
            req.offset, req.len, capacity
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injector_counts_down() {
        let f = FaultInjector::new();
        let r = IoReq::read(0, 4096);
        assert!(f.check(&r).is_ok());
        f.inject(2);
        assert!(f.check(&r).is_err());
        assert!(f.check(&r).is_err());
        assert!(f.check(&r).is_ok());
    }

    #[test]
    fn registry_driven_faults_by_kind() {
        use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
        let f = FaultInjector::new();
        let reg = Arc::new(FaultRegistry::new());
        f.attach(Arc::clone(&reg), "dev0");
        // Disarmed registry: free pass.
        assert_eq!(f.check(&IoReq::write(0, 512)).unwrap(), None);
        reg.install(FaultSpec::new("dev0.write", FaultKind::Torn).forever());
        reg.install(FaultSpec::new(
            "dev0.read",
            FaultKind::Delay(Duration::from_millis(3)),
        ));
        let torn = f.check(&IoReq::write(0, 512)).unwrap_err();
        assert!(matches!(torn, AfcError::TornWrite(_)), "{torn}");
        assert_eq!(
            f.check(&IoReq::read(0, 512)).unwrap(),
            Some(Duration::from_millis(3))
        );
        // Torn spec targets writes only; reads pass once the delay spec is spent.
        assert_eq!(f.check(&IoReq::read(0, 512)).unwrap(), None);
        assert!(reg.hits("dev0.write") >= 1);
    }

    #[test]
    fn stream_tags_and_defaults() {
        assert_eq!(IoReq::write(0, 4096).stream, StreamId::DataCold);
        assert_eq!(
            IoReq::write_stream(0, 4096, StreamId::Journal).stream,
            StreamId::Journal
        );
        // Indexes are a permutation of 0..6 and metric names are unique.
        let mut seen = [false; 6];
        let mut names = std::collections::HashSet::new();
        for s in StreamId::ALL {
            seen[s.index()] = true;
            names.insert(s.metric_name());
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        assert!(validate(&IoReq::read(0, 0), 100).is_err());
        assert!(validate(&IoReq::read(90, 20), 100).is_err());
        assert!(validate(&IoReq::write(u64::MAX, 1), 100).is_err());
        assert!(validate(&IoReq::read(0, 100), 100).is_ok());
        assert!(validate(&IoReq::flush(), 100).is_ok());
    }
}
