//! Log entries and the bounded in-memory ring.

use crate::Level;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Message payload: owned (formatted at the callsite) or interned (cache).
#[derive(Debug, Clone)]
enum Msg {
    Owned(String),
    Cached(Arc<str>),
}

/// One log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    level: Level,
    subsys: &'static str,
    at: Instant,
    msg: Msg,
}

impl LogEntry {
    /// An entry with an owned, formatted message.
    pub fn new(level: Level, subsys: &'static str, msg: String) -> Self {
        LogEntry {
            level,
            subsys,
            at: Instant::now(),
            msg: Msg::Owned(msg),
        }
    }

    /// An entry referencing an interned message (no allocation).
    pub fn cached(level: Level, subsys: &'static str, msg: Arc<str>) -> Self {
        LogEntry {
            level,
            subsys,
            at: Instant::now(),
            msg: Msg::Cached(msg),
        }
    }

    /// Entry level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Originating subsystem.
    pub fn subsys(&self) -> &'static str {
        self.subsys
    }

    /// Submission timestamp.
    pub fn at(&self) -> Instant {
        self.at
    }

    /// Message text.
    pub fn message(&self) -> &str {
        match &self.msg {
            Msg::Owned(s) => s,
            Msg::Cached(s) => s,
        }
    }

    /// Whether the message came from the intern cache.
    pub fn is_cached(&self) -> bool {
        matches!(self.msg, Msg::Cached(_))
    }
}

/// Bounded ring of recent entries (Ceph's in-memory crash-dump buffer):
/// "the first log entry is overwritten when the number of log entries
/// reaches the limit".
#[derive(Debug)]
pub struct LogRing {
    buf: Mutex<VecDeque<LogEntry>>,
    capacity: usize,
}

impl LogRing {
    /// Create a ring holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LogRing {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(16_384))),
            capacity: capacity.max(1),
        }
    }

    /// Append, evicting the oldest entry at capacity.
    pub fn push(&self, e: LogEntry) {
        let mut b = self.buf.lock();
        if b.len() == self.capacity {
            b.pop_front();
        }
        b.push_back(e);
    }

    /// Snapshot oldest-first.
    pub fn dump(&self) -> Vec<LogEntry> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_accessors() {
        let e = LogEntry::new(Level::Info, "osd", "hello".into());
        assert_eq!(e.level(), Level::Info);
        assert_eq!(e.subsys(), "osd");
        assert_eq!(e.message(), "hello");
        assert!(!e.is_cached());
        let c = LogEntry::cached(Level::Trace, "pg", Arc::from("cached"));
        assert!(c.is_cached());
        assert_eq!(c.message(), "cached");
    }

    #[test]
    fn ring_evicts_oldest() {
        let r = LogRing::new(3);
        for i in 0..5 {
            r.push(LogEntry::new(Level::Debug, "t", format!("{i}")));
        }
        let d = r.dump();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].message(), "2");
        assert_eq!(d[2].message(), "4");
        assert!(!r.is_empty());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn zero_capacity_clamped() {
        let r = LogRing::new(0);
        r.push(LogEntry::new(Level::Debug, "t", "x".into()));
        assert_eq!(r.len(), 1);
    }
}
