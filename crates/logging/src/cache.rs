//! The log-string intern cache.
//!
//! §3.3: "we introduced a log cache where the log entry strings can be
//! stored and retrieved without making them over and over again if the same
//! log is stored multiple times, reducing the number of string operations
//! as well as the new entry assignments." Hot-path log sites emit the same
//! static template millions of times; interning turns each submission into
//! an `Arc` clone instead of a fresh `String`.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Interns `(subsys, template)` pairs to shared formatted strings.
#[derive(Debug, Default)]
pub struct LogCache {
    map: RwLock<HashMap<(usize, usize), Arc<str>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl LogCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the interned formatted string for a static template,
    /// formatting it exactly once per distinct callsite.
    pub fn intern(&self, subsys: &'static str, template: &'static str) -> Arc<str> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = (subsys.as_ptr() as usize, template.as_ptr() as usize);
        if let Some(s) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return Arc::clone(s);
        }
        self.misses.fetch_add(1, Relaxed);
        let mut w = self.map.write();
        Arc::clone(
            w.entry(key)
                .or_insert_with(|| Arc::from(format!("{subsys}: {template}").as_str())),
        )
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Number of distinct interned templates.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_intern_hits_cache() {
        let c = LogCache::new();
        let a = c.intern("osd", "enqueue op");
        let b = c.intern("osd", "enqueue op");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.as_ref(), "osd: enqueue op");
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_callsites_are_distinct() {
        let c = LogCache::new();
        let a = c.intern("osd", "journal write");
        let b = c.intern("pg", "journal write");
        // Same template text, different subsystem pointer → distinct entry.
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn concurrent_intern_is_consistent() {
        let c = LogCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        let s1 = c.intern("osd", "hot path");
                        assert_eq!(s1.as_ref(), "osd: hot path");
                    }
                });
            }
        });
        assert_eq!(c.len(), 1);
        let (hits, misses) = c.stats();
        assert_eq!(hits + misses, 8000);
    }
}
