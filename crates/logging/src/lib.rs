//! The debug-log subsystem (Ceph's `dout`), blocking and non-blocking.
//!
//! §2.3/§3.3 of the paper: every step of the OSD I/O path emits a debug log
//! entry. Community Ceph routes all entries through a single logging thread
//! and the *submitting* thread waits for its entry to be accepted — harmless
//! when each I/O takes milliseconds on an HDD, but on flash "the logging
//! sometimes takes longer than the actual I/O itself".
//!
//! Modes, selected by [`LogMode`]:
//!
//! - [`LogMode::Off`] — entries are counted and dropped (the paper's
//!   "no log" configuration in Figure 4).
//! - [`LogMode::Blocking`] — community behaviour. The submitter formats the
//!   message (a real allocation), enqueues under a global mutex, and blocks
//!   on a condvar until the single logger thread has consumed the entry.
//!   Every cost here is real: allocation, lock contention, two context
//!   switches per entry, FIFO serialization across *all* OSD threads.
//! - [`LogMode::NonBlocking`] — the paper's fix. Submission is a bounded
//!   lock-free channel send (drop-oldest on overflow, counted); multiple
//!   flusher threads drain into the in-memory ring; a [`cache::LogCache`]
//!   interns repeated message strings so hot-path submissions allocate
//!   nothing.
//!
//! The in-memory ring (`dump()`) mirrors Ceph's crash-dump log buffer, and
//! an optional device sink models "filestore logging" to `/var/log`.

pub mod blocking;
pub mod cache;
pub mod entry;
pub mod nonblocking;

pub use cache::LogCache;
pub use entry::{LogEntry, LogRing};

use afc_common::CounterSet;
use std::sync::Arc;

/// Verbosity level, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Errors (always logged when logging is on).
    Error = 0,
    /// Operational info.
    Info = 1,
    /// Per-op debug (level 10-ish in Ceph terms).
    Debug = 2,
    /// Per-step trace (level 20-ish in Ceph terms).
    Trace = 3,
}

/// Logging mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// Logging disabled.
    Off,
    /// Community Ceph: synchronous hand-off to a single logger thread.
    Blocking,
    /// AFCeph: asynchronous bounded queue with parallel flushers.
    NonBlocking,
}

/// Logger configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Mode.
    pub mode: LogMode,
    /// Maximum level recorded (entries above are skipped at the callsite).
    pub max_level: Level,
    /// In-memory ring capacity (entries).
    pub ring_entries: usize,
    /// Bounded submission queue length (non-blocking mode).
    pub queue_entries: usize,
    /// Flusher threads (non-blocking mode).
    pub flushers: usize,
}

impl LogConfig {
    /// Community defaults: blocking, debug level.
    pub fn community() -> Self {
        LogConfig {
            mode: LogMode::Blocking,
            max_level: Level::Debug,
            ring_entries: 10_000,
            queue_entries: 4096,
            flushers: 1,
        }
    }

    /// AFCeph defaults: non-blocking with two flushers.
    pub fn afceph() -> Self {
        LogConfig {
            mode: LogMode::NonBlocking,
            flushers: 2,
            ..Self::community()
        }
    }

    /// Logging off.
    pub fn off() -> Self {
        LogConfig {
            mode: LogMode::Off,
            ..Self::community()
        }
    }
}

enum Backend {
    Off,
    Blocking(blocking::BlockingLogger),
    NonBlocking(nonblocking::NonBlockingLogger),
}

/// The logger façade used by every component on the I/O path.
///
/// Cheap to clone via [`Arc`]; the OSD keeps one per daemon.
pub struct Logger {
    cfg: LogConfig,
    backend: Backend,
    counters: CounterSet,
    cache: LogCache,
}

impl Logger {
    /// Build a logger for `cfg`.
    pub fn new(cfg: LogConfig) -> Arc<Self> {
        let counters = CounterSet::new();
        let backend = match cfg.mode {
            LogMode::Off => Backend::Off,
            LogMode::Blocking => {
                Backend::Blocking(blocking::BlockingLogger::new(cfg.ring_entries, &counters))
            }
            LogMode::NonBlocking => Backend::NonBlocking(nonblocking::NonBlockingLogger::new(
                cfg.ring_entries,
                cfg.queue_entries,
                cfg.flushers.max(1),
                &counters,
            )),
        };
        Arc::new(Logger {
            cfg,
            backend,
            counters,
            cache: LogCache::new(),
        })
    }

    /// Fast level check; callsites skip argument formatting when false.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        !matches!(self.cfg.mode, LogMode::Off) && level <= self.cfg.max_level
    }

    /// Log a static message (the hot-path form: no allocation needed in
    /// non-blocking mode thanks to the string cache).
    #[inline]
    pub fn log(&self, level: Level, subsys: &'static str, msg: &'static str) {
        if !self.enabled(level) {
            self.counters.counter("log.skipped").inc();
            return;
        }
        match &self.backend {
            Backend::Off => unreachable!("enabled() filtered Off"),
            Backend::Blocking(b) => {
                // Community behaviour formats eagerly even for static text.
                b.submit(LogEntry::new(level, subsys, format!("{subsys}: {msg}")));
            }
            Backend::NonBlocking(nb) => {
                let cached = self.cache.intern(subsys, msg);
                nb.submit(LogEntry::cached(level, subsys, cached));
            }
        }
    }

    /// Log a dynamically-formatted message; `f` runs only when enabled.
    pub fn logf(&self, level: Level, subsys: &'static str, f: impl FnOnce() -> String) {
        if !self.enabled(level) {
            self.counters.counter("log.skipped").inc();
            return;
        }
        let msg = f();
        match &self.backend {
            Backend::Off => unreachable!("enabled() filtered Off"),
            Backend::Blocking(b) => b.submit(LogEntry::new(level, subsys, msg)),
            Backend::NonBlocking(nb) => nb.submit(LogEntry::new(level, subsys, msg)),
        }
    }

    /// Snapshot of the in-memory ring (most recent last).
    pub fn dump(&self) -> Vec<LogEntry> {
        match &self.backend {
            Backend::Off => Vec::new(),
            Backend::Blocking(b) => b.dump(),
            Backend::NonBlocking(nb) => nb.dump(),
        }
    }

    /// Wait until previously submitted entries have been processed
    /// (non-blocking mode; no-op otherwise). Test helper.
    pub fn drain(&self) {
        if let Backend::NonBlocking(nb) = &self.backend {
            nb.drain();
        }
    }

    /// Instrumentation counters: `log.submitted`, `log.dropped`,
    /// `log.skipped`, `log.block_wait_us`.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Attach this logger's live counters to a cluster metric registry;
    /// they appear in snapshots as `<prefix>.log.*` (e.g.
    /// `osd0.log.dropped`).
    pub fn attach_metrics(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        m.attach_set(prefix, &self.counters);
    }

    /// The configured mode.
    pub fn mode(&self) -> LogMode {
        self.cfg.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_drops_everything_cheaply() {
        let l = Logger::new(LogConfig::off());
        assert!(!l.enabled(Level::Error));
        l.log(Level::Error, "osd", "boom");
        l.logf(Level::Debug, "osd", || panic!("must not format when off"));
        assert!(l.dump().is_empty());
        assert_eq!(l.counters().get("log.submitted"), 0);
        assert_eq!(l.counters().get("log.skipped"), 2);
    }

    #[test]
    fn level_filter_skips_verbose() {
        let mut cfg = LogConfig::afceph();
        cfg.max_level = Level::Info;
        let l = Logger::new(cfg);
        assert!(l.enabled(Level::Info));
        assert!(!l.enabled(Level::Trace));
        l.log(Level::Trace, "osd", "noise");
        l.drain();
        assert!(l.dump().is_empty());
    }

    #[test]
    fn blocking_mode_records_in_order() {
        let l = Logger::new(LogConfig::community());
        for i in 0..50 {
            l.logf(Level::Debug, "osd", || format!("op {i}"));
        }
        let d = l.dump();
        assert_eq!(d.len(), 50);
        assert!(d[0].message().contains("op 0"));
        assert!(d[49].message().contains("op 49"));
        assert_eq!(l.counters().get("log.submitted"), 50);
    }

    #[test]
    fn nonblocking_mode_records() {
        let l = Logger::new(LogConfig::afceph());
        for i in 0..100 {
            if i % 2 == 0 {
                l.log(Level::Debug, "osd", "static message");
            } else {
                l.logf(Level::Debug, "osd", || format!("dyn {i}"));
            }
        }
        l.drain();
        assert_eq!(l.dump().len(), 100);
        assert_eq!(l.counters().get("log.submitted"), 100);
    }

    #[test]
    fn concurrent_blocking_submissions_all_arrive() {
        let l = Logger::new(LogConfig::community());
        std::thread::scope(|s| {
            for t in 0..8 {
                let l = &l;
                s.spawn(move || {
                    for i in 0..100 {
                        l.logf(Level::Debug, "osd", || format!("t{t} op{i}"));
                    }
                });
            }
        });
        assert_eq!(l.dump().len(), 800);
    }

    #[test]
    fn blocking_wait_time_is_accounted() {
        let l = Logger::new(LogConfig::community());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                s.spawn(move || {
                    for _ in 0..200 {
                        l.log(Level::Debug, "osd", "contend");
                    }
                });
            }
        });
        assert!(l.counters().get("log.block_wait_us") > 0);
    }
}
