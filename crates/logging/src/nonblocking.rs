//! The AFCeph logger: bounded lock-free submission, parallel flushers.
//!
//! §3.3: "We have changed all the logging from synchronous to asynchronous
//! so that it will not be on the critical path anymore... we made the single
//! thread structure multi threaded so that parallel processing is possible."
//! Overflow drops the oldest pending entries (bounded memory, as the paper
//! notes the throttle bounds outstanding operations anyway) and counts them.

use crate::entry::{LogEntry, LogRing};
use afc_common::counters::Counter;
use afc_common::CounterSet;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Asynchronous multi-flusher logger.
pub struct NonBlockingLogger {
    tx: Sender<LogEntry>,
    ring: Arc<LogRing>,
    submitted: Counter,
    dropped: Counter,
    enqueued: Arc<AtomicU64>,
    flushed: Arc<AtomicU64>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl NonBlockingLogger {
    /// Start `flushers` flusher threads over a queue of `queue_entries`.
    pub fn new(
        ring_entries: usize,
        queue_entries: usize,
        flushers: usize,
        counters: &CounterSet,
    ) -> Self {
        let (tx, rx): (Sender<LogEntry>, Receiver<LogEntry>) = bounded(queue_entries.max(1));
        let ring = Arc::new(LogRing::new(ring_entries));
        let enqueued = Arc::new(AtomicU64::new(0));
        let flushed = Arc::new(AtomicU64::new(0));
        let workers = (0..flushers)
            .map(|i| {
                let rx = rx.clone();
                let ring = Arc::clone(&ring);
                let flushed = Arc::clone(&flushed);
                std::thread::Builder::new()
                    .name(format!("log-flush-{i}"))
                    .spawn(move || {
                        while let Ok(entry) = rx.recv() {
                            ring.push(entry);
                            flushed.fetch_add(1, Ordering::Release);
                        }
                    })
                    .expect("spawn log flusher")
            })
            .collect();
        NonBlockingLogger {
            tx,
            ring,
            submitted: counters.counter("log.submitted"),
            dropped: counters.counter("log.dropped"),
            enqueued,
            flushed,
            workers,
        }
    }

    /// Submit without waiting. On a full queue the entry is dropped and
    /// counted — the submitter never blocks.
    pub fn submit(&self, entry: LogEntry) {
        match self.tx.try_send(entry) {
            Ok(()) => {
                self.enqueued.fetch_add(1, Ordering::Release);
                self.submitted.inc();
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.inc();
            }
        }
    }

    /// Ring snapshot.
    pub fn dump(&self) -> Vec<LogEntry> {
        self.ring.dump()
    }

    /// Wait until every accepted entry has reached the ring (test helper).
    pub fn drain(&self) {
        let target = self.enqueued.load(Ordering::Acquire);
        while self.flushed.load(Ordering::Acquire) < target {
            std::thread::yield_now();
        }
    }
}

impl Drop for NonBlockingLogger {
    fn drop(&mut self) {
        // Closing the channel stops the flushers once drained.
        let (dead_tx, _) = bounded(1);
        self.tx = dead_tx;
        for h in self.workers.drain(..) {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn entries_flow_to_ring() {
        let cs = CounterSet::new();
        let l = NonBlockingLogger::new(1000, 256, 2, &cs);
        for i in 0..100 {
            l.submit(LogEntry::new(Level::Debug, "t", format!("{i}")));
        }
        l.drain();
        assert_eq!(l.dump().len(), 100);
        assert_eq!(cs.get("log.submitted"), 100);
        assert_eq!(cs.get("log.dropped"), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let cs = CounterSet::new();
        // A single very slow consumer can't be arranged portably, so use a
        // tiny queue and submit in a burst before flushers catch up.
        let l = NonBlockingLogger::new(10, 1, 1, &cs);
        for i in 0..10_000 {
            l.submit(LogEntry::new(Level::Debug, "t", format!("{i}")));
        }
        l.drain();
        let dropped = cs.get("log.dropped");
        let submitted = cs.get("log.submitted");
        assert_eq!(dropped + submitted, 10_000);
        assert!(dropped > 0, "expected overflow drops");
    }

    #[test]
    fn concurrent_submitters_never_block_forever() {
        let cs = CounterSet::new();
        let l = NonBlockingLogger::new(1000, 128, 2, &cs);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = &l;
                s.spawn(move || {
                    for i in 0..500 {
                        l.submit(LogEntry::new(Level::Trace, "t", format!("{i}")));
                    }
                });
            }
        });
        l.drain();
        assert_eq!(cs.get("log.submitted") + cs.get("log.dropped"), 4000);
    }

    #[test]
    fn drop_joins_flushers() {
        let cs = CounterSet::new();
        let l = NonBlockingLogger::new(100, 64, 3, &cs);
        l.submit(LogEntry::new(Level::Info, "t", "bye".into()));
        drop(l); // must not hang
    }
}
