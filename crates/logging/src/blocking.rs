//! The community logger: a single logging thread, synchronous hand-off.
//!
//! `submit` enqueues under a global mutex and waits until the logger thread
//! has *consumed* the entry ("Ceph still waits for the logging to be
//! completed before proceeding"). The costs are all real: global lock
//! contention between every submitting thread, FIFO serialization through
//! one consumer, and two context switches per entry.

use crate::entry::{LogEntry, LogRing};
use afc_common::counters::Counter;
use afc_common::CounterSet;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

struct Shared {
    queue: Mutex<QueueState>,
    /// Wakes the logger thread when entries arrive.
    work_cv: Condvar,
    /// Wakes submitters when `processed` advances.
    done_cv: Condvar,
}

struct QueueState {
    queue: VecDeque<(u64, LogEntry)>,
    next_seq: u64,
    processed: u64,
    shutdown: bool,
}

/// Single-threaded synchronous logger.
pub struct BlockingLogger {
    shared: Arc<Shared>,
    ring: Arc<LogRing>,
    submitted: Counter,
    wait_us: Counter,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl BlockingLogger {
    /// Start the logger thread.
    pub fn new(ring_entries: usize, counters: &CounterSet) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                next_seq: 1,
                processed: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let ring = Arc::new(LogRing::new(ring_entries));
        let worker = {
            let shared = Arc::clone(&shared);
            let ring = Arc::clone(&ring);
            std::thread::Builder::new()
                .name("log-writer".into())
                .spawn(move || Self::writer_loop(shared, ring))
                .expect("spawn log writer")
        };
        BlockingLogger {
            shared,
            ring,
            submitted: counters.counter("log.submitted"),
            wait_us: counters.counter("log.block_wait_us"),
            worker: Some(worker),
        }
    }

    fn writer_loop(shared: Arc<Shared>, ring: Arc<LogRing>) {
        loop {
            let (seq, entry) = {
                let mut st = shared.queue.lock();
                loop {
                    if let Some(item) = st.queue.pop_front() {
                        break item;
                    }
                    if st.shutdown {
                        return;
                    }
                    shared.work_cv.wait(&mut st);
                }
            };
            // The "write": append to the in-memory ring (Ceph's in-memory
            // log mode). Done outside the queue lock.
            ring.push(entry);
            let mut st = shared.queue.lock();
            st.processed = seq;
            drop(st);
            shared.done_cv.notify_all();
        }
    }

    /// Submit an entry and wait until the logger thread consumed it.
    pub fn submit(&self, entry: LogEntry) {
        let t0 = Instant::now();
        let mut st = self.shared.queue.lock();
        if st.shutdown {
            return;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push_back((seq, entry));
        self.shared.work_cv.notify_one();
        while st.processed < seq && !st.shutdown {
            self.shared.done_cv.wait(&mut st);
        }
        drop(st);
        self.submitted.inc();
        self.wait_us.add(t0.elapsed().as_micros() as u64);
    }

    /// Ring snapshot.
    pub fn dump(&self) -> Vec<LogEntry> {
        self.ring.dump()
    }
}

impl Drop for BlockingLogger {
    fn drop(&mut self) {
        {
            let mut st = self.shared.queue.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        if let Some(h) = self.worker.take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn submit_blocks_until_consumed() {
        let cs = CounterSet::new();
        let l = BlockingLogger::new(100, &cs);
        l.submit(LogEntry::new(Level::Debug, "t", "one".into()));
        // Entry must be visible immediately after submit returns.
        assert_eq!(l.dump().len(), 1);
        assert_eq!(cs.get("log.submitted"), 1);
    }

    #[test]
    fn order_preserved_across_threads_per_thread() {
        let cs = CounterSet::new();
        let l = BlockingLogger::new(10_000, &cs);
        std::thread::scope(|s| {
            for t in 0..4 {
                let l = &l;
                s.spawn(move || {
                    for i in 0..50 {
                        l.submit(LogEntry::new(Level::Debug, "t", format!("{t}:{i}")));
                    }
                });
            }
        });
        let d = l.dump();
        assert_eq!(d.len(), 200);
        // Per-thread order must hold even if threads interleave.
        for t in 0..4 {
            let idxs: Vec<usize> = d
                .iter()
                .enumerate()
                .filter(|(_, e)| e.message().starts_with(&format!("{t}:")))
                .map(|(i, _)| i)
                .collect();
            assert!(idxs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn drop_is_clean_with_pending_state() {
        let cs = CounterSet::new();
        let l = BlockingLogger::new(10, &cs);
        l.submit(LogEntry::new(Level::Debug, "t", "x".into()));
        drop(l); // must not hang
    }
}
