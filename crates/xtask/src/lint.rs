//! Static hygiene checks for the OSD hot path.
//!
//! Five rules, all textual (no rustc plumbing, so the pass runs in
//! milliseconds and works offline):
//!
//! 1. **no-std-sync** — `std::sync::{Mutex, RwLock, Condvar}` are banned
//!    everywhere except the lockdep module itself (whose checker must not
//!    recurse through the tracked types) and `vendor/`. Production code
//!    uses `parking_lot` or the `Tracked*` lockdep wrappers.
//! 2. **no-unwrap-on-sync** — in `crates/{core,journal,filestore,kvstore}`
//!    non-test code, `.unwrap()` / `.expect()` on lock/channel/join
//!    results is banned. Exceptions live in `lint-allow.txt`, which must
//!    only shrink: a stale (over-)allowance fails the pass too.
//! 3. **no-println-in-lib** — library crates log through `afc_logging` or
//!    return errors; `println!`/`eprintln!` belong to binaries, the bench
//!    harness and tests.
//! 4. **pg-state-confinement** — `.state.lock()` / `.state.try_lock()`
//!    in `crates/core/src/osd/` may appear only inside the pending-queue
//!    entry points (`Pg::drain`, `Pg::lock_measured` in `pg.rs`): every
//!    other path must go through the pending FIFO so per-PG ordering is
//!    preserved.
//! 5. **no-discarded-io** — in `crates/{journal,filestore,device}`
//!    non-test code, `let _ = <fallible I/O call>` is banned: a dropped
//!    `Result` from a submit/read/write/sync/apply hides torn writes and
//!    device errors that the fault-injection contract requires callers to
//!    surface. Propagating with `?` on the same line is fine.
//!
//! Rule scopes are declared as data below; fixture-snippet unit tests at
//! the bottom cover each rule.

use std::fmt;
use std::path::Path;

/// Directories (workspace-relative prefixes) never scanned.
const SKIP_PREFIXES: &[&str] = &[
    "vendor", // offline stand-in crates, not ours to police
    "target",
    "crates/xtask", // the linter itself (pattern literals would self-match)
    "bench_results",
];

/// Path substrings marking non-production sources (integration tests,
/// benches, examples) exempt from rules 2 and 3.
const NON_PROD_MARKERS: &[&str] = &["/tests/", "/benches/", "/examples/", "/bin/"];

/// Crates whose non-test sources must not unwrap lock/channel results.
const UNWRAP_SCOPES: &[&str] = &[
    "crates/core/src",
    "crates/journal/src",
    "crates/filestore/src",
    "crates/kvstore/src",
];

/// Crates whose non-test sources must not discard fallible I/O results
/// with `let _ =` (rule 5).
const DISCARD_IO_SCOPES: &[&str] = &[
    "crates/journal/src",
    "crates/filestore/src",
    "crates/device/src",
];

/// Call patterns that make a discarded result an I/O result. Channel
/// sends, thread joins and OnceLock sets stay legal to discard.
const IO_CALL_PATTERNS: &[&str] = &[
    ".submit(",
    ".submit_and_wait(",
    ".queue_transaction(",
    ".apply_sync(",
    ".read(",
    ".write(",
    ".write_at(",
    ".sync(",
    ".flush(",
    ".setxattr(",
    ".getxattr(",
    ".omap_set(",
    ".truncate(",
];

/// Crates exempt from the println rule: the bench harness prints result
/// tables by design.
const PRINTLN_EXEMPT: &[&str] = &["crates/bench"];

/// The one file allowed to use `std::sync` lock primitives.
const STD_SYNC_EXEMPT: &[&str] = &["crates/common/src/lockdep.rs"];

/// Receiver patterns that make a same-line `.unwrap()`/`.expect()` a
/// lock/channel unwrap.
const SYNC_RESULT_PATTERNS: &[&str] = &[
    "lock()",
    "try_lock()",
    "recv()",
    "try_recv()",
    "send(",
    "join()",
];

/// The allowlist for rule 2, workspace-relative. Format: one
/// `path<whitespace>count` entry per line, `#` comments.
const ALLOWLIST_PATH: &str = "crates/xtask/lint-allow.txt";

/// One rule violation at one source line.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, 0 for file-level findings.
    pub line: usize,
    /// Rule slug.
    pub rule: &'static str,
    /// Human explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Run every rule over the workspace at `root`.
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut violations = Vec::new();
    let mut unwrap_counts: Vec<(String, usize)> = Vec::new();
    for rel in &files {
        let content =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        let rel_slash = rel.replace('\\', "/");
        violations.extend(check_std_sync(&rel_slash, &content));
        violations.extend(check_println(&rel_slash, &content));
        violations.extend(check_pg_state_confinement(&rel_slash, &content));
        violations.extend(check_discarded_io(&rel_slash, &content));
        let unwraps = find_sync_unwraps(&rel_slash, &content);
        if !unwraps.is_empty() {
            unwrap_counts.push((rel_slash.clone(), unwraps.len()));
            violations.extend(unwraps);
        }
    }
    let allow = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    violations = apply_allowlist(violations, &unwrap_counts, &allow);
    Ok(violations)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                || rel.starts_with('.')
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn is_non_prod(path: &str) -> bool {
    NON_PROD_MARKERS
        .iter()
        .any(|m| format!("/{path}").contains(m))
}

/// Line classification shared by the rules: per line, whether it falls
/// inside a `#[cfg(test)]` module (tracked by brace depth).
fn test_region_mask(content: &str) -> Vec<bool> {
    let mut mask = Vec::new();
    let mut in_test = false;
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    for line in content.lines() {
        let code = strip_line_comment(line);
        if !in_test {
            if code.contains("#[cfg(test)]") {
                pending_attr = true;
                mask.push(false);
                continue;
            }
            if pending_attr {
                // Attributes may stack (`#[cfg(test)]` then `#[allow...]`).
                if code.trim_start().starts_with("#[") {
                    mask.push(false);
                    continue;
                }
                if code.contains("mod ") {
                    in_test = true;
                    depth = 0;
                }
                pending_attr = false;
            }
        }
        mask.push(in_test);
        if in_test {
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if depth <= 0 && code.contains('}') {
                in_test = false;
            }
        }
    }
    mask
}

/// Drop `// ...` trailers so commentary never triggers a rule. (String
/// literals containing `//` are rare enough in this codebase to ignore.)
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

// ---------------------------------------------------------------- //
// Rule 1: no std::sync lock primitives outside lockdep
// ---------------------------------------------------------------- //

fn check_std_sync(path: &str, content: &str) -> Vec<Violation> {
    if STD_SYNC_EXEMPT.contains(&path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let code = strip_line_comment(line);
        let direct = [
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
        ]
        .iter()
        .find(|p| code.contains(*p));
        let imported = code.trim_start().starts_with("use std::sync::")
            && ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|t| contains_word(code, t));
        if let Some(p) = direct {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "no-std-sync",
                msg: format!("{p} is banned: use parking_lot or afc_common::lockdep::Tracked*"),
            });
        } else if imported {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "no-std-sync",
                msg: "importing std::sync lock primitives is banned: use parking_lot or \
                      afc_common::lockdep::Tracked*"
                    .to_string(),
            });
        }
    }
    out
}

fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok =
            end == hay.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

// ---------------------------------------------------------------- //
// Rule 2: no unwrap/expect on lock/channel results (hot-path crates)
// ---------------------------------------------------------------- //

fn find_sync_unwraps(path: &str, content: &str) -> Vec<Violation> {
    if !UNWRAP_SCOPES.iter().any(|s| path.starts_with(s)) || is_non_prod(path) {
        return Vec::new();
    }
    let mask = test_region_mask(content);
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let code = strip_line_comment(line);
        for needle in [".unwrap()", ".expect("] {
            let Some(pos) = code.find(needle) else {
                continue;
            };
            if SYNC_RESULT_PATTERNS.iter().any(|p| code[..pos].contains(p)) {
                out.push(Violation {
                    file: path.to_string(),
                    line: i + 1,
                    rule: "no-unwrap-on-sync",
                    msg: format!(
                        "{} on a lock/channel result in hot-path code: handle the error \
                         (shutdown is not exceptional)",
                        needle.trim_end_matches('(')
                    ),
                });
                break;
            }
        }
    }
    out
}

/// Apply the must-only-shrink allowlist to the no-unwrap-on-sync findings.
fn apply_allowlist(
    violations: Vec<Violation>,
    counts: &[(String, usize)],
    allow: &str,
) -> Vec<Violation> {
    let mut allowed: Vec<(String, usize)> = Vec::new();
    for line in allow.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(p), Some(n)) = (it.next(), it.next()) {
            if let Ok(n) = n.parse::<usize>() {
                allowed.push((p.to_string(), n));
            }
        }
    }
    let mut out: Vec<Violation> = Vec::new();
    for v in violations {
        if v.rule != "no-unwrap-on-sync" {
            out.push(v);
            continue;
        }
        let actual = counts
            .iter()
            .find(|(p, _)| *p == v.file)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let budget = allowed
            .iter()
            .find(|(p, _)| *p == v.file)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if actual > budget {
            out.push(v);
        }
    }
    // Stale allowances: the list may only shrink, so an entry above the
    // actual count (or for a clean file) is itself a failure.
    for (p, budget) in &allowed {
        let actual = counts
            .iter()
            .find(|(f, _)| f == p)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if actual < *budget {
            out.push(Violation {
                file: p.clone(),
                line: 0,
                rule: "no-unwrap-on-sync",
                msg: format!(
                    "allowlist entry permits {budget} unwrap(s) but only {actual} remain: \
                     shrink {ALLOWLIST_PATH}"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- //
// Rule 3: no println!/eprintln! in library crates
// ---------------------------------------------------------------- //

fn check_println(path: &str, content: &str) -> Vec<Violation> {
    if !path.starts_with("crates/")
        || PRINTLN_EXEMPT.iter().any(|p| path.starts_with(p))
        || is_non_prod(path)
    {
        return Vec::new();
    }
    let mask = test_region_mask(content);
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let code = strip_line_comment(line);
        // `eprintln!` first: `println!` is a substring of it.
        if let Some(m) = ["eprintln!", "println!"].iter().find(|m| code.contains(*m)) {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "no-println-in-lib",
                msg: format!("{m} in library code: use afc_logging or return an error"),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- //
// Rule 5: no `let _ =` on fallible I/O calls (storage crates)
// ---------------------------------------------------------------- //

fn check_discarded_io(path: &str, content: &str) -> Vec<Violation> {
    if !DISCARD_IO_SCOPES.iter().any(|s| path.starts_with(s)) || is_non_prod(path) {
        return Vec::new();
    }
    let mask = test_region_mask(content);
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let code = strip_line_comment(line);
        let Some(pos) = code.find("let _ =") else {
            continue;
        };
        let rest = &code[pos + "let _ =".len()..];
        // `let _ = io()?;` propagates the error — only the success value
        // is discarded, which is fine.
        if rest.contains('?') {
            continue;
        }
        if let Some(p) = IO_CALL_PATTERNS.iter().find(|p| rest.contains(*p)) {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "no-discarded-io",
                msg: format!(
                    "`let _ =` discards the Result of {}...): handle or propagate it — \
                     swallowed I/O errors defeat the torn-write/fault-injection contract",
                    p.trim_end_matches('(')
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- //
// Rule 4: Pg::state lock confinement
// ---------------------------------------------------------------- //

fn check_pg_state_confinement(path: &str, content: &str) -> Vec<Violation> {
    if !path.starts_with("crates/core/src/osd") {
        return Vec::new();
    }
    let sanctioned = if path.ends_with("/pg.rs") || path == "crates/core/src/osd/pg.rs" {
        fn_body_mask(content, &["drain", "lock_measured"])
    } else {
        vec![false; content.lines().count()]
    };
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let code = strip_line_comment(line);
        if !(code.contains(".state.lock(") || code.contains(".state.try_lock(")) {
            continue;
        }
        if sanctioned.get(i).copied().unwrap_or(false) {
            continue;
        }
        out.push(Violation {
            file: path.to_string(),
            line: i + 1,
            rule: "pg-state-confinement",
            msg: "direct Pg::state lock outside Pg::drain/Pg::lock_measured: go through \
                  the pending queue so per-PG ordering is preserved"
                .to_string(),
        });
    }
    out
}

/// Per-line mask: true inside the body of any `fn <name>` in `names`.
fn fn_body_mask(content: &str, names: &[&str]) -> Vec<bool> {
    let mut mask = Vec::new();
    let mut inside = false;
    let mut depth: i64 = 0;
    for line in content.lines() {
        let code = strip_line_comment(line);
        if !inside
            && names
                .iter()
                .any(|n| code.contains(&format!("fn {n}(")) || code.contains(&format!("fn {n} (")))
        {
            inside = true;
            depth = 0;
        }
        mask.push(inside);
        if inside {
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if depth <= 0 && code.contains('}') {
                inside = false;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    // -------- rule 1 fixtures -------- //

    #[test]
    fn std_sync_mutex_is_flagged() {
        let src = "use std::sync::Mutex;\nstatic S: Mutex<u32> = Mutex::new(0);\n";
        let v = check_std_sync("crates/core/src/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-std-sync");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn std_sync_fully_qualified_is_flagged_anywhere() {
        let src = "fn f() { let m = std::sync::RwLock::new(5); }\n";
        let v = check_std_sync("crates/device/src/lib.rs", src);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn std_sync_atomics_and_arc_are_fine() {
        let src = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\nuse std::sync::mpsc;\n";
        assert!(check_std_sync("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn lockdep_itself_may_use_std_sync() {
        let src = "use std::sync::Mutex; // sanctioned\n";
        assert!(check_std_sync("crates/common/src/lockdep.rs", src).is_empty());
    }

    #[test]
    fn commented_mention_is_not_flagged() {
        let src = "// std::sync::Mutex would poison here\nfn f() {}\n";
        assert!(check_std_sync("crates/core/src/foo.rs", src).is_empty());
    }

    // -------- rule 2 fixtures -------- //

    #[test]
    fn unwrap_on_lock_result_is_flagged() {
        let src = "fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap();\n}\n";
        let v = find_sync_unwraps("crates/core/src/osd/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap-on-sync");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_on_channel_result_is_flagged() {
        let src = "fn f(rx: Receiver<u32>) {\n    let x = rx.recv().expect(\"alive\");\n}\n";
        assert_eq!(find_sync_unwraps("crates/journal/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { h.join().unwrap(); }\n}\n";
        assert!(find_sync_unwraps("crates/filestore/src/store.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_scoped_crates_is_exempt() {
        let src = "fn f() { h.join().unwrap(); }\n";
        assert!(find_sync_unwraps("crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_on_parse_is_not_a_sync_unwrap() {
        let src = "fn f(s: &str) -> u64 { s.parse().unwrap() }\n";
        assert!(find_sync_unwraps("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allowlist_budget_suppresses_and_must_shrink() {
        let v = vec![Violation {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            rule: "no-unwrap-on-sync",
            msg: "m".into(),
        }];
        let counts = vec![("crates/core/src/x.rs".to_string(), 1)];
        // Exact budget: suppressed.
        assert!(apply_allowlist(filter_clone(&v), &counts, "crates/core/src/x.rs 1\n").is_empty());
        // No budget: reported.
        assert_eq!(apply_allowlist(filter_clone(&v), &counts, "").len(), 1);
        // Over-budget (stale entry): reported as a must-shrink failure.
        let stale = apply_allowlist(filter_clone(&v), &counts, "crates/core/src/x.rs 5\n");
        assert_eq!(stale.len(), 1);
        assert!(stale[0].msg.contains("shrink"), "{}", stale[0].msg);
    }

    fn filter_clone(v: &[Violation]) -> Vec<Violation> {
        v.iter()
            .map(|x| Violation {
                file: x.file.clone(),
                line: x.line,
                rule: x.rule,
                msg: x.msg.clone(),
            })
            .collect()
    }

    // -------- rule 3 fixtures -------- //

    #[test]
    fn println_in_lib_is_flagged() {
        let src = "pub fn f() {\n    println!(\"debug\");\n}\n";
        let v = check_println("crates/journal/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-println-in-lib");
    }

    #[test]
    fn eprintln_in_lib_is_flagged() {
        let src = "pub fn f() { eprintln!(\"oops\"); }\n";
        assert_eq!(check_println("crates/kvstore/src/db.rs", src).len(), 1);
    }

    #[test]
    fn println_in_bench_harness_bin_and_tests_is_exempt() {
        let src = "pub fn f() { println!(\"table\"); }\n";
        assert!(check_println("crates/bench/src/lib.rs", src).is_empty());
        assert!(check_println("crates/core/src/bin/tool.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(check_println("crates/core/src/lib.rs", test_src).is_empty());
    }

    // -------- rule 5 fixtures -------- //

    #[test]
    fn discarded_journal_submit_is_flagged() {
        let src = "fn f(j: &Journal) {\n    let _ = j.submit(p, cb);\n}\n";
        let v = check_discarded_io("crates/journal/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-discarded-io");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn discarded_device_write_is_flagged() {
        let src = "fn f(d: &Ssd) { let _ = d.write(req); }\n";
        assert_eq!(check_discarded_io("crates/device/src/ssd.rs", src).len(), 1);
    }

    #[test]
    fn discarded_queue_transaction_is_flagged() {
        let src = "fn f(fs: &FileStore) { let _ = fs.queue_transaction(txn, cb); }\n";
        assert_eq!(
            check_discarded_io("crates/filestore/src/store.rs", src).len(),
            1
        );
    }

    #[test]
    fn question_mark_propagation_is_exempt() {
        let src = "fn f(fs: &SimFs) -> Result<()> {\n    let _ = fs.getxattr(o, \"_\")?;\n    Ok(())\n}\n";
        assert!(check_discarded_io("crates/filestore/src/store.rs", src).is_empty());
    }

    #[test]
    fn discarded_channel_send_and_join_are_exempt() {
        let src = "fn f() {\n    let _ = tx.send(1);\n    let _ = h.join();\n    let _ = cell.set(v);\n}\n";
        assert!(check_discarded_io("crates/journal/src/lib.rs", src).is_empty());
    }

    #[test]
    fn discarded_io_in_tests_and_foreign_crates_is_exempt() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = j.submit(p, cb); }\n}\n";
        assert!(check_discarded_io("crates/journal/src/lib.rs", test_src).is_empty());
        let src = "fn f() { let _ = j.submit(p, cb); }\n";
        assert!(check_discarded_io("crates/core/src/osd/mod.rs", src).is_empty());
        assert!(check_discarded_io("crates/journal/tests/replay.rs", src).is_empty());
    }

    // -------- rule 4 fixtures -------- //

    #[test]
    fn pg_state_lock_outside_entry_points_is_flagged() {
        let src = "fn sneaky(pg: &Pg) {\n    let g = pg.state.lock();\n}\n";
        let v = check_pg_state_confinement("crates/core/src/osd/mod.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pg-state-confinement");
    }

    #[test]
    fn pg_state_lock_inside_drain_and_lock_measured_is_sanctioned() {
        let src = "impl Pg {\n    pub fn drain(&self) {\n        let g = self.state.try_lock();\n    }\n    pub fn lock_measured(&self) {\n        let g = self.state.lock();\n    }\n}\n";
        assert!(check_pg_state_confinement("crates/core/src/osd/pg.rs", src).is_empty());
    }

    #[test]
    fn pg_state_lock_elsewhere_in_pg_rs_is_flagged() {
        let src = "impl Pg {\n    pub fn backdoor(&self) {\n        let g = self.state.lock();\n    }\n}\n";
        assert_eq!(
            check_pg_state_confinement("crates/core/src/osd/pg.rs", src).len(),
            1
        );
    }

    #[test]
    fn pg_state_rule_scoped_to_osd_dir() {
        let src = "fn f(t: &Throttle) { let g = t.state.lock(); }\n";
        assert!(check_pg_state_confinement("crates/filestore/src/throttle.rs", src).is_empty());
    }

    // -------- shared machinery -------- //

    #[test]
    fn test_region_mask_tracks_nested_braces() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        if x { y(); }\n    }\n}\nfn b() {}\n";
        let mask = test_region_mask(src);
        assert!(!mask[0]); // fn a
        assert!(mask[3]); // fn t
        assert!(mask[4]); // nested braces
        assert!(!mask[7]); // fn b after the mod closes
    }
}
