//! Workspace automation. Run as `cargo xtask <command>` (see
//! `.cargo/config.toml` for the alias).
//!
//! Commands:
//!
//! - `analyze` — the cross-file static-analysis pass over the workspace
//!   sources (lock order, site names, memory-ordering hygiene, plus the
//!   original hygiene rules; see the `analyze` crate for the rule
//!   catalog). Exits non-zero on violations, so CI and pre-commit hooks
//!   can gate on it. `--json` emits the `afc-analyze/1` schema on
//!   stdout; `--write-report PATH` additionally writes it to a file.
//! - `lint` — deprecated alias for `analyze` (kept for muscle memory
//!   and old scripts).
//! - `bench-check` — re-run the deterministic smoke workload and compare
//!   against the committed `BENCH_baseline.json`; exits non-zero when any
//!   write-path stage, IOPS, logical write amplification, or device-level
//!   flash write amplification regresses past the tolerance (see
//!   `afc_bench::baseline`). Also applies the QoS fairness gate to the
//!   committed `bench_results/qos.json` (see `afc_bench::qos::gate_rows`).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|e| {
            eprintln!("xtask: cannot resolve workspace root: {e}");
            std::process::exit(2);
        })
}

fn run_analyze(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut write_report: Option<PathBuf> = None;
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--write-report" => match it.next() {
                Some(p) => write_report = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask analyze: --write-report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("xtask analyze: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let report = match analyze::analyze(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &write_report {
        if let Err(e) = std::fs::write(path, analyze::to_json(&report)) {
            eprintln!("xtask analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", analyze::to_json(&report));
    } else {
        for d in &report.diags {
            println!("{d}");
        }
        println!(
            "xtask analyze: {} file(s), {} finding(s), {} suppressed by baseline{}",
            report.files_scanned,
            report.diags.len(),
            report.suppressed,
            if report.is_clean() { " — clean" } else { "" }
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => run_analyze(&args[1..]),
        Some("lint") => {
            eprintln!(
                "xtask lint: deprecated alias — use `cargo xtask analyze` \
                 (same rules and exit codes, plus --json)"
            );
            run_analyze(&args[1..])
        }
        Some("bench-check") => {
            // Delegate to the bench crate's baseline binary so xtask stays
            // lean; --release because debug-build timings would trip the
            // latency gates.
            let status = std::process::Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "--quiet",
                    "--package",
                    "afc-bench",
                    "--bin",
                    "baseline",
                    "--",
                    "--check",
                ])
                .current_dir(workspace_root())
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask bench-check: cannot run cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown command '{other}' (expected: analyze, lint, bench-check)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <analyze|lint|bench-check>");
            ExitCode::from(2)
        }
    }
}
