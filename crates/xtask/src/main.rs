//! Workspace automation. Run as `cargo xtask <command>` (see
//! `.cargo/config.toml` for the alias).
//!
//! Commands:
//!
//! - `lint` — the concurrency/static hygiene pass over the workspace
//!   sources (see [`lint`] for the rules). Exits non-zero on violations,
//!   so CI and pre-commit hooks can gate on it.
//! - `bench-check` — re-run the deterministic smoke workload and compare
//!   against the committed `BENCH_baseline.json`; exits non-zero when any
//!   write-path stage, IOPS, or write amplification regresses past the
//!   tolerance (see `afc_bench::baseline`).

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|e| {
            eprintln!("xtask: cannot resolve workspace root: {e}");
            std::process::exit(2);
        })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            let violations = match lint::run(&root) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::from(2);
                }
            };
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some("bench-check") => {
            // Delegate to the bench crate's baseline binary so xtask keeps
            // zero dependencies; --release because debug-build timings
            // would trip the latency gates.
            let status = std::process::Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "--quiet",
                    "--package",
                    "afc-bench",
                    "--bin",
                    "baseline",
                    "--",
                    "--check",
                ])
                .current_dir(workspace_root())
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask bench-check: cannot run cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown command '{other}' (expected: lint, bench-check)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <lint|bench-check>");
            ExitCode::from(2)
        }
    }
}
