//! Property tests for CRUSH placement invariants.

use afc_common::{NodeId, ObjectId, OsdId, PgId, PoolId};
use afc_crush::osdmap::PoolSpec;
use afc_crush::{CrushMap, OsdMap};
use proptest::prelude::*;

fn arbitrary_map() -> impl Strategy<Value = (CrushMap, u32, usize)> {
    (2u32..8, 1u32..5, 1usize..4).prop_map(|(nodes, osds, size)| {
        (
            CrushMap::uniform(nodes, osds),
            nodes,
            size.min(nodes as usize),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Selection is deterministic, the right size, duplicate-free, and
    /// never co-locates replicas on one host.
    #[test]
    fn select_invariants((crush, _nodes, size) in arbitrary_map(), seq in 0u32..4096) {
        let pg = PgId { pool: PoolId(0), seq };
        let a = crush.select(pg, size, &|_| false);
        let b = crush.select(pg, size, &|_| false);
        prop_assert_eq!(&a, &b, "non-deterministic");
        prop_assert_eq!(a.len(), size);
        let mut hosts: Vec<NodeId> = a.iter().map(|o| crush.host_of(*o).unwrap()).collect();
        hosts.sort();
        let before = hosts.len();
        hosts.dedup();
        prop_assert_eq!(hosts.len(), before, "replicas share a host");
    }

    /// Excluding OSDs never returns an excluded OSD and keeps determinism.
    #[test]
    fn exclusion_respected((crush, nodes, size) in arbitrary_map(), seq in 0u32..1024, dead in 0u32..16) {
        let osds = crush.osds();
        let dead = osds[dead as usize % osds.len()];
        let pg = PgId { pool: PoolId(0), seq };
        let picked = crush.select(pg, size, &|o| o == dead);
        prop_assert!(!picked.contains(&dead));
        let _ = nodes;
    }

    /// Object→PG→OSD is stable through the OsdMap layer, and every object
    /// maps somewhere valid.
    #[test]
    fn object_placement_total(name in "[a-z0-9._-]{1,40}", pgs in 1u32..512) {
        let mut m = OsdMap::new(CrushMap::uniform(4, 2));
        m.add_pool(PoolId(0), PoolSpec { pg_num: pgs, size: 2 }).unwrap();
        let obj = ObjectId::new(PoolId(0), name);
        let (pg, acting) = m.object_placement(&obj).unwrap();
        prop_assert!(pg.seq < pgs);
        prop_assert_eq!(acting.len(), 2);
        prop_assert!(acting.iter().all(|o| o.0 < 8));
        prop_assert_eq!(m.object_placement(&obj).unwrap(), (pg, acting));
    }

    /// Marking one OSD down only shrinks acting sets that contained it;
    /// every other PG's acting set is untouched (stability).
    #[test]
    fn down_is_local(seq in 0u32..256, victim in 0u32..8) {
        let mut m = OsdMap::new(CrushMap::uniform(4, 2));
        m.add_pool(PoolId(0), PoolSpec { pg_num: 256, size: 2 }).unwrap();
        let pg = PgId { pool: PoolId(0), seq };
        let before = m.pg_acting(pg).unwrap();
        m.set_up(OsdId(victim), false);
        let after = m.pg_acting(pg).unwrap();
        if before.contains(&OsdId(victim)) {
            let survivors: Vec<_> = before.iter().copied().filter(|o| *o != OsdId(victim)).collect();
            prop_assert_eq!(after, survivors);
        } else {
            prop_assert_eq!(after, before);
        }
    }
}
