//! The versioned OSD map shared by monitors, OSDs and clients.

use crate::map::CrushMap;
use afc_common::{AfcError, Epoch, ObjectId, OsdId, PgId, PoolId, Result};
use std::collections::BTreeMap;

/// Liveness/membership status of an OSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsdStatus {
    /// Process is running and heartbeating.
    pub up: bool,
    /// OSD participates in placement (down+out OSDs are remapped around).
    pub in_cluster: bool,
}

impl Default for OsdStatus {
    fn default() -> Self {
        OsdStatus {
            up: true,
            in_cluster: true,
        }
    }
}

/// Pool parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolSpec {
    /// Number of PGs.
    pub pg_num: u32,
    /// Replication factor (paper uses 2).
    pub size: usize,
}

/// A versioned cluster map: CRUSH hierarchy + OSD statuses + pools.
#[derive(Debug, Clone)]
pub struct OsdMap {
    epoch: Epoch,
    crush: CrushMap,
    status: BTreeMap<OsdId, OsdStatus>,
    pools: BTreeMap<PoolId, PoolSpec>,
    /// Temporary acting-set overrides installed during peering, so a
    /// caught-up survivor can keep primaryship while the CRUSH-preferred
    /// OSD recovers (Ceph's `pg_temp`). Cleared when recovery completes.
    pg_temp: BTreeMap<PgId, Vec<OsdId>>,
}

impl OsdMap {
    /// Create epoch-1 map from a CRUSH hierarchy; all OSDs up+in.
    pub fn new(crush: CrushMap) -> Self {
        let status = crush
            .osds()
            .into_iter()
            .map(|o| (o, OsdStatus::default()))
            .collect();
        OsdMap {
            epoch: Epoch(1),
            crush,
            status,
            pools: BTreeMap::new(),
            pg_temp: BTreeMap::new(),
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The CRUSH hierarchy.
    pub fn crush(&self) -> &CrushMap {
        &self.crush
    }

    /// Register a pool. Bumps the epoch.
    pub fn add_pool(&mut self, pool: PoolId, spec: PoolSpec) -> Result<()> {
        if spec.pg_num == 0 || spec.size == 0 {
            return Err(AfcError::InvalidArgument(
                "pool needs pg_num > 0 and size > 0".into(),
            ));
        }
        if self.pools.insert(pool, spec).is_some() {
            return Err(AfcError::AlreadyExists(format!("{pool}")));
        }
        self.epoch = self.epoch.next();
        Ok(())
    }

    /// Pool spec lookup.
    pub fn pool(&self, pool: PoolId) -> Result<PoolSpec> {
        self.pools
            .get(&pool)
            .copied()
            .ok_or_else(|| AfcError::NotFound(format!("{pool}")))
    }

    /// All pools.
    pub fn pools(&self) -> impl Iterator<Item = (PoolId, PoolSpec)> + '_ {
        self.pools.iter().map(|(p, s)| (*p, *s))
    }

    /// Status of an OSD (default up+in when untracked).
    pub fn osd_status(&self, osd: OsdId) -> OsdStatus {
        self.status.get(&osd).copied().unwrap_or_default()
    }

    /// Mark an OSD up/down. Bumps the epoch only on an actual transition:
    /// re-marking a down OSD down must not invalidate maps (that would
    /// retrigger peering across the cluster for a no-op).
    pub fn set_up(&mut self, osd: OsdId, up: bool) {
        let st = self.status.entry(osd).or_default();
        if st.up == up {
            return;
        }
        st.up = up;
        self.epoch = self.epoch.next();
    }

    /// Mark an OSD in/out of placement. Bumps the epoch only on an actual
    /// transition (idempotent like [`OsdMap::set_up`]).
    pub fn set_in(&mut self, osd: OsdId, in_cluster: bool) {
        let st = self.status.entry(osd).or_default();
        if st.in_cluster == in_cluster {
            return;
        }
        st.in_cluster = in_cluster;
        self.epoch = self.epoch.next();
    }

    /// Install a temporary acting-set override for a PG (primary first).
    /// Idempotent: re-installing the same override does not bump the epoch.
    pub fn set_pg_temp(&mut self, pg: PgId, acting: Vec<OsdId>) {
        if self.pg_temp.get(&pg) == Some(&acting) {
            return;
        }
        self.pg_temp.insert(pg, acting);
        self.epoch = self.epoch.next();
    }

    /// Remove a PG's temporary acting-set override. Idempotent.
    pub fn clear_pg_temp(&mut self, pg: PgId) {
        if self.pg_temp.remove(&pg).is_some() {
            self.epoch = self.epoch.next();
        }
    }

    /// Install several `pg_temp` overrides in one epoch bump (a recovery
    /// tick publishes its whole batch as a single map version). No-op
    /// entries don't count; an all-no-op batch leaves the epoch alone.
    pub fn set_pg_temps(&mut self, temps: &[(PgId, Vec<OsdId>)]) {
        let mut changed = false;
        for (pg, acting) in temps {
            if self.pg_temp.get(pg) == Some(acting) {
                continue;
            }
            self.pg_temp.insert(*pg, acting.clone());
            changed = true;
        }
        if changed {
            self.epoch = self.epoch.next();
        }
    }

    /// Remove several `pg_temp` overrides in one epoch bump. Idempotent
    /// like [`OsdMap::set_pg_temps`].
    pub fn clear_pg_temps(&mut self, pgs: &[PgId]) {
        let mut changed = false;
        for pg in pgs {
            changed |= self.pg_temp.remove(pg).is_some();
        }
        if changed {
            self.epoch = self.epoch.next();
        }
    }

    /// The temporary acting-set override for a PG, if any.
    pub fn pg_temp(&self, pg: PgId) -> Option<&[OsdId]> {
        self.pg_temp.get(&pg).map(|v| v.as_slice())
    }

    /// Replace the CRUSH hierarchy (cluster expansion). Bumps the epoch and
    /// tracks any new OSDs as up+in.
    pub fn set_crush(&mut self, crush: CrushMap) {
        for o in crush.osds() {
            self.status.entry(o).or_default();
        }
        self.crush = crush;
        self.epoch = self.epoch.next();
    }

    /// Map an object to its PG.
    pub fn object_pg(&self, obj: &ObjectId) -> Result<PgId> {
        let spec = self.pool(obj.pool)?;
        Ok(obj.pg(spec.pg_num))
    }

    /// The *placed set* of a PG: CRUSH's choice excluding **out** OSDs but
    /// *including* down-but-in ones. This is the set that is expected to
    /// hold the PG's data once everyone is healthy again — primaries use
    /// `placed − acting` to know which absent peers are missing each write.
    pub fn pg_placed(&self, pg: PgId) -> Result<Vec<OsdId>> {
        let spec = self.pool(pg.pool)?;
        Ok(self
            .crush
            .select(pg, spec.size, &|o| !self.osd_status(o).in_cluster))
    }

    /// The *acting set* of a PG, primary first.
    ///
    /// A `pg_temp` override (installed during recovery) wins when it still
    /// names at least one up+in OSD. Otherwise placement excludes **out**
    /// OSDs (CRUSH re-descends; their data is rebalanced by backfill),
    /// while **down-but-in** OSDs are merely dropped from the placed set —
    /// the PG runs *degraded* on the survivors until the peer returns and
    /// recovery replays what it missed (see DESIGN.md).
    pub fn pg_acting(&self, pg: PgId) -> Result<Vec<OsdId>> {
        if let Some(temp) = self.pg_temp.get(&pg) {
            let acting: Vec<OsdId> = temp
                .iter()
                .copied()
                .filter(|o| {
                    let st = self.osd_status(*o);
                    st.up && st.in_cluster
                })
                .collect();
            if !acting.is_empty() {
                return Ok(acting);
            }
        }
        let acting: Vec<OsdId> = self
            .pg_placed(pg)?
            .into_iter()
            .filter(|o| self.osd_status(*o).up)
            .collect();
        if acting.is_empty() {
            return Err(AfcError::NotFound(format!("no acting OSDs for pg {pg}")));
        }
        Ok(acting)
    }

    /// Primary OSD for a PG.
    pub fn pg_primary(&self, pg: PgId) -> Result<OsdId> {
        Ok(self.pg_acting(pg)?[0])
    }

    /// Full placement of an object: `(pg, acting-set)`.
    pub fn object_placement(&self, obj: &ObjectId) -> Result<(PgId, Vec<OsdId>)> {
        let pg = self.object_pg(obj)?;
        let acting = self.pg_acting(pg)?;
        Ok((pg, acting))
    }

    /// All PGs of a pool whose primary is `osd` (used by OSDs to know which
    /// PGs they lead).
    pub fn primary_pgs_of(&self, pool: PoolId, osd: OsdId) -> Result<Vec<PgId>> {
        let spec = self.pool(pool)?;
        let mut out = Vec::new();
        for seq in 0..spec.pg_num {
            let pg = PgId { pool, seq };
            if self.pg_primary(pg)? == osd {
                out.push(pg);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4x4() -> OsdMap {
        let mut m = OsdMap::new(CrushMap::uniform(4, 4));
        m.add_pool(
            PoolId(0),
            PoolSpec {
                pg_num: 256,
                size: 2,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn pool_registration() {
        let mut m = OsdMap::new(CrushMap::uniform(2, 2));
        assert!(m.pool(PoolId(0)).is_err());
        m.add_pool(
            PoolId(0),
            PoolSpec {
                pg_num: 64,
                size: 2,
            },
        )
        .unwrap();
        assert_eq!(m.pool(PoolId(0)).unwrap().pg_num, 64);
        assert!(m
            .add_pool(PoolId(0), PoolSpec { pg_num: 1, size: 1 })
            .is_err());
        assert!(m
            .add_pool(PoolId(1), PoolSpec { pg_num: 0, size: 1 })
            .is_err());
        assert_eq!(m.pools().count(), 1);
    }

    #[test]
    fn epoch_bumps_on_changes() {
        let mut m = map4x4();
        let e0 = m.epoch();
        m.set_up(OsdId(3), false);
        assert!(m.epoch() > e0);
        let e1 = m.epoch();
        m.set_crush(CrushMap::uniform(5, 4));
        assert!(m.epoch() > e1);
    }

    #[test]
    fn status_transitions_are_idempotent() {
        // Regression: re-marking a down OSD down (or an out OSD out) used
        // to bump the epoch, spuriously invalidating every cached map.
        let mut m = map4x4();
        m.set_up(OsdId(3), false);
        let e = m.epoch();
        m.set_up(OsdId(3), false);
        assert_eq!(m.epoch(), e, "no-op set_up must not bump the epoch");
        m.set_up(OsdId(3), true);
        assert!(m.epoch() > e);

        let e = m.epoch();
        m.set_in(OsdId(5), true); // already in
        assert_eq!(m.epoch(), e, "no-op set_in must not bump the epoch");
        m.set_in(OsdId(5), false);
        assert!(m.epoch() > e);
        let e = m.epoch();
        m.set_in(OsdId(5), false);
        assert_eq!(m.epoch(), e);
    }

    #[test]
    fn pg_temp_overrides_acting_until_cleared() {
        let mut m = map4x4();
        let pg = PgId {
            pool: PoolId(0),
            seq: 7,
        };
        let crush_acting = m.pg_acting(pg).unwrap();
        let swapped: Vec<OsdId> = crush_acting.iter().rev().copied().collect();
        m.set_pg_temp(pg, swapped.clone());
        let e = m.epoch();
        assert_eq!(m.pg_acting(pg).unwrap(), swapped);
        assert_eq!(m.pg_temp(pg), Some(swapped.as_slice()));
        // Idempotent re-install: no epoch bump.
        m.set_pg_temp(pg, swapped.clone());
        assert_eq!(m.epoch(), e);
        // Down members are filtered out of the override.
        m.set_up(swapped[0], false);
        let acting = m.pg_acting(pg).unwrap();
        assert!(!acting.contains(&swapped[0]));
        m.set_up(swapped[0], true);
        // Clearing restores CRUSH placement; clearing twice is a no-op.
        m.clear_pg_temp(pg);
        assert_eq!(m.pg_acting(pg).unwrap(), crush_acting);
        let e = m.epoch();
        m.clear_pg_temp(pg);
        assert_eq!(m.epoch(), e);
    }

    #[test]
    fn placed_set_includes_down_but_in_osds() {
        let mut m = map4x4();
        let pg = PgId {
            pool: PoolId(0),
            seq: 11,
        };
        let placed = m.pg_placed(pg).unwrap();
        assert_eq!(placed.len(), 2);
        m.set_up(placed[0], false);
        // Down-but-in: still placed, no longer acting.
        assert_eq!(m.pg_placed(pg).unwrap(), placed);
        assert!(!m.pg_acting(pg).unwrap().contains(&placed[0]));
        // Out: removed from the placed set entirely.
        m.set_in(placed[0], false);
        assert!(!m.pg_placed(pg).unwrap().contains(&placed[0]));
    }

    #[test]
    fn object_placement_consistent() {
        let m = map4x4();
        let obj = ObjectId::new(PoolId(0), "rbd_data.vm1.000000000000002a");
        let (pg, acting) = m.object_placement(&obj).unwrap();
        assert_eq!(acting.len(), 2);
        assert_eq!(m.pg_primary(pg).unwrap(), acting[0]);
        assert_eq!(m.object_pg(&obj).unwrap(), pg);
    }

    #[test]
    fn down_osd_leaves_degraded_survivors() {
        let mut m = map4x4();
        // Record acting sets, then kill osd.0: its PGs must keep exactly
        // their surviving member (degraded), promoting it to primary.
        let pgs = m.primary_pgs_of(PoolId(0), OsdId(0)).unwrap();
        assert!(!pgs.is_empty());
        let before: Vec<(PgId, Vec<OsdId>)> = pgs
            .iter()
            .map(|pg| (*pg, m.pg_acting(*pg).unwrap()))
            .collect();
        m.set_up(OsdId(0), false);
        for (pg, old) in before {
            let acting = m.pg_acting(pg).unwrap();
            assert!(
                !acting.contains(&OsdId(0)),
                "pg {pg} still maps to down osd"
            );
            assert_eq!(acting.len(), 1, "degraded PG runs on the survivor");
            assert_eq!(
                acting[0], old[1],
                "survivor (old replica) promoted to primary"
            );
        }
    }

    #[test]
    fn out_osd_is_remapped_around() {
        let mut m = map4x4();
        m.set_in(OsdId(7), false);
        for seq in 0..256 {
            let acting = m
                .pg_acting(PgId {
                    pool: PoolId(0),
                    seq,
                })
                .unwrap();
            assert!(!acting.contains(&OsdId(7)));
        }
    }

    #[test]
    fn every_osd_leads_some_pgs() {
        let m = map4x4();
        for o in m.crush().osds() {
            let pgs = m.primary_pgs_of(PoolId(0), o).unwrap();
            assert!(!pgs.is_empty(), "{o} leads no PGs");
        }
    }

    #[test]
    fn expansion_keeps_most_placements() {
        let m = map4x4();
        let mut grown = m.clone();
        grown.set_crush(CrushMap::uniform(5, 4));
        let mut moved = 0;
        for seq in 0..256 {
            let pg = PgId {
                pool: PoolId(0),
                seq,
            };
            let a = m.pg_acting(pg).unwrap();
            let b = grown.pg_acting(pg).unwrap();
            moved += a.iter().filter(|o| !b.contains(o)).count();
        }
        assert!(moved < 256, "moved {moved} of 512 replicas");
    }

    #[test]
    fn unknown_pool_errors() {
        let m = map4x4();
        let obj = ObjectId::new(PoolId(9), "x");
        assert!(matches!(m.object_pg(&obj), Err(AfcError::NotFound(_))));
    }
}
