//! The versioned OSD map shared by monitors, OSDs and clients.

use crate::map::CrushMap;
use afc_common::{AfcError, Epoch, ObjectId, OsdId, PgId, PoolId, Result};
use std::collections::BTreeMap;

/// Liveness/membership status of an OSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsdStatus {
    /// Process is running and heartbeating.
    pub up: bool,
    /// OSD participates in placement (down+out OSDs are remapped around).
    pub in_cluster: bool,
}

impl Default for OsdStatus {
    fn default() -> Self {
        OsdStatus {
            up: true,
            in_cluster: true,
        }
    }
}

/// Pool parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolSpec {
    /// Number of PGs.
    pub pg_num: u32,
    /// Replication factor (paper uses 2).
    pub size: usize,
}

/// A versioned cluster map: CRUSH hierarchy + OSD statuses + pools.
#[derive(Debug, Clone)]
pub struct OsdMap {
    epoch: Epoch,
    crush: CrushMap,
    status: BTreeMap<OsdId, OsdStatus>,
    pools: BTreeMap<PoolId, PoolSpec>,
}

impl OsdMap {
    /// Create epoch-1 map from a CRUSH hierarchy; all OSDs up+in.
    pub fn new(crush: CrushMap) -> Self {
        let status = crush
            .osds()
            .into_iter()
            .map(|o| (o, OsdStatus::default()))
            .collect();
        OsdMap {
            epoch: Epoch(1),
            crush,
            status,
            pools: BTreeMap::new(),
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The CRUSH hierarchy.
    pub fn crush(&self) -> &CrushMap {
        &self.crush
    }

    /// Register a pool. Bumps the epoch.
    pub fn add_pool(&mut self, pool: PoolId, spec: PoolSpec) -> Result<()> {
        if spec.pg_num == 0 || spec.size == 0 {
            return Err(AfcError::InvalidArgument(
                "pool needs pg_num > 0 and size > 0".into(),
            ));
        }
        if self.pools.insert(pool, spec).is_some() {
            return Err(AfcError::AlreadyExists(format!("{pool}")));
        }
        self.epoch = self.epoch.next();
        Ok(())
    }

    /// Pool spec lookup.
    pub fn pool(&self, pool: PoolId) -> Result<PoolSpec> {
        self.pools
            .get(&pool)
            .copied()
            .ok_or_else(|| AfcError::NotFound(format!("{pool}")))
    }

    /// All pools.
    pub fn pools(&self) -> impl Iterator<Item = (PoolId, PoolSpec)> + '_ {
        self.pools.iter().map(|(p, s)| (*p, *s))
    }

    /// Status of an OSD (default up+in when untracked).
    pub fn osd_status(&self, osd: OsdId) -> OsdStatus {
        self.status.get(&osd).copied().unwrap_or_default()
    }

    /// Mark an OSD up/down. Bumps the epoch.
    pub fn set_up(&mut self, osd: OsdId, up: bool) {
        self.status.entry(osd).or_default().up = up;
        self.epoch = self.epoch.next();
    }

    /// Mark an OSD in/out of placement. Bumps the epoch.
    pub fn set_in(&mut self, osd: OsdId, in_cluster: bool) {
        self.status.entry(osd).or_default().in_cluster = in_cluster;
        self.epoch = self.epoch.next();
    }

    /// Replace the CRUSH hierarchy (cluster expansion). Bumps the epoch and
    /// tracks any new OSDs as up+in.
    pub fn set_crush(&mut self, crush: CrushMap) {
        for o in crush.osds() {
            self.status.entry(o).or_default();
        }
        self.crush = crush;
        self.epoch = self.epoch.next();
    }

    /// Map an object to its PG.
    pub fn object_pg(&self, obj: &ObjectId) -> Result<PgId> {
        let spec = self.pool(obj.pool)?;
        Ok(obj.pg(spec.pg_num))
    }

    /// The *acting set* of a PG, primary first.
    ///
    /// Placement excludes **out** OSDs (CRUSH re-descends; their data is
    /// expected to be rebalanced), while **down-but-in** OSDs are merely
    /// dropped from the placed set — the PG runs *degraded* on the
    /// survivors, which is Ceph's short-term behaviour before backfill
    /// (backfill/recovery data movement is out of scope here; see
    /// DESIGN.md).
    pub fn pg_acting(&self, pg: PgId) -> Result<Vec<OsdId>> {
        let spec = self.pool(pg.pool)?;
        let placed = self
            .crush
            .select(pg, spec.size, &|o| !self.osd_status(o).in_cluster);
        let acting: Vec<OsdId> = placed
            .into_iter()
            .filter(|o| self.osd_status(*o).up)
            .collect();
        if acting.is_empty() {
            return Err(AfcError::NotFound(format!("no acting OSDs for pg {pg}")));
        }
        Ok(acting)
    }

    /// Primary OSD for a PG.
    pub fn pg_primary(&self, pg: PgId) -> Result<OsdId> {
        Ok(self.pg_acting(pg)?[0])
    }

    /// Full placement of an object: `(pg, acting-set)`.
    pub fn object_placement(&self, obj: &ObjectId) -> Result<(PgId, Vec<OsdId>)> {
        let pg = self.object_pg(obj)?;
        let acting = self.pg_acting(pg)?;
        Ok((pg, acting))
    }

    /// All PGs of a pool whose primary is `osd` (used by OSDs to know which
    /// PGs they lead).
    pub fn primary_pgs_of(&self, pool: PoolId, osd: OsdId) -> Result<Vec<PgId>> {
        let spec = self.pool(pool)?;
        let mut out = Vec::new();
        for seq in 0..spec.pg_num {
            let pg = PgId { pool, seq };
            if self.pg_primary(pg)? == osd {
                out.push(pg);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4x4() -> OsdMap {
        let mut m = OsdMap::new(CrushMap::uniform(4, 4));
        m.add_pool(
            PoolId(0),
            PoolSpec {
                pg_num: 256,
                size: 2,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn pool_registration() {
        let mut m = OsdMap::new(CrushMap::uniform(2, 2));
        assert!(m.pool(PoolId(0)).is_err());
        m.add_pool(
            PoolId(0),
            PoolSpec {
                pg_num: 64,
                size: 2,
            },
        )
        .unwrap();
        assert_eq!(m.pool(PoolId(0)).unwrap().pg_num, 64);
        assert!(m
            .add_pool(PoolId(0), PoolSpec { pg_num: 1, size: 1 })
            .is_err());
        assert!(m
            .add_pool(PoolId(1), PoolSpec { pg_num: 0, size: 1 })
            .is_err());
        assert_eq!(m.pools().count(), 1);
    }

    #[test]
    fn epoch_bumps_on_changes() {
        let mut m = map4x4();
        let e0 = m.epoch();
        m.set_up(OsdId(3), false);
        assert!(m.epoch() > e0);
        let e1 = m.epoch();
        m.set_crush(CrushMap::uniform(5, 4));
        assert!(m.epoch() > e1);
    }

    #[test]
    fn object_placement_consistent() {
        let m = map4x4();
        let obj = ObjectId::new(PoolId(0), "rbd_data.vm1.000000000000002a");
        let (pg, acting) = m.object_placement(&obj).unwrap();
        assert_eq!(acting.len(), 2);
        assert_eq!(m.pg_primary(pg).unwrap(), acting[0]);
        assert_eq!(m.object_pg(&obj).unwrap(), pg);
    }

    #[test]
    fn down_osd_leaves_degraded_survivors() {
        let mut m = map4x4();
        // Record acting sets, then kill osd.0: its PGs must keep exactly
        // their surviving member (degraded), promoting it to primary.
        let pgs = m.primary_pgs_of(PoolId(0), OsdId(0)).unwrap();
        assert!(!pgs.is_empty());
        let before: Vec<(PgId, Vec<OsdId>)> = pgs
            .iter()
            .map(|pg| (*pg, m.pg_acting(*pg).unwrap()))
            .collect();
        m.set_up(OsdId(0), false);
        for (pg, old) in before {
            let acting = m.pg_acting(pg).unwrap();
            assert!(
                !acting.contains(&OsdId(0)),
                "pg {pg} still maps to down osd"
            );
            assert_eq!(acting.len(), 1, "degraded PG runs on the survivor");
            assert_eq!(
                acting[0], old[1],
                "survivor (old replica) promoted to primary"
            );
        }
    }

    #[test]
    fn out_osd_is_remapped_around() {
        let mut m = map4x4();
        m.set_in(OsdId(7), false);
        for seq in 0..256 {
            let acting = m
                .pg_acting(PgId {
                    pool: PoolId(0),
                    seq,
                })
                .unwrap();
            assert!(!acting.contains(&OsdId(7)));
        }
    }

    #[test]
    fn every_osd_leads_some_pgs() {
        let m = map4x4();
        for o in m.crush().osds() {
            let pgs = m.primary_pgs_of(PoolId(0), o).unwrap();
            assert!(!pgs.is_empty(), "{o} leads no PGs");
        }
    }

    #[test]
    fn expansion_keeps_most_placements() {
        let m = map4x4();
        let mut grown = m.clone();
        grown.set_crush(CrushMap::uniform(5, 4));
        let mut moved = 0;
        for seq in 0..256 {
            let pg = PgId {
                pool: PoolId(0),
                seq,
            };
            let a = m.pg_acting(pg).unwrap();
            let b = grown.pg_acting(pg).unwrap();
            moved += a.iter().filter(|o| !b.contains(o)).count();
        }
        assert!(moved < 256, "moved {moved} of 512 replicas");
    }

    #[test]
    fn unknown_pool_errors() {
        let m = map4x4();
        let obj = ObjectId::new(PoolId(9), "x");
        assert!(matches!(m.object_pg(&obj), Err(AfcError::NotFound(_))));
    }
}
