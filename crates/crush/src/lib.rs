//! CRUSH-style deterministic data placement.
//!
//! Ceph places objects without a metadata server: an object name hashes to a
//! placement group (PG), and CRUSH maps each PG pseudo-randomly — but
//! deterministically and with minimal movement on cluster changes — onto an
//! ordered set of OSDs (first entry = primary). This crate implements the
//! straw2 bucket algorithm over a host/OSD hierarchy with host-level failure
//! domains, plus the versioned [`OsdMap`] the cluster and clients share.
//!
//! The implementation follows Weil's CRUSH/straw2 construction: each
//! candidate draws `ln(u) / weight` where `u` is a uniform hash of
//! `(pg, candidate, replica)`, and the maximum draw wins. Straw2's key
//! property — changing one bucket's weight only moves data into or out of
//! that bucket — is what keeps rebalancing traffic proportional to change.

pub mod map;
pub mod osdmap;
pub mod straw2;

pub use map::{CrushMap, HostSpec};
pub use osdmap::{OsdMap, OsdStatus};
pub use straw2::straw2_draw;
