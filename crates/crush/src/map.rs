//! The CRUSH hierarchy: hosts containing OSDs, with weighted straw2 selection
//! and host-level failure domains.

use crate::straw2::straw2_draw;
use afc_common::rng::mix64;
use afc_common::{NodeId, OsdId, PgId};
use std::collections::BTreeMap;

/// Description of one host used when building a map.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Host id.
    pub node: NodeId,
    /// OSDs on this host with their weights.
    pub osds: Vec<(OsdId, f64)>,
}

/// The placement hierarchy: a single root of hosts, each holding OSDs.
///
/// Selection picks `size` distinct *hosts* first (failure domain = host, as
/// in the paper's replicated pools), then one OSD within each chosen host.
#[derive(Debug, Clone, Default)]
pub struct CrushMap {
    hosts: BTreeMap<NodeId, Vec<(OsdId, f64)>>,
}

impl CrushMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a map from host specs.
    pub fn from_hosts(specs: &[HostSpec]) -> Self {
        let mut m = CrushMap::new();
        for s in specs {
            for (osd, w) in &s.osds {
                m.add_osd(s.node, *osd, *w);
            }
        }
        m
    }

    /// Convenience: `nodes` hosts × `osds_per_node` unit-weight OSDs, ids
    /// assigned row-major (node 0 gets osd 0..k, node 1 gets k..2k, ...).
    pub fn uniform(nodes: u32, osds_per_node: u32) -> Self {
        let mut m = CrushMap::new();
        for n in 0..nodes {
            for o in 0..osds_per_node {
                m.add_osd(NodeId(n), OsdId(n * osds_per_node + o), 1.0);
            }
        }
        m
    }

    /// Add (or re-weight) an OSD under a host.
    pub fn add_osd(&mut self, node: NodeId, osd: OsdId, weight: f64) {
        let osds = self.hosts.entry(node).or_default();
        if let Some(e) = osds.iter_mut().find(|(o, _)| *o == osd) {
            e.1 = weight;
        } else {
            osds.push((osd, weight));
        }
    }

    /// Remove an OSD; removes the host when it empties.
    pub fn remove_osd(&mut self, node: NodeId, osd: OsdId) {
        if let Some(osds) = self.hosts.get_mut(&node) {
            osds.retain(|(o, _)| *o != osd);
            if osds.is_empty() {
                self.hosts.remove(&node);
            }
        }
    }

    /// All OSD ids in the map.
    pub fn osds(&self) -> Vec<OsdId> {
        let mut v: Vec<OsdId> = self.hosts.values().flatten().map(|(o, _)| *o).collect();
        v.sort_unstable();
        v
    }

    /// All host ids in the map.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.hosts.keys().copied().collect()
    }

    /// Host of an OSD, if present.
    pub fn host_of(&self, osd: OsdId) -> Option<NodeId> {
        self.hosts
            .iter()
            .find(|(_, osds)| osds.iter().any(|(o, _)| *o == osd))
            .map(|(n, _)| *n)
    }

    /// Total weight of a host (sum of its OSD weights).
    fn host_weight(&self, node: NodeId) -> f64 {
        self.hosts
            .get(&node)
            .map(|v| v.iter().map(|(_, w)| w).sum())
            .unwrap_or(0.0)
    }

    /// Stable per-PG selection key.
    fn pg_key(pg: PgId) -> u64 {
        mix64(((pg.pool.0 as u64) << 32) ^ pg.seq as u64 ^ 0xc0ff_ee11_d00d_f00d)
    }

    /// Select `size` OSDs for `pg` across distinct hosts; `exclude` filters
    /// OSDs (used for down/out OSDs). Returns fewer than `size` entries when
    /// the map cannot satisfy the constraint.
    pub fn select(&self, pg: PgId, size: usize, exclude: &dyn Fn(OsdId) -> bool) -> Vec<OsdId> {
        let key = Self::pg_key(pg);
        let mut chosen_hosts: Vec<NodeId> = Vec::with_capacity(size);
        let mut out = Vec::with_capacity(size);
        for replica in 0..size as u64 {
            // Choose the best host not already chosen whose OSD pick survives
            // the exclusion filter; retry with a perturbed key a few times to
            // step past excluded OSDs (CRUSH's "retry descent").
            let mut picked = None;
            for attempt in 0..8u64 {
                let rkey = mix64(key ^ (replica << 16) ^ (attempt << 40));
                let host = self
                    .hosts
                    .keys()
                    .filter(|n| !chosen_hosts.contains(n))
                    .max_by(|a, b| {
                        let da = straw2_draw(rkey, a.0 as u64, self.host_weight(**a));
                        let db = straw2_draw(rkey, b.0 as u64, self.host_weight(**b));
                        da.partial_cmp(&db).expect("draws are finite or -inf")
                    })
                    .copied();
                let Some(host) = host else { break };
                // Pick an OSD within the host by straw2 over OSD weights.
                let osd = self.hosts[&host]
                    .iter()
                    .filter(|(o, _)| !exclude(*o))
                    .max_by(|(oa, wa), (ob, wb)| {
                        let da = straw2_draw(rkey ^ 0xabcd, oa.0 as u64, *wa);
                        let db = straw2_draw(rkey ^ 0xabcd, ob.0 as u64, *wb);
                        da.partial_cmp(&db).expect("draws are finite or -inf")
                    })
                    .map(|(o, _)| *o);
                if let Some(osd) = osd {
                    picked = Some((host, osd));
                    break;
                }
                // Host had no eligible OSD: mark it chosen to skip it and retry.
                chosen_hosts.push(host);
            }
            if let Some((host, osd)) = picked {
                chosen_hosts.push(host);
                out.push(osd);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::PoolId;

    fn pg(seq: u32) -> PgId {
        PgId {
            pool: PoolId(0),
            seq,
        }
    }

    const NO_EXCLUDE: fn(OsdId) -> bool = |_| false;

    #[test]
    fn uniform_map_shape() {
        let m = CrushMap::uniform(4, 4);
        assert_eq!(m.nodes().len(), 4);
        assert_eq!(m.osds().len(), 16);
        assert_eq!(m.host_of(OsdId(5)), Some(NodeId(1)));
        assert_eq!(m.host_of(OsdId(99)), None);
    }

    #[test]
    fn select_is_deterministic() {
        let m = CrushMap::uniform(4, 4);
        for s in 0..64 {
            assert_eq!(
                m.select(pg(s), 2, &NO_EXCLUDE),
                m.select(pg(s), 2, &NO_EXCLUDE)
            );
        }
    }

    #[test]
    fn replicas_on_distinct_hosts() {
        let m = CrushMap::uniform(4, 4);
        for s in 0..256 {
            let osds = m.select(pg(s), 3, &NO_EXCLUDE);
            assert_eq!(osds.len(), 3);
            let hosts: Vec<NodeId> = osds.iter().map(|o| m.host_of(*o).unwrap()).collect();
            let mut uniq = hosts.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "pg {s}: hosts {hosts:?}");
        }
    }

    #[test]
    fn placement_is_roughly_uniform() {
        let m = CrushMap::uniform(4, 4);
        let mut counts: BTreeMap<OsdId, usize> = BTreeMap::new();
        let pgs = 4096;
        for s in 0..pgs {
            for o in m.select(pg(s), 2, &NO_EXCLUDE) {
                *counts.entry(o).or_default() += 1;
            }
        }
        let expected = (pgs * 2 / 16) as f64;
        for (o, c) in counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.30, "{o}: {c} vs expected {expected}");
        }
    }

    #[test]
    fn weights_shift_load() {
        let mut m = CrushMap::uniform(2, 2);
        // Make osd.0 three times the weight of its peer on node0.
        m.add_osd(NodeId(0), OsdId(0), 3.0);
        let mut c0 = 0;
        let mut c1 = 0;
        for s in 0..4096 {
            let osds = m.select(pg(s), 1, &NO_EXCLUDE);
            match osds.first() {
                Some(&OsdId(0)) => c0 += 1,
                Some(&OsdId(1)) => c1 += 1,
                _ => {}
            }
        }
        assert!(c0 > c1 * 2, "c0={c0} c1={c1}");
    }

    #[test]
    fn exclusion_remaps_within_same_host_first() {
        let m = CrushMap::uniform(4, 4);
        for s in 0..128 {
            let before = m.select(pg(s), 2, &NO_EXCLUDE);
            let dead = before[0];
            let after = m.select(pg(s), 2, &|o| o == dead);
            assert_eq!(after.len(), 2);
            assert!(!after.contains(&dead));
        }
    }

    #[test]
    fn adding_a_host_moves_proportional_data() {
        let before = CrushMap::uniform(4, 4);
        let mut after = before.clone();
        for o in 0..4 {
            after.add_osd(NodeId(4), OsdId(16 + o), 1.0);
        }
        let pgs = 2048;
        let mut moved = 0;
        for s in 0..pgs {
            let a = before.select(pg(s), 2, &NO_EXCLUDE);
            let b = after.select(pg(s), 2, &NO_EXCLUDE);
            moved += a.iter().filter(|o| !b.contains(o)).count();
        }
        let frac = moved as f64 / (pgs * 2) as f64;
        // Ideal movement when growing 4 → 5 hosts is 1/5 = 20%; straw2 over
        // our retry scheme should stay in the same ballpark, far below a
        // naive rehash (~80%+).
        assert!(frac < 0.40, "moved {:.1}%", frac * 100.0);
        assert!(
            frac > 0.05,
            "suspiciously little movement: {:.1}%",
            frac * 100.0
        );
    }

    #[test]
    fn select_handles_insufficient_hosts() {
        let m = CrushMap::uniform(2, 2);
        let osds = m.select(pg(7), 3, &NO_EXCLUDE);
        assert!(osds.len() <= 2, "only 2 hosts exist: {osds:?}");
    }

    #[test]
    fn remove_osd_and_empty_host() {
        let mut m = CrushMap::uniform(2, 1);
        m.remove_osd(NodeId(1), OsdId(1));
        assert_eq!(m.nodes(), vec![NodeId(0)]);
        assert_eq!(m.osds(), vec![OsdId(0)]);
    }
}
