//! The straw2 draw: weighted pseudo-random selection with minimal movement.

use afc_common::rng::mix64;

/// Compute the straw2 "straw length" for one candidate.
///
/// `key` identifies what is being placed (PG id, replica slot, attempt);
/// `item` identifies the candidate (host or OSD id); `weight` is the
/// candidate's relative capacity. The caller picks the candidate with the
/// *largest* draw. With draws of the form `ln(u)/w` (u uniform in (0,1],
/// draw ≤ 0), an item's win probability is proportional to its weight, and
/// re-weighting one item never reshuffles placements among the others.
pub fn straw2_draw(key: u64, item: u64, weight: f64) -> f64 {
    if weight <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let h = mix64(key ^ mix64(item.wrapping_add(0x9e37_79b9_7f4a_7c15)));
    // Map to (0, 1]: use the top 53 bits, never exactly zero.
    let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    u.ln() / weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        assert_eq!(straw2_draw(1, 2, 1.0), straw2_draw(1, 2, 1.0));
        assert_ne!(straw2_draw(1, 2, 1.0), straw2_draw(1, 3, 1.0));
        assert_ne!(straw2_draw(1, 2, 1.0), straw2_draw(2, 2, 1.0));
    }

    #[test]
    fn draws_are_nonpositive() {
        for k in 0..100 {
            let d = straw2_draw(k, k * 7 + 1, 2.0);
            assert!(d <= 0.0, "draw {d} should be <= 0");
            assert!(d.is_finite());
        }
    }

    #[test]
    fn zero_weight_never_wins() {
        assert_eq!(straw2_draw(5, 1, 0.0), f64::NEG_INFINITY);
        assert_eq!(straw2_draw(5, 1, -1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn selection_tracks_weight_ratio() {
        // Item B with twice the weight should win ~2/3 of keys.
        let mut b_wins = 0;
        let n = 20_000;
        for key in 0..n {
            let a = straw2_draw(key, 100, 1.0);
            let b = straw2_draw(key, 200, 2.0);
            if b > a {
                b_wins += 1;
            }
        }
        let frac = b_wins as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn reweighting_one_item_does_not_reshuffle_others() {
        // Among keys where C (the reweighted item) loses both before and
        // after, the winner between A and B must not change.
        for key in 0..5_000u64 {
            let a = straw2_draw(key, 1, 1.0);
            let b = straw2_draw(key, 2, 1.0);
            let c_before = straw2_draw(key, 3, 1.0);
            let c_after = straw2_draw(key, 3, 3.0);
            let winner_before = if c_before > a && c_before > b {
                3
            } else if a > b {
                1
            } else {
                2
            };
            let winner_after = if c_after > a && c_after > b {
                3
            } else if a > b {
                1
            } else {
                2
            };
            if winner_before != 3 && winner_after != 3 {
                assert_eq!(winner_before, winner_after, "key={key}");
            }
        }
    }
}
