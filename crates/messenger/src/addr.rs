//! Entity addresses on the fabric.

use afc_common::{ClientId, OsdId};
use std::fmt;

/// Address of an endpoint on the in-process network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Addr {
    /// An OSD daemon.
    Osd(OsdId),
    /// A client session (VM / FIO job).
    Client(ClientId),
    /// The monitor.
    Mon,
}

impl Addr {
    /// The OSD id, if this is an OSD address.
    pub fn as_osd(&self) -> Option<OsdId> {
        match self {
            Addr::Osd(o) => Some(*o),
            _ => None,
        }
    }

    /// The client id, if this is a client address.
    pub fn as_client(&self) -> Option<ClientId> {
        match self {
            Addr::Client(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Osd(o) => write!(f, "{o}"),
            Addr::Client(c) => write!(f, "{c}"),
            Addr::Mon => write!(f, "mon"),
        }
    }
}

impl From<OsdId> for Addr {
    fn from(o: OsdId) -> Self {
        Addr::Osd(o)
    }
}

impl From<ClientId> for Addr {
    fn from(c: ClientId) -> Self {
        Addr::Client(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        let a: Addr = OsdId(3).into();
        assert_eq!(a.as_osd(), Some(OsdId(3)));
        assert_eq!(a.as_client(), None);
        let c: Addr = ClientId(7).into();
        assert_eq!(c.as_client(), Some(ClientId(7)));
        assert_eq!(Addr::Mon.as_osd(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Addr::Osd(OsdId(1)).to_string(), "osd.1");
        assert_eq!(Addr::Client(ClientId(2)).to_string(), "client.2");
        assert_eq!(Addr::Mon.to_string(), "mon");
    }
}
