//! In-process SimpleMessenger-style transport.
//!
//! Ceph's SimpleMessenger dedicates a sender and a receiver thread to every
//! connection — the structure the paper blames for the sub-linear 4K random
//! read scaling at 16 nodes ("messenger's structure is not scalable and
//! have receiver and sender threads for each connection", §4.5). This crate
//! reproduces that shape in-process:
//!
//! - A [`Network`] is a registry of endpoints plus a timing configuration.
//! - Each `(sender → receiver)` pair gets a dedicated **connection thread**
//!   that enforces per-connection FIFO ordering, models wire latency, and
//!   optionally burns per-message CPU (protocol/checksum work) so host CPU
//!   becomes the collective ceiling exactly as in the paper.
//! - **Nagle modeling** (§3.2): with `nagle = true` (community KRBD on
//!   CentOS 7), messages smaller than one MSS are delayed by the
//!   small-packet coalescing window before they leave the sender. Large
//!   messages are unaffected — which is why the paper only saw the effect
//!   on small random I/O.
//!
//! The message payload type is generic; `afc-core` instantiates it with its
//! OSD message enum.

pub mod addr;

pub use addr::Addr;

use afc_common::faults::{FaultKind, FaultRegistry};
use afc_common::{sleep_for, AfcError, CounterSet, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Network timing/behaviour configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way wire+stack latency per message.
    pub hop_latency: Duration,
    /// Apply small-packet coalescing delay (TCP_NODELAY unset).
    pub nagle: bool,
    /// Messages at or below this wire size are "small" for Nagle.
    pub nagle_threshold: u32,
    /// Extra delay Nagle imposes on small messages.
    pub nagle_delay: Duration,
    /// Per-message CPU burned by the connection thread (protocol work,
    /// checksumming). Zero by default; the scale-out harness raises it.
    pub cpu_per_msg: Duration,
    /// Receive-side threading model (§4.5 / extension).
    pub mode: MessengerMode,
}

/// Receive-side threading model.
///
/// The paper diagnoses SimpleMessenger — a dedicated receiver thread per
/// connection — as the 16-node random-read ceiling ("messenger's structure
/// is not scalable and have receiver and sender threads for each
/// connection"). Ceph's eventual fix was AsyncMessenger: a fixed worker
/// pool multiplexing all connections. Both are available here; connections
/// are sharded onto async workers by connection id, so per-connection FIFO
/// ordering is identical in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessengerMode {
    /// Thread per inbound connection (Ceph SimpleMessenger; the default,
    /// matching the paper's testbed).
    Simple,
    /// Fixed shared worker pool (Ceph AsyncMessenger).
    Async {
        /// Pool size.
        workers: usize,
    },
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hop_latency: Duration::from_micros(80),
            nagle: false,
            nagle_threshold: 1448,
            // Nagle + delayed-ACK interaction on small segments; Linux's
            // delayed-ACK floor is tens of ms — 2 ms is a conservative
            // stand-in for the KRBD-on-CentOS-7 behaviour the paper hit.
            nagle_delay: Duration::from_millis(2),
            cpu_per_msg: Duration::ZERO,
            mode: MessengerMode::Simple,
        }
    }
}

impl NetConfig {
    /// Community defaults: Nagle enabled (KRBD on CentOS 7.0, §3.2).
    pub fn community() -> Self {
        NetConfig {
            nagle: true,
            ..Self::default()
        }
    }

    /// AFCeph tuning: Nagle disabled.
    pub fn afceph() -> Self {
        Self::default()
    }
}

/// Receives dispatched messages for one endpoint. Implementations must be
/// thread-safe: every inbound connection dispatches from its own thread.
pub trait Dispatcher<M>: Send + Sync {
    /// Handle one message from `from`.
    fn dispatch(&self, from: Addr, msg: M);
}

/// Blanket impl so closures can act as dispatchers in tests.
impl<M, F: Fn(Addr, M) + Send + Sync> Dispatcher<M> for F {
    fn dispatch(&self, from: Addr, msg: M) {
        self(from, msg)
    }
}

struct Envelope<M> {
    from: Addr,
    departed: Instant,
    msg: M,
}

struct ConnHandle<M> {
    tx: Sender<WorkItem<M>>,
    /// Present only for Simple-mode per-connection threads; Async lanes are
    /// owned by the network.
    thread: Option<std::thread::JoinHandle<()>>,
}

struct WorkItem<M> {
    env: Envelope<M>,
    dispatcher: Arc<dyn Dispatcher<M>>,
}

struct EndpointState<M> {
    dispatcher: Arc<dyn Dispatcher<M>>,
    /// Inbound connection lanes keyed by sender address.
    conns: HashMap<Addr, ConnHandle<M>>,
}

struct NetInner<M> {
    endpoints: HashMap<Addr, EndpointState<M>>,
    /// Shared async-mode worker lanes (created on demand).
    lanes: Vec<Sender<WorkItem<M>>>,
    lane_threads: Vec<std::thread::JoinHandle<()>>,
    shutdown: bool,
}

/// Fault-injection hookup for a fabric: a registry plus a classifier that
/// maps each in-flight message to a fault site (or `None` to exempt it).
/// The fabric itself is message-type-agnostic, so the owner supplies the
/// classification (e.g. `afc-core` maps `OsdMsg::RepAck` → `"net.repack"`).
type ClassifyFn<M> = Box<dyn Fn(Addr, Addr, &M) -> Option<String> + Send + Sync>;

struct FaultHook<M> {
    registry: Arc<FaultRegistry>,
    classify: ClassifyFn<M>,
    clone_msg: Box<dyn Fn(&M) -> M + Send + Sync>,
}

/// The in-process network fabric.
pub struct Network<M: Send + 'static> {
    cfg: NetConfig,
    inner: Mutex<NetInner<M>>,
    counters: CounterSet,
    faults: OnceLock<FaultHook<M>>,
}

impl<M: Send + 'static> Network<M> {
    /// Create a network with `cfg`.
    pub fn new(cfg: NetConfig) -> Arc<Self> {
        Arc::new(Network {
            cfg,
            inner: Mutex::new(NetInner {
                endpoints: HashMap::new(),
                lanes: Vec::new(),
                lane_threads: Vec::new(),
                shutdown: false,
            }),
            counters: CounterSet::new(),
            faults: OnceLock::new(),
        })
    }

    /// Wire a fault registry into message delivery. `classify` names the
    /// fault site for each message (return `None` to exempt it). Matching
    /// specs then drop, delay, duplicate, or error the send. First attach
    /// wins; with no registry (or a disarmed one) delivery cost is a single
    /// relaxed atomic load.
    pub fn attach_faults(
        &self,
        registry: Arc<FaultRegistry>,
        classify: impl Fn(Addr, Addr, &M) -> Option<String> + Send + Sync + 'static,
    ) where
        M: Clone,
    {
        let _ = self.faults.set(FaultHook {
            registry,
            classify: Box::new(classify),
            clone_msg: Box::new(M::clone),
        });
    }

    /// Register an endpoint and get its sending handle.
    pub fn register(
        self: &Arc<Self>,
        addr: Addr,
        dispatcher: Arc<dyn Dispatcher<M>>,
    ) -> Result<Messenger<M>> {
        let mut inner = self.inner.lock();
        if inner.shutdown {
            return Err(AfcError::ShutDown("network".into()));
        }
        if inner.endpoints.contains_key(&addr) {
            return Err(AfcError::AlreadyExists(format!("endpoint {addr}")));
        }
        inner.endpoints.insert(
            addr,
            EndpointState {
                dispatcher,
                conns: HashMap::new(),
            },
        );
        Ok(Messenger {
            addr,
            net: Arc::clone(self),
        })
    }

    /// Remove an endpoint; its inbound connection threads wind down.
    pub fn unregister(&self, addr: Addr) {
        let state = self.inner.lock().endpoints.remove(&addr);
        if let Some(state) = state {
            for (_, c) in state.conns {
                drop(c.tx);
                if let Some(t) = c.thread {
                    let _ = t.join();
                }
            }
        }
    }

    /// Shut the whole fabric down, joining every connection thread.
    pub fn shutdown(&self) {
        let (eps, lanes, lane_threads) = {
            let mut inner = self.inner.lock();
            inner.shutdown = true;
            (
                std::mem::take(&mut inner.endpoints),
                std::mem::take(&mut inner.lanes),
                std::mem::take(&mut inner.lane_threads),
            )
        };
        for (_, state) in eps {
            for (_, c) in state.conns {
                drop(c.tx);
                if let Some(t) = c.thread {
                    let _ = t.join();
                }
            }
        }
        drop(lanes);
        for t in lane_threads {
            let _ = t.join();
        }
    }

    /// Instrumentation: `net.msgs`, `net.bytes`, `net.conns`.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Attach the network's live counters to a cluster metric registry;
    /// they appear in snapshots under their own `net.*` names.
    pub fn attach_metrics(&self, m: &afc_common::metrics::Metrics) {
        m.attach_set("", &self.counters);
    }

    fn deliver(&self, from: Addr, to: Addr, msg: M, wire_bytes: u32) -> Result<()> {
        // Fault injection happens "on the wire": a Drop is invisible to the
        // sender (it believes the send succeeded), a Delay stretches the
        // hop, a Duplicate arrives twice on the same FIFO lane, and an
        // Error is a hard connection failure surfaced to the sender.
        let mut extra_delay = Duration::ZERO;
        let mut duplicate = None;
        if let Some(hook) = self.faults.get() {
            if hook.registry.is_armed() {
                if let Some(site) = (hook.classify)(from, to, &msg) {
                    match hook.registry.check(&site) {
                        None => {}
                        Some(FaultKind::Drop) => {
                            self.counters.counter("net.dropped").inc();
                            return Ok(());
                        }
                        Some(FaultKind::Delay(d)) => extra_delay = d,
                        Some(FaultKind::Duplicate) => {
                            self.counters.counter("net.duplicated").inc();
                            duplicate = Some((hook.clone_msg)(&msg));
                        }
                        Some(FaultKind::Error) | Some(FaultKind::Torn) => {
                            return Err(AfcError::Io(format!("injected network fault at {site}")));
                        }
                    }
                }
            }
        }
        let mut inner = self.inner.lock();
        if inner.shutdown {
            return Err(AfcError::ShutDown("network".into()));
        }
        let cfg = self.cfg.clone();
        let counters = self.counters.clone();
        // Async mode: ensure the shared lanes exist and pick this
        // connection's lane (sharded by connection id so per-connection
        // FIFO ordering is preserved) before borrowing the endpoint.
        let lane_tx = if let MessengerMode::Async { workers } = self.cfg.mode {
            if inner.lanes.is_empty() {
                for i in 0..workers.max(1) {
                    let (tx, rx): (Sender<WorkItem<M>>, Receiver<WorkItem<M>>) = unbounded();
                    let cfg = self.cfg.clone();
                    inner.lanes.push(tx);
                    inner.lane_threads.push(
                        std::thread::Builder::new()
                            .name(format!("msgr-async-{i}"))
                            .spawn(move || receive_loop(rx, cfg))
                            .expect("spawn async messenger worker"),
                    );
                    counters.counter("net.lanes").inc();
                }
            }
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (from, to).hash(&mut h);
            let lane = (h.finish() as usize) % inner.lanes.len();
            Some(inner.lanes[lane].clone())
        } else {
            None
        };
        let state = inner
            .endpoints
            .get_mut(&to)
            .ok_or_else(|| AfcError::NotFound(format!("endpoint {to}")))?;
        let dispatcher = Arc::clone(&state.dispatcher);
        let tx = match lane_tx {
            None => {
                let conn = state.conns.entry(from).or_insert_with(|| {
                    counters.counter("net.conns").inc();
                    let (tx, rx): (Sender<WorkItem<M>>, Receiver<WorkItem<M>>) = unbounded();
                    let thread = std::thread::Builder::new()
                        .name(format!("msgr-{from}-{to}"))
                        .spawn(move || receive_loop(rx, cfg))
                        .expect("spawn connection thread");
                    ConnHandle {
                        tx,
                        thread: Some(thread),
                    }
                });
                conn.tx.clone()
            }
            Some(lane_tx) => {
                state.conns.entry(from).or_insert_with(|| {
                    counters.counter("net.conns").inc();
                    ConnHandle {
                        tx: lane_tx.clone(),
                        thread: None,
                    }
                });
                lane_tx
            }
        };
        let mut departed = Instant::now() + extra_delay;
        if self.cfg.nagle && wire_bytes <= self.cfg.nagle_threshold {
            // Small payload held back by the coalescing window.
            departed += self.cfg.nagle_delay;
            self.counters.counter("net.nagled").inc();
        }
        self.counters.counter("net.msgs").inc();
        self.counters.counter("net.bytes").add(wire_bytes as u64);
        tx.send(WorkItem {
            env: Envelope {
                from,
                departed,
                msg,
            },
            dispatcher: Arc::clone(&dispatcher),
        })
        .map_err(|_| AfcError::Disconnected(format!("connection {from}->{to}")))?;
        if let Some(copy) = duplicate {
            // Best-effort second copy on the same FIFO lane; if the lane
            // closed after the first send the duplicate is moot.
            let _ = tx.send(WorkItem {
                env: Envelope {
                    from,
                    departed,
                    msg: copy,
                },
                dispatcher,
            });
        }
        Ok(())
    }
}

fn receive_loop<M: Send + 'static>(rx: Receiver<WorkItem<M>>, cfg: NetConfig) {
    while let Ok(item) = rx.recv() {
        // Wire latency relative to departure, preserving per-lane FIFO.
        let arrival = item.env.departed + cfg.hop_latency;
        let now = Instant::now();
        if arrival > now {
            sleep_for(arrival - now);
        }
        if cfg.cpu_per_msg > Duration::ZERO {
            burn_cpu(cfg.cpu_per_msg);
        }
        item.dispatcher.dispatch(item.env.from, item.env.msg);
    }
}

/// Burn approximately `d` of CPU (used to model protocol work; only the
/// scale-out harness enables it).
fn burn_cpu(d: Duration) {
    let end = Instant::now() + d;
    let mut x = 0u64;
    while Instant::now() < end {
        for i in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
    }
}

/// Sending handle bound to a registered endpoint address.
pub struct Messenger<M: Send + 'static> {
    addr: Addr,
    net: Arc<Network<M>>,
}

impl<M: Send + 'static> Messenger<M> {
    /// This endpoint's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Send `msg` (`wire_bytes` on the wire) to `to`.
    pub fn send(&self, to: Addr, msg: M, wire_bytes: u32) -> Result<()> {
        self.net.deliver(self.addr, to, msg, wire_bytes)
    }

    /// The owning network.
    pub fn network(&self) -> &Arc<Network<M>> {
        &self.net
    }
}

impl<M: Send + 'static> Clone for Messenger<M> {
    fn clone(&self) -> Self {
        Messenger {
            addr: self.addr,
            net: Arc::clone(&self.net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::{ClientId, OsdId};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn client(n: u64) -> Addr {
        Addr::Client(ClientId(n))
    }

    fn osd(n: u32) -> Addr {
        Addr::Osd(OsdId(n))
    }

    #[test]
    fn send_and_dispatch() {
        let net: Arc<Network<String>> = Network::new(NetConfig::default());
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.register(
            osd(0),
            Arc::new(move |from: Addr, m: String| {
                g.lock().push((from, m));
            }),
        )
        .unwrap();
        let m = net
            .register(client(1), Arc::new(|_, _: String| {}))
            .unwrap();
        m.send(osd(0), "hello".into(), 100).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let got = got.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], (client(1), "hello".to_string()));
        net.shutdown();
    }

    #[test]
    fn per_connection_fifo_order() {
        let net: Arc<Network<u64>> = Network::new(NetConfig::default());
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.register(osd(0), Arc::new(move |_, m: u64| g.lock().push(m)))
            .unwrap();
        let m = net.register(client(1), Arc::new(|_, _: u64| {})).unwrap();
        for i in 0..500u64 {
            m.send(osd(0), i, 64).unwrap();
        }
        while got.lock().len() < 500 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let got = got.lock();
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order violated");
        net.shutdown();
    }

    #[test]
    fn nagle_delays_small_messages_only() {
        let cfg = NetConfig {
            nagle: true,
            nagle_delay: Duration::from_millis(20),
            ..NetConfig::default()
        };
        let net: Arc<Network<Instant>> = Network::new(cfg);
        let lat = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&lat);
        net.register(
            osd(0),
            Arc::new(move |_, sent: Instant| {
                l.lock().push(sent.elapsed());
            }),
        )
        .unwrap();
        let m = net
            .register(client(1), Arc::new(|_, _: Instant| {}))
            .unwrap();
        // Large first (direct), then small (nagled) — same FIFO connection.
        m.send(osd(0), Instant::now(), 64 * 1024).unwrap();
        m.send(osd(0), Instant::now(), 512).unwrap();
        while lat.lock().len() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let lat = lat.lock();
        assert!(
            lat[0] < Duration::from_millis(20),
            "large delayed: {:?}",
            lat[0]
        );
        assert!(
            lat[1] >= Duration::from_millis(20),
            "small not delayed: {:?}",
            lat[1]
        );
        assert_eq!(net.counters().get("net.nagled"), 1);
        net.shutdown();
    }

    #[test]
    fn distinct_connections_get_distinct_threads() {
        let net: Arc<Network<()>> = Network::new(NetConfig::default());
        net.register(osd(0), Arc::new(|_, ()| {})).unwrap();
        let a = net.register(client(1), Arc::new(|_, ()| {})).unwrap();
        let b = net.register(client(2), Arc::new(|_, ()| {})).unwrap();
        a.send(osd(0), (), 1).unwrap();
        b.send(osd(0), (), 1).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(net.counters().get("net.conns"), 2);
        assert_eq!(net.counters().get("net.msgs"), 2);
        net.shutdown();
    }

    #[test]
    fn unknown_destination_errors() {
        let net: Arc<Network<()>> = Network::new(NetConfig::default());
        let m = net.register(client(1), Arc::new(|_, ()| {})).unwrap();
        assert!(matches!(m.send(osd(9), (), 1), Err(AfcError::NotFound(_))));
        net.shutdown();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let net: Arc<Network<()>> = Network::new(NetConfig::default());
        net.register(osd(0), Arc::new(|_, ()| {})).unwrap();
        assert!(net.register(osd(0), Arc::new(|_, ()| {})).is_err());
        net.shutdown();
    }

    #[test]
    fn shutdown_rejects_further_traffic() {
        let net: Arc<Network<()>> = Network::new(NetConfig::default());
        let m = net.register(client(1), Arc::new(|_, ()| {})).unwrap();
        net.shutdown();
        assert!(m.send(client(1), (), 1).is_err());
        assert!(net.register(osd(0), Arc::new(|_, ()| {})).is_err());
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let net: Arc<Network<u64>> = Network::new(NetConfig::default());
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        net.register(
            osd(0),
            Arc::new(move |_, _: u64| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = net.register(client(t), Arc::new(|_, _: u64| {})).unwrap();
                s.spawn(move || {
                    for i in 0..200 {
                        m.send(osd(0), i, 128).unwrap();
                    }
                });
            }
        });
        while count.load(Ordering::Relaxed) < 1600 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(net.counters().get("net.msgs"), 1600);
        net.shutdown();
    }

    #[test]
    fn async_mode_delivers_and_orders() {
        let cfg = NetConfig {
            mode: MessengerMode::Async { workers: 3 },
            ..NetConfig::default()
        };
        let net: Arc<Network<u64>> = Network::new(cfg);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.register(osd(0), Arc::new(move |_, m: u64| g.lock().push(m)))
            .unwrap();
        let m = net.register(client(1), Arc::new(|_, _: u64| {})).unwrap();
        for i in 0..300u64 {
            m.send(osd(0), i, 64).unwrap();
        }
        while got.lock().len() < 300 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            got.lock().windows(2).all(|w| w[0] < w[1]),
            "async lanes broke FIFO"
        );
        // Fixed pool regardless of connection count.
        assert_eq!(net.counters().get("net.lanes"), 3);
        net.shutdown();
    }

    #[test]
    fn async_mode_caps_thread_count_across_many_connections() {
        let cfg = NetConfig {
            mode: MessengerMode::Async { workers: 2 },
            ..NetConfig::default()
        };
        let net: Arc<Network<()>> = Network::new(cfg);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        net.register(
            osd(0),
            Arc::new(move |_, ()| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
        for t in 0..12u64 {
            let m = net.register(client(t), Arc::new(|_, ()| {})).unwrap();
            m.send(osd(0), (), 32).unwrap();
        }
        while count.load(Ordering::Relaxed) < 12 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(net.counters().get("net.conns"), 12);
        assert_eq!(
            net.counters().get("net.lanes"),
            2,
            "pool must not grow with connections"
        );
        net.shutdown();
    }

    #[test]
    fn injected_drop_dup_delay_and_error() {
        use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
        let net: Arc<Network<u64>> = Network::new(NetConfig {
            hop_latency: Duration::ZERO,
            ..NetConfig::default()
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.register(osd(0), Arc::new(move |_, m: u64| g.lock().push(m)))
            .unwrap();
        let m = net.register(client(1), Arc::new(|_, _: u64| {})).unwrap();
        let reg = Arc::new(FaultRegistry::new());
        // Only odd payloads are injectable; evens are exempt (classify
        // returning None must bypass the registry entirely).
        net.attach_faults(Arc::clone(&reg), |_, _, m: &u64| {
            (m % 2 == 1).then(|| "net.test".to_string())
        });
        reg.install(FaultSpec::new("net.test", FaultKind::Drop));
        m.send(osd(0), 1, 64).unwrap(); // dropped silently
        m.send(osd(0), 2, 64).unwrap(); // exempt, delivered
        reg.install(FaultSpec::new("net.test", FaultKind::Duplicate));
        m.send(osd(0), 3, 64).unwrap(); // delivered twice
        reg.install(FaultSpec::new("net.test", FaultKind::Error));
        assert!(m.send(osd(0), 5, 64).is_err()); // surfaced to sender
        reg.install(FaultSpec::new(
            "net.test",
            FaultKind::Delay(Duration::from_millis(30)),
        ));
        let t0 = Instant::now();
        m.send(osd(0), 7, 64).unwrap();
        while got.lock().len() < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(30),
            "delay not applied"
        );
        assert_eq!(*got.lock(), vec![2, 3, 3, 7]);
        assert_eq!(net.counters().get("net.dropped"), 1);
        assert_eq!(net.counters().get("net.duplicated"), 1);
        assert!(!reg.is_armed(), "all specs exhausted");
        net.shutdown();
    }

    #[test]
    fn cpu_burn_slows_delivery() {
        let cfg = NetConfig {
            cpu_per_msg: Duration::from_micros(500),
            hop_latency: Duration::ZERO,
            ..NetConfig::default()
        };
        let net: Arc<Network<()>> = Network::new(cfg);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        net.register(
            osd(0),
            Arc::new(move |_, ()| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
        let m = net.register(client(1), Arc::new(|_, ()| {})).unwrap();
        let t0 = Instant::now();
        for _ in 0..20 {
            m.send(osd(0), (), 1).unwrap();
        }
        while count.load(Ordering::Relaxed) < 20 {
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "{:?}",
            t0.elapsed()
        );
        net.shutdown();
    }
}
