//! Job results.

use afc_common::timeutil::fmt_dur;
use afc_common::{LatencyHist, TimeSeries};
use std::fmt;
use std::time::Duration;

/// Aggregated result of one job.
#[derive(Debug, Clone)]
pub struct Report {
    /// Completed operations.
    pub ops: u64,
    /// Failed operations.
    pub errors: u64,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Block size used.
    pub bs: u64,
    /// Merged latency histogram.
    pub lat: LatencyHist,
    /// Windowed IOPS series (when sampling was enabled).
    pub series: TimeSeries,
    /// Job label.
    pub label: String,
}

impl Report {
    /// Operations per second.
    pub fn iops(&self) -> f64 {
        if self.runtime.is_zero() {
            return 0.0;
        }
        self.ops as f64 / self.runtime.as_secs_f64()
    }

    /// Bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.iops() * self.bs as f64
    }

    /// Mean latency.
    pub fn mean_lat(&self) -> Duration {
        self.lat.mean()
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.lat.p99()
    }

    /// Bandwidth in MiB/s (figure tables).
    pub fn mibps(&self) -> f64 {
        self.bandwidth() / (1024.0 * 1024.0)
    }

    /// One-line summary row: `label iops k-iops lat-mean lat-p99 bw`.
    pub fn row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            format!("{:.0}", self.iops()),
            fmt_dur(self.mean_lat()),
            fmt_dur(self.p99()),
            format!("{:.1}MiB/s", self.mibps()),
        ]
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ops in {} = {:.0} IOPS ({:.1} MiB/s), lat mean {} p50 {} p99 {}{}",
            self.label,
            self.ops,
            fmt_dur(self.runtime),
            self.iops(),
            self.mibps(),
            fmt_dur(self.lat.mean()),
            fmt_dur(self.lat.p50()),
            fmt_dur(self.lat.p99()),
            if self.errors > 0 {
                format!(", {} ERRORS", self.errors)
            } else {
                String::new()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: u64, secs: f64) -> Report {
        let mut lat = LatencyHist::new();
        lat.record_us(500);
        Report {
            ops,
            errors: 0,
            runtime: Duration::from_secs_f64(secs),
            bs: 4096,
            lat,
            series: TimeSeries::new(),
            label: "test".into(),
        }
    }

    #[test]
    fn iops_and_bandwidth() {
        let r = report(10_000, 2.0);
        assert!((r.iops() - 5_000.0).abs() < 1.0);
        assert!((r.bandwidth() - 5_000.0 * 4096.0).abs() < 4096.0);
        assert!(r.mibps() > 19.0);
    }

    #[test]
    fn zero_runtime_safe() {
        let r = Report {
            runtime: Duration::ZERO,
            ..report(5, 1.0)
        };
        assert_eq!(r.iops(), 0.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = report(100, 1.0).to_string();
        assert!(s.contains("test"));
        assert!(s.contains("IOPS"));
        assert!(!s.contains("ERRORS"));
        let mut bad = report(100, 1.0);
        bad.errors = 3;
        assert!(bad.to_string().contains("ERRORS"));
    }

    #[test]
    fn row_has_five_cells() {
        assert_eq!(report(1, 1.0).row().len(), 5);
    }
}
