//! Concurrent multi-tenant workload execution.
//!
//! QoS evaluation needs several jobs hammering the *same* cluster at the
//! same time — N noisy neighbors against one latency-sensitive tenant —
//! and per-tenant reports afterwards. [`run_tenants`] runs one [`crate::run`]
//! job per tenant on its own OS thread (each job spawns its own worker
//! threads as usual), released together through a barrier so every tenant
//! observes the same contention window, and returns the reports in input
//! order. It is cluster-agnostic: each tenant brings its own
//! [`BlockTarget`], which in the QoS bench is an RBD-style image whose
//! client session was opened with a per-volume [QoS spec].
//!
//! [QoS spec]: https://en.wikipedia.org/wiki/Quality_of_service

use crate::{run, JobSpec, Report};
use afc_common::BlockTarget;
use std::sync::Barrier;

/// One tenant: a job description plus the target it drives.
pub struct Tenant<'a> {
    /// The job this tenant runs.
    pub job: JobSpec,
    /// The (typically shared-cluster) device the job drives.
    pub target: &'a dyn BlockTarget,
}

impl<'a> Tenant<'a> {
    /// Pair a job with its target.
    pub fn new(job: JobSpec, target: &'a dyn BlockTarget) -> Self {
        Tenant { job, target }
    }
}

/// Run every tenant concurrently and return their reports in input order.
///
/// All tenants start together (barrier) so their runtime windows overlap
/// fully — the whole point of a contention experiment. A tenant whose
/// worker panics yields a zero-op report carrying its label rather than
/// poisoning the others.
pub fn run_tenants(tenants: &[Tenant<'_>]) -> Vec<Report> {
    let barrier = Barrier::new(tenants.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|t| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    run(&t.job, t.target)
                })
            })
            .collect();
        handles
            .into_iter()
            .zip(tenants)
            .map(|(h, t)| h.join().unwrap_or_else(|_| empty_report(&t.job)))
            .collect()
    })
}

fn empty_report(job: &JobSpec) -> Report {
    Report {
        ops: 0,
        errors: 0,
        runtime: job.runtime,
        bs: job.bs,
        lat: afc_common::LatencyHist::new(),
        series: afc_common::TimeSeries::new(),
        label: job.label.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rw;
    use afc_common::blocktarget::MemBlockTarget;
    use afc_common::KIB;
    use std::time::Duration;

    fn job(label: &str, seed: u64) -> JobSpec {
        JobSpec::new(Rw::RandWrite)
            .bs(4 * KIB)
            .runtime(Duration::from_millis(80))
            .seed(seed)
            .label(label)
    }

    #[test]
    fn tenants_run_concurrently_and_report_in_order() {
        let t1 = MemBlockTarget::new(1 << 20);
        let t2 = MemBlockTarget::new(1 << 20);
        let tenants = vec![
            Tenant::new(job("alpha", 1), &t1),
            Tenant::new(job("beta", 2), &t2),
            Tenant::new(job("gamma", 3), &t1),
        ];
        let reports = run_tenants(&tenants);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].label, "alpha");
        assert_eq!(reports[1].label, "beta");
        assert_eq!(reports[2].label, "gamma");
        for r in &reports {
            assert!(r.ops > 0, "{} did no work", r.label);
            assert_eq!(r.errors, 0);
        }
    }

    #[test]
    fn runtime_windows_overlap() {
        // Two 80 ms tenants through a barrier finish in well under the
        // 160 ms a sequential run would need.
        let t = MemBlockTarget::new(1 << 20);
        let tenants = vec![Tenant::new(job("a", 1), &t), Tenant::new(job("b", 2), &t)];
        let start = std::time::Instant::now();
        run_tenants(&tenants);
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "tenants ran sequentially: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn empty_tenant_list_is_fine() {
        assert!(run_tenants(&[]).is_empty());
    }
}
