//! Job specifications.

use std::time::Duration;

/// I/O pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rw {
    /// Uniform random writes.
    RandWrite,
    /// Uniform random reads.
    RandRead,
    /// Per-thread sequential writes (partitioned span).
    SeqWrite,
    /// Per-thread sequential reads.
    SeqRead,
    /// Mixed random with the given read percentage.
    RandRw {
        /// Percentage of reads, 0..=100.
        read_pct: u8,
    },
}

impl Rw {
    /// FIO-style name.
    pub fn name(&self) -> &'static str {
        match self {
            Rw::RandWrite => "randwrite",
            Rw::RandRead => "randread",
            Rw::SeqWrite => "write",
            Rw::SeqRead => "read",
            Rw::RandRw { .. } => "randrw",
        }
    }
}

/// A FIO-like job description (builder style).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Pattern.
    pub rw: Rw,
    /// Block size in bytes.
    pub bs: u64,
    /// Independent jobs.
    pub numjobs: usize,
    /// In-flight ops per job (sync engine: extra threads).
    pub iodepth: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Per-thread op cap (whichever of runtime/limit hits first).
    pub io_limit: Option<u64>,
    /// Restrict I/O to the first `span` bytes of the target.
    pub span: Option<u64>,
    /// Windowed-IOPS sampling interval (None = no series).
    pub sample_interval: Option<Duration>,
    /// RNG seed.
    pub seed: u64,
    /// Label carried into the report.
    pub label: String,
}

impl JobSpec {
    /// A job with defaults: 4 KiB, 1 job, iodepth 1, 1 s runtime.
    pub fn new(rw: Rw) -> Self {
        JobSpec {
            rw,
            bs: 4096,
            numjobs: 1,
            iodepth: 1,
            runtime: Duration::from_secs(1),
            io_limit: None,
            span: None,
            sample_interval: None,
            seed: 0x10_ad,
            label: rw.name().to_string(),
        }
    }

    /// Set the block size.
    #[must_use]
    pub fn bs(mut self, bs: u64) -> Self {
        assert!(bs > 0, "block size must be positive");
        self.bs = bs;
        self
    }

    /// Set the job count.
    #[must_use]
    pub fn numjobs(mut self, n: usize) -> Self {
        assert!(n > 0, "numjobs must be positive");
        self.numjobs = n;
        self
    }

    /// Set the iodepth.
    #[must_use]
    pub fn iodepth(mut self, n: usize) -> Self {
        assert!(n > 0, "iodepth must be positive");
        self.iodepth = n;
        self
    }

    /// Set the runtime.
    #[must_use]
    pub fn runtime(mut self, d: Duration) -> Self {
        self.runtime = d;
        self
    }

    /// Cap per-thread ops.
    #[must_use]
    pub fn io_limit(mut self, ops: u64) -> Self {
        self.io_limit = Some(ops);
        self
    }

    /// Restrict the addressed span.
    #[must_use]
    pub fn span(mut self, bytes: u64) -> Self {
        self.span = Some(bytes);
        self
    }

    /// Enable windowed-IOPS sampling.
    #[must_use]
    pub fn sample_interval(mut self, d: Duration) -> Self {
        self.sample_interval = Some(d);
        self
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set the report label.
    #[must_use]
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = l.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let s = JobSpec::new(Rw::RandWrite)
            .bs(32 * 1024)
            .numjobs(4)
            .iodepth(8)
            .runtime(Duration::from_secs(3))
            .io_limit(100)
            .span(1 << 30)
            .seed(9)
            .label("fig10");
        assert_eq!(s.bs, 32 * 1024);
        assert_eq!(s.numjobs, 4);
        assert_eq!(s.iodepth, 8);
        assert_eq!(s.io_limit, Some(100));
        assert_eq!(s.span, Some(1 << 30));
        assert_eq!(s.label, "fig10");
    }

    #[test]
    fn names() {
        assert_eq!(Rw::RandWrite.name(), "randwrite");
        assert_eq!(Rw::SeqRead.name(), "read");
        assert_eq!(Rw::RandRw { read_pct: 70 }.name(), "randrw");
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_bs_rejected() {
        let _ = JobSpec::new(Rw::RandRead).bs(0);
    }
}
