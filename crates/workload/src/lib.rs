//! FIO-style workload generation and reporting.
//!
//! The paper's evaluation drives KRBD block devices with FIO from up to 80
//! VMs, sweeping pattern (random/sequential read/write), block size
//! (4K/32K/sequential-large), thread count and iodepth. [`JobSpec`]
//! describes such a job; [`run`] executes it against any
//! [`BlockTarget`] (an RBD image, a SolidFire volume, a raw device wrapper)
//! with one OS thread per `numjobs × iodepth` in-flight op (FIO's sync
//! engine semantics), per-thread deterministic offset streams, latency
//! histograms and windowed-IOPS time series for the fluctuation figures.

pub mod report;
pub mod spec;
pub mod tenants;

pub use report::Report;
pub use spec::{JobSpec, Rw};
pub use tenants::{run_tenants, Tenant};

use afc_common::rng::{child_seed, seeded};
use afc_common::{BlockTarget, IopsSampler, LatencyHist};
use rand::Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Execute `spec` against `target`. Blocks until the job's runtime (or op
/// limit) elapses and returns the aggregated report.
pub fn run(spec: &JobSpec, target: &(impl BlockTarget + ?Sized)) -> Report {
    let span = spec.span.unwrap_or_else(|| target.size());
    assert!(span >= spec.bs, "target smaller than block size");
    let threads = spec.numjobs * spec.iodepth.max(1);
    let stop = AtomicBool::new(false);
    let sampler = IopsSampler::new();
    let errors = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    let start = Instant::now();
    let deadline = start + spec.runtime;
    let mut hists: Vec<LatencyHist> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let stop = &stop;
            let sampler = &sampler;
            let errors = &errors;
            let total_ops = &total_ops;
            handles.push(s.spawn(move || {
                worker(
                    spec, target, t, span, deadline, stop, sampler, errors, total_ops,
                )
            }));
        }
        // Sampling loop on the coordinating thread.
        if let Some(interval) = spec.sample_interval {
            while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(
                    interval.min(deadline.saturating_duration_since(Instant::now())),
                );
                sampler.sample();
            }
        }
        for h in handles {
            if let Ok(h) = h.join() {
                hists.push(h);
            }
        }
    });
    let elapsed = start.elapsed();
    let mut lat = LatencyHist::new();
    for h in &hists {
        lat.merge(h);
    }
    let ops = total_ops.load(Ordering::Relaxed);
    Report {
        ops,
        errors: errors.load(Ordering::Relaxed),
        runtime: elapsed,
        bs: spec.bs,
        lat,
        series: sampler.series(),
        label: spec.label.clone(),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    spec: &JobSpec,
    target: &(impl BlockTarget + ?Sized),
    thread_idx: usize,
    span: u64,
    deadline: Instant,
    stop: &AtomicBool,
    sampler: &IopsSampler,
    errors: &AtomicU64,
    total_ops: &AtomicU64,
) -> LatencyHist {
    let mut rng = seeded(child_seed(spec.seed, thread_idx as u64));
    let mut hist = LatencyHist::new();
    let blocks = span / spec.bs;
    let threads = (spec.numjobs * spec.iodepth.max(1)) as u64;
    // Sequential jobs partition the span so streams don't collide.
    let part = (blocks / threads.max(1)).max(1);
    let mut seq_cursor = thread_idx as u64 * part % blocks;
    let buf = vec![0xa5u8; spec.bs as usize];
    let mut ops_done = 0u64;
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        if let Some(limit) = spec.io_limit {
            if ops_done >= limit {
                break;
            }
        }
        let is_read = match spec.rw {
            Rw::RandRead | Rw::SeqRead => true,
            Rw::RandWrite | Rw::SeqWrite => false,
            Rw::RandRw { read_pct } => rng.random_range(0..100) < read_pct,
        };
        let block = match spec.rw {
            Rw::RandWrite | Rw::RandRead | Rw::RandRw { .. } => rng.random_range(0..blocks),
            Rw::SeqWrite | Rw::SeqRead => {
                let b = seq_cursor;
                seq_cursor = (seq_cursor + 1) % blocks;
                b
            }
        };
        let off = block * spec.bs;
        let t0 = Instant::now();
        let res = if is_read {
            target.read_at(off, spec.bs as usize).map(|_| ())
        } else {
            target.write_at(off, &buf)
        };
        match res {
            Ok(()) => {
                hist.record(t0.elapsed());
                sampler.tick(1);
                total_ops.fetch_add(1, Ordering::Relaxed);
                ops_done += 1;
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                if errors.load(Ordering::Relaxed) > 100 {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::blocktarget::MemBlockTarget;
    use afc_common::KIB;
    use std::time::Duration;

    fn quick(rw: Rw) -> JobSpec {
        JobSpec::new(rw)
            .bs(4 * KIB)
            .numjobs(2)
            .iodepth(2)
            .runtime(Duration::from_millis(100))
            .seed(7)
    }

    #[test]
    fn random_write_reports_ops_and_latency() {
        let t = MemBlockTarget::new(1 << 20);
        let r = run(&quick(Rw::RandWrite), &t);
        assert!(r.ops > 100, "ops={}", r.ops);
        assert_eq!(r.errors, 0);
        assert!(r.iops() > 0.0);
        assert!(r.lat.count() == r.ops);
        assert!(r.bandwidth() > 0.0);
    }

    #[test]
    fn sequential_read_covers_span() {
        let t = MemBlockTarget::new(256 * KIB);
        let spec = JobSpec::new(Rw::SeqRead)
            .bs(4 * KIB)
            .numjobs(1)
            .runtime(Duration::from_millis(50))
            .seed(1);
        let r = run(&spec, &t);
        assert!(r.ops >= 64, "should wrap the span: {}", r.ops);
    }

    #[test]
    fn io_limit_caps_work() {
        let t = MemBlockTarget::new(1 << 20);
        let spec = quick(Rw::RandRead)
            .io_limit(10)
            .runtime(Duration::from_secs(5));
        let t0 = Instant::now();
        let r = run(&spec, &t);
        assert_eq!(r.ops, 4 * 10);
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn mixed_workload_runs() {
        let t = MemBlockTarget::new(1 << 20);
        let r = run(&quick(Rw::RandRw { read_pct: 50 }), &t);
        assert!(r.ops > 0);
    }

    #[test]
    fn sampling_produces_series() {
        let t = MemBlockTarget::new(1 << 20);
        let spec = quick(Rw::RandWrite)
            .runtime(Duration::from_millis(120))
            .sample_interval(Duration::from_millis(20));
        let r = run(&spec, &t);
        assert!(r.series.len() >= 3, "series={}", r.series.len());
        assert!(r.series.mean() > 0.0);
    }

    #[test]
    fn deterministic_offsets_given_seed() {
        // Two runs with the same seed and an op limit issue identical ops.
        struct Recorder(parking_lot::Mutex<Vec<u64>>);
        impl BlockTarget for Recorder {
            fn size(&self) -> u64 {
                1 << 20
            }
            fn read_at(&self, off: u64, len: usize) -> afc_common::Result<Vec<u8>> {
                self.0.lock().push(off);
                Ok(vec![0; len])
            }
            fn write_at(&self, off: u64, _d: &[u8]) -> afc_common::Result<()> {
                self.0.lock().push(off);
                Ok(())
            }
        }
        let spec = JobSpec::new(Rw::RandWrite)
            .bs(4 * KIB)
            .numjobs(1)
            .io_limit(50)
            .runtime(Duration::from_secs(5))
            .seed(42);
        let a = Recorder(parking_lot::Mutex::new(Vec::new()));
        run(&spec, &a);
        let b = Recorder(parking_lot::Mutex::new(Vec::new()));
        run(&spec, &b);
        assert_eq!(*a.0.lock(), *b.0.lock());
    }

    #[test]
    fn errors_abort_after_threshold() {
        struct Failing;
        impl BlockTarget for Failing {
            fn size(&self) -> u64 {
                1 << 20
            }
            fn read_at(&self, _o: u64, _l: usize) -> afc_common::Result<Vec<u8>> {
                Err(afc_common::AfcError::Io("boom".into()))
            }
            fn write_at(&self, _o: u64, _d: &[u8]) -> afc_common::Result<()> {
                Err(afc_common::AfcError::Io("boom".into()))
            }
        }
        let spec = quick(Rw::RandWrite).runtime(Duration::from_secs(10));
        let t0 = Instant::now();
        let r = run(&spec, &Failing);
        assert!(r.errors > 100);
        assert_eq!(r.ops, 0);
        assert!(t0.elapsed() < Duration::from_secs(5), "did not abort");
    }
}
