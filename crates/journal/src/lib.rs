//! The write-ahead journal on NVRAM.
//!
//! Ceph acknowledges a write once the journal entry is durable on the
//! primary *and* every replica (splay replication); the filestore applies
//! asynchronously afterwards. This crate implements that journal as a ring
//! on an [`afc_device::BlockDev`] (the paper used a PMC 8 GB NVRAM card,
//! 2 GB per OSD):
//!
//! - **Group commit**: submissions enqueue into a pending batch; the
//!   committer thread drains the queue, writes one coalesced multi-entry
//!   record (per-entry checksums preserved), issues a **single flush**
//!   barrier for the whole record, and fires every commit callback in
//!   submission order on its own thread — no per-entry device round trip,
//!   no completion-channel hop. Batch size is bounded by
//!   [`JournalConfig::batch_max_ops`] / [`JournalConfig::batch_max_bytes`];
//!   an adaptive linger ([`JournalConfig::batch_max_wait`]) lets a batch
//!   that already holds ≥2 entries fill further, while a lone entry always
//!   flushes immediately so low queue depth pays no added latency.
//! - **Inline fast path**: [`Journal::submit_inline`] commits on the
//!   *calling* thread when the journal is idle, skipping the committer
//!   wakeup entirely; under contention it degrades to the queued path. A
//!   `committing` flag makes inline and batch commits mutually exclusive,
//!   so the global callback order is still exactly sequence order.
//! - **Ring space accounting**: entries occupy the ring until the filestore
//!   reports them applied ([`Journal::trim_through`]). When the ring fills,
//!   submitters block — the backpressure behind Figure 10's 32K-random-write
//!   fluctuation ("if journal is full with its data, the system gets blocked
//!   until some of data in journal is flushed to filestore").
//! - **Replay**: untrimmed entries survive a crash (NVRAM is persistent) and
//!   [`Journal::replay`] returns them oldest-first for filestore re-apply.
//!
//! # Torn-write contract
//!
//! Every entry carries a checksum over `(seq, payload)`. When the backing
//! device reports a torn write ([`AfcError::TornWrite`], fault injection
//! modeling power loss mid-transfer), the batch's tail entry reached media
//! only partially: it is published with a poisoned checksum and its commit
//! callback is **dropped** — the write was never durable, so it must never
//! be acknowledged. A torn record is also never flushed: the barrier only
//! runs for records that reached media whole. [`Journal::replay`] validates
//! checksums oldest-first and truncates the log at the first invalid entry;
//! garbage past a tear is never replayed. [`Journal::crash_image`] +
//! [`Journal::recover`] model a crash/restart: the image holds exactly the
//! media-durable entries (in-flight submissions are lost, like DRAM
//! contents at power loss).

pub mod stats;

pub use stats::JournalStats;

use afc_common::lockdep::{self, classes, TrackedCondvar, TrackedMutex};
use afc_common::{sleep_for, AfcError, Result};
use afc_device::{BlockDev, IoReq, StreamId};
use bytes::Bytes;
use stats::JournalStatsCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Journal configuration.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Ring capacity in bytes (2 GiB per OSD in the paper's testbed).
    pub capacity: u64,
    /// Device-write alignment (direct I/O block size).
    pub align: u64,
    /// Maximum entries folded into one group-commit record.
    pub batch_max_ops: usize,
    /// Maximum aligned bytes folded into one group-commit record. A batch
    /// always admits at least one entry regardless of this cap.
    pub batch_max_bytes: u64,
    /// Adaptive linger: once the pending batch holds ≥2 entries, wait up
    /// to this long for it to fill before flushing. A lone entry never
    /// lingers, so low queue depth pays no added latency. Zero disables
    /// lingering entirely (flush whatever drained).
    pub batch_max_wait: Duration,
    /// Fail `submit` instead of blocking when the ring is full.
    pub fail_when_full: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            capacity: 2 * 1024 * 1024 * 1024,
            // The journal device is byte-addressable PMC NVRAM, not a
            // block SSD: a 4 KiB direct-I/O alignment would pad every
            // 4 KiB client op to an 8 KiB footprint (2× journal write
            // amplification on its own). 256 B keeps records cache-line
            // aligned while writing only what the record needs.
            align: 256,
            batch_max_ops: 64,
            batch_max_bytes: 8 * 1024 * 1024,
            batch_max_wait: Duration::ZERO,
            fail_when_full: false,
        }
    }
}

/// Commit callback: receives the entry's journal sequence number. Runs on
/// the journal committer thread (or the submitting thread for inline
/// commits), always in sequence order.
pub type CommitFn = Box<dyn FnOnce(u64) + Send>;

/// A journaled entry retained for replay until trimmed.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// Aligned on-ring footprint in bytes.
    pub footprint: u64,
    /// The serialized transaction payload.
    pub payload: Bytes,
    /// Checksum over `(seq, payload)`; a mismatch marks a torn tail.
    pub checksum: u64,
}

/// Checksum binding an entry's payload to its sequence number, so a stale
/// payload at a reused ring offset can never validate under a new seq.
pub fn entry_checksum(seq: u64, payload: &[u8]) -> u64 {
    afc_common::rng::hash_bytes(payload) ^ afc_common::rng::mix64(seq)
}

impl JournalEntry {
    /// Whether the stored checksum matches the payload.
    pub fn is_valid(&self) -> bool {
        self.checksum == entry_checksum(self.seq, &self.payload)
    }
}

struct Pending {
    seq: u64,
    footprint: u64,
    payload: Bytes,
    on_commit: CommitFn,
}

struct RingState {
    /// Entries waiting for the committer thread.
    pending: VecDeque<Pending>,
    /// Committed but untrimmed entries (replay set), oldest first.
    live: VecDeque<JournalEntry>,
    /// Bytes occupied by pending + live entries.
    used: u64,
    next_seq: u64,
    write_cursor: u64,
    /// A record (batch or inline) is between drain and callback-complete.
    /// While set, no other commit may start: this is what serializes
    /// inline commits against the committer and keeps callback order
    /// equal to sequence order.
    committing: bool,
    shutdown: bool,
}

struct Inner {
    cfg: JournalConfig,
    dev: Arc<dyn BlockDev>,
    ring: TrackedMutex<RingState>,
    /// Committer wakeup (work arrived, or `committing` cleared).
    work_cv: TrackedCondvar,
    /// Space-available wakeup for blocked submitters.
    space_cv: TrackedCondvar,
    stats: JournalStatsCell,
}

/// The write-ahead ring journal. See the crate docs.
pub struct Journal {
    inner: Arc<Inner>,
    committer: Option<std::thread::JoinHandle<()>>,
}

impl Journal {
    /// Open a journal on `dev`. The configured capacity is clamped to the
    /// device size.
    pub fn new(dev: Arc<dyn BlockDev>, cfg: JournalConfig) -> Arc<Self> {
        let cfg = JournalConfig {
            capacity: cfg.capacity.min(dev.capacity()),
            ..cfg
        };
        let inner = Arc::new(Inner {
            cfg,
            dev,
            ring: TrackedMutex::new(
                &classes::JOURNAL_RING,
                RingState {
                    pending: VecDeque::new(),
                    live: VecDeque::new(),
                    used: 0,
                    next_seq: 1,
                    write_cursor: 0,
                    committing: false,
                    shutdown: false,
                },
            ),
            work_cv: TrackedCondvar::new(),
            space_cv: TrackedCondvar::new(),
            stats: JournalStatsCell::default(),
        });
        let committer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("journal-committer".into())
                .spawn(move || committer_loop(inner))
                .expect("spawn journal committer")
        };
        Arc::new(Journal {
            inner,
            committer: Some(committer),
        })
    }

    /// Aligned ring footprint of a payload (header + data, rounded up).
    fn footprint(&self, len: usize) -> u64 {
        let raw = len as u64 + 64; // entry header
        raw.div_ceil(self.inner.cfg.align) * self.inner.cfg.align
    }

    /// Reserve ring space and a sequence number, enqueueing nothing yet.
    /// Shared by the queued and inline submit paths.
    fn check_footprint(&self, footprint: u64) -> Result<()> {
        if footprint > self.inner.cfg.capacity {
            return Err(AfcError::InvalidArgument(format!(
                "entry footprint {footprint} exceeds journal capacity {}",
                self.inner.cfg.capacity
            )));
        }
        Ok(())
    }

    /// Submit a transaction payload into the pending group-commit batch.
    /// Blocks while the ring is full (or fails with [`AfcError::Full`]
    /// when `fail_when_full`). `on_commit` fires on the committer thread
    /// once the entry's record is durable.
    pub fn submit(&self, payload: Bytes, on_commit: CommitFn) -> Result<u64> {
        let footprint = self.footprint(payload.len());
        self.check_footprint(footprint)?;
        let inner = &self.inner;
        if !inner.cfg.fail_when_full {
            // May park on space_cv until the filestore trims; callers must
            // not hold any no-block lock class across this.
            lockdep::assert_blockable("journal submit (ring-full wait)");
        }
        let mut ring = inner.ring.lock();
        while ring.used + footprint > inner.cfg.capacity {
            if ring.shutdown {
                return Err(AfcError::ShutDown("journal".into()));
            }
            if inner.cfg.fail_when_full {
                return Err(AfcError::Full("journal ring".into()));
            }
            inner.stats.full_stalls.inc();
            let t0 = Instant::now();
            inner.space_cv.wait(&mut ring);
            inner
                .stats
                .full_stall_us
                .add(t0.elapsed().as_micros() as u64);
        }
        if ring.shutdown {
            return Err(AfcError::ShutDown("journal".into()));
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.used += footprint;
        ring.pending.push_back(Pending {
            seq,
            footprint,
            payload,
            on_commit,
        });
        inner.stats.submits.inc();
        inner.work_cv.notify_one();
        Ok(seq)
    }

    /// Submit with the low-queue-depth fast path: when the journal is
    /// idle (no pending batch, no commit in flight, space available), the
    /// record is written and flushed on the *calling* thread and
    /// `on_commit` fires before this returns — no committer-thread hop.
    /// Otherwise it degrades to the queued group-commit path. Callback
    /// order is sequence order either way (see `RingState::committing`).
    ///
    /// The caller eats the device latency, so use this only from threads
    /// allowed to block for a device write (e.g. replica-side dispatch).
    pub fn submit_inline(&self, payload: Bytes, on_commit: CommitFn) -> Result<u64> {
        let footprint = self.footprint(payload.len());
        self.check_footprint(footprint)?;
        let inner = &self.inner;
        let seq = {
            let mut ring = inner.ring.lock();
            if ring.shutdown {
                return Err(AfcError::ShutDown("journal".into()));
            }
            if !ring.pending.is_empty()
                || ring.committing
                || ring.used + footprint > inner.cfg.capacity
            {
                drop(ring);
                return self.submit(payload, on_commit);
            }
            let seq = ring.next_seq;
            ring.next_seq += 1;
            ring.used += footprint;
            ring.committing = true;
            inner.stats.submits.inc();
            seq
        };
        let torn = write_record(inner, footprint);
        let mut checksum = entry_checksum(seq, &payload);
        if torn {
            checksum = !checksum;
        }
        {
            let mut ring = inner.ring.lock();
            ring.live.push_back(JournalEntry {
                seq,
                footprint,
                payload,
                checksum,
            });
        }
        if !torn {
            inner.stats.commits.inc();
            inner.stats.inline_commits.inc();
            on_commit(seq);
        }
        // Only now may the committer (or another inline submitter) start
        // the next record: our callback has fired, order is preserved.
        inner.ring.lock().committing = false;
        inner.work_cv.notify_all();
        Ok(seq)
    }

    /// Submit and block until the entry is durable (convenience for tests
    /// and simple callers).
    pub fn submit_and_wait(&self, payload: Bytes) -> Result<u64> {
        lockdep::assert_blockable("journal submit_and_wait");
        let (tx, rx) = crossbeam::channel::bounded(1);
        let seq = self.submit(
            payload,
            Box::new(move |s| {
                let _ = tx.send(s);
            }),
        )?;
        rx.recv()
            .map_err(|_| AfcError::ShutDown("journal".into()))?;
        Ok(seq)
    }

    /// Release ring space for all entries with `seq <= through` (the
    /// filestore has applied them).
    pub fn trim_through(&self, through: u64) {
        let inner = &self.inner;
        let mut ring = inner.ring.lock();
        let mut freed = 0u64;
        while let Some(front) = ring.live.front() {
            if front.seq > through {
                break;
            }
            freed += front.footprint;
            ring.live.pop_front();
        }
        if freed > 0 {
            ring.used -= freed;
            inner.stats.trimmed_bytes.add(freed);
            inner.space_cv.notify_all();
        }
    }

    /// Committed-but-untrimmed entries, oldest first (crash replay set).
    ///
    /// Checksums are validated oldest-first and the log is truncated at the
    /// first invalid entry: a torn tail (and anything structurally after
    /// it) is discarded, never handed back for re-apply. Truncation frees
    /// the garbage's ring space, so a second call returns the same valid
    /// prefix — replay is idempotent.
    pub fn replay(&self) -> Vec<JournalEntry> {
        let inner = &self.inner;
        let mut ring = inner.ring.lock();
        let valid = ring.live.iter().take_while(|e| e.is_valid()).count();
        if valid < ring.live.len() {
            let dropped = (ring.live.len() - valid) as u64;
            let mut freed = 0u64;
            while ring.live.len() > valid {
                freed += ring.live.pop_back().map(|e| e.footprint).unwrap_or(0);
            }
            ring.used -= freed;
            inner.stats.replay_truncated.add(dropped);
            inner.space_cv.notify_all();
        }
        ring.live.iter().cloned().collect()
    }

    /// The media-durable entry set as of *now*: what survives a simulated
    /// power loss. In-flight (pending) submissions are excluded — they were
    /// still in DRAM. A torn tail is included as-written (bad checksum);
    /// [`Journal::replay`] on the recovered journal truncates it.
    pub fn crash_image(&self) -> Vec<JournalEntry> {
        self.inner.ring.lock().live.iter().cloned().collect()
    }

    /// Re-open a journal from a crash image (see [`Journal::crash_image`]).
    /// Sequencing resumes after the highest recovered entry.
    pub fn recover(
        dev: Arc<dyn BlockDev>,
        cfg: JournalConfig,
        image: Vec<JournalEntry>,
    ) -> Arc<Self> {
        let j = Journal::new(dev, cfg);
        {
            let mut ring = j.inner.ring.lock();
            ring.used = image.iter().map(|e| e.footprint).sum();
            ring.next_seq = image.iter().map(|e| e.seq).max().unwrap_or(0) + 1;
            ring.live = image.into();
        }
        j
    }

    /// Fraction of the ring currently occupied.
    pub fn used_fraction(&self) -> f64 {
        let ring = self.inner.ring.lock();
        ring.used as f64 / self.inner.cfg.capacity as f64
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> JournalStats {
        self.inner.stats.snapshot()
    }

    /// Register this journal's stat counters into a cluster metric
    /// registry under `<prefix>.<field>` (e.g. `node0.journal.commits`).
    pub fn register_metrics(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        self.inner.stats.register_into(m, prefix);
    }

    /// Block until every submitted entry has committed — or, for torn
    /// tails, been dropped (their callbacks never fire). Test helper.
    pub fn quiesce(&self) {
        loop {
            let s = self.inner.stats.snapshot();
            if s.commits + s.torn_writes >= s.submits {
                return;
            }
            sleep_for(Duration::from_micros(200));
        }
    }
}

/// Write one coalesced record of `total` aligned bytes at the ring cursor,
/// then issue the group-commit flush barrier. Returns whether the record's
/// tail tore. Called with no locks held (device waits block).
fn write_record(inner: &Inner, total: u64) -> bool {
    let offset = {
        let mut ring = inner.ring.lock();
        let cap = inner.cfg.capacity;
        if ring.write_cursor + total > cap {
            ring.write_cursor = 0;
        }
        let off = ring.write_cursor;
        ring.write_cursor += total;
        off
    };
    let torn = match inner.dev.submit(IoReq::write_stream(
        offset,
        total.min(u32::MAX as u64) as u32,
        StreamId::Journal,
    )) {
        Ok(_) => false,
        Err(AfcError::TornWrite(_)) => {
            // Power-loss model: a prefix of the record reached media, the
            // tail entry tore. The caller poisons the tail when publishing.
            inner.stats.torn_writes.inc();
            true
        }
        Err(_) => {
            // Injected device fault: entries are still accepted (NVRAM
            // models don't really fail mid-stream); account and continue.
            inner.stats.write_errors.inc();
            false
        }
    };
    inner.stats.batches.inc();
    inner.stats.bytes_written.add(total);
    if !torn {
        // One barrier makes the whole record durable — this is the flush
        // the group amortizes. A torn record never reached media whole,
        // so there is nothing to harden.
        match inner.dev.submit(IoReq::flush()) {
            Ok(_) => inner.stats.flushes.inc(),
            Err(_) => inner.stats.write_errors.inc(),
        }
    }
    torn
}

fn committer_loop(inner: Arc<Inner>) {
    loop {
        // Claim a batch: wait for work and for any in-flight record
        // (inline or previous batch) to finish its callbacks.
        let batch: Vec<Pending> = {
            let mut ring = inner.ring.lock();
            loop {
                if !ring.pending.is_empty() && !ring.committing {
                    break;
                }
                if ring.shutdown && ring.pending.is_empty() {
                    return;
                }
                inner.work_cv.wait(&mut ring);
            }
            // Adaptive linger: a lone entry flushes immediately (low
            // queue depth must not pay added latency); with ≥2 entries
            // queued, arrivals are bursty — wait up to batch_max_wait for
            // the batch to fill before flushing.
            let wait = inner.cfg.batch_max_wait;
            if !wait.is_zero() && ring.pending.len() >= 2 {
                let deadline = Instant::now() + wait;
                let full = |r: &RingState| {
                    r.pending.len() >= inner.cfg.batch_max_ops
                        || r.pending.iter().map(|p| p.footprint).sum::<u64>()
                            >= inner.cfg.batch_max_bytes
                };
                while !full(&ring) && !ring.shutdown {
                    if inner.work_cv.wait_until(&mut ring, deadline).timed_out() {
                        break;
                    }
                }
            }
            // Drain up to the ops/bytes caps (always at least one entry).
            let mut n = 0usize;
            let mut bytes = 0u64;
            for p in ring.pending.iter() {
                if n == inner.cfg.batch_max_ops
                    || (n > 0 && bytes + p.footprint > inner.cfg.batch_max_bytes)
                {
                    break;
                }
                bytes += p.footprint;
                n += 1;
            }
            ring.committing = true;
            ring.pending.drain(..n).collect()
        };
        let total: u64 = batch.iter().map(|p| p.footprint).sum();
        let torn = write_record(&inner, total);
        // Publish to the replay set, then fire callbacks in submission
        // order on this thread — no completion-channel hop.
        let n = batch.len();
        let mut callbacks: Vec<(u64, CommitFn)> = Vec::with_capacity(n);
        {
            let mut ring = inner.ring.lock();
            for (i, p) in batch.into_iter().enumerate() {
                let tail_torn = torn && i + 1 == n;
                let mut checksum = entry_checksum(p.seq, &p.payload);
                if tail_torn {
                    // The tail is garbage on media: poison its checksum so
                    // replay truncates it. Never durable, so never
                    // acknowledged: its commit callback is dropped.
                    checksum = !checksum;
                }
                ring.live.push_back(JournalEntry {
                    seq: p.seq,
                    footprint: p.footprint,
                    payload: p.payload,
                    checksum,
                });
                if !tail_torn {
                    callbacks.push((p.seq, p.on_commit));
                }
            }
        }
        for (seq, cb) in callbacks {
            inner.stats.commits.inc();
            cb(seq);
        }
        inner.ring.lock().committing = false;
        inner.work_cv.notify_all();
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        {
            let mut ring = self.inner.ring.lock();
            ring.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        self.inner.space_cv.notify_all();
        if let Some(h) = self.committer.take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::MIB;
    use afc_device::{Nvram, NvramConfig};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};

    fn journal(capacity: u64) -> Arc<Journal> {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        Journal::new(
            dev,
            JournalConfig {
                capacity,
                // Ring-occupancy tests below size their payloads around
                // 4 KiB footprints; pin the alignment they were written
                // against rather than the production default.
                align: 4096,
                ..JournalConfig::default()
            },
        )
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn submit_commits_and_fires_callback() {
        let j = journal(16 * MIB);
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        let seq = j
            .submit(
                payload(4096),
                Box::new(move |s| {
                    f.store(s, AOrd::SeqCst);
                }),
            )
            .unwrap();
        j.quiesce();
        assert_eq!(fired.load(AOrd::SeqCst), seq);
        let s = j.stats();
        assert_eq!(s.submits, 1);
        assert_eq!(s.commits, 1);
        assert!(s.bytes_written >= 4096);
        assert_eq!(s.flushes, 1, "one barrier per record");
    }

    #[test]
    fn sequences_are_monotonic_and_callbacks_ordered() {
        let j = journal(64 * MIB);
        let order = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..100 {
            let o = Arc::clone(&order);
            j.submit(payload(100), Box::new(move |s| o.lock().push(s)))
                .unwrap();
        }
        j.quiesce();
        let o = order.lock();
        assert_eq!(o.len(), 100);
        assert!(o.windows(2).all(|w| w[0] < w[1]), "commit order broken");
    }

    #[test]
    fn batching_reduces_device_writes() {
        let j = journal(64 * MIB);
        for _ in 0..200 {
            j.submit(payload(512), Box::new(|_| {})).unwrap();
        }
        j.quiesce();
        let s = j.stats();
        assert!(
            s.batches < s.submits,
            "batches={} submits={}",
            s.batches,
            s.submits
        );
        // One flush per record, not per entry: the group-commit payoff.
        assert_eq!(s.flushes, s.batches);
    }

    #[test]
    fn batch_respects_bytes_cap() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let j = Journal::new(
            dev,
            JournalConfig {
                capacity: 64 * MIB,
                // Two 4K-aligned footprints per record, max.
                align: 4096,
                batch_max_bytes: 8 * 1024,
                ..JournalConfig::default()
            },
        );
        for _ in 0..10 {
            j.submit(payload(512), Box::new(|_| {})).unwrap();
        }
        j.quiesce();
        let s = j.stats();
        assert_eq!(s.commits, 10);
        assert!(s.batches >= 5, "bytes cap ignored: {} batches", s.batches);
    }

    #[test]
    fn inline_commit_fires_before_return() {
        let j = journal(16 * MIB);
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        let seq = j
            .submit_inline(
                payload(1024),
                Box::new(move |s| {
                    f.store(s, AOrd::SeqCst);
                }),
            )
            .unwrap();
        // No quiesce: the callback ran on *this* thread before return.
        assert_eq!(fired.load(AOrd::SeqCst), seq);
        let s = j.stats();
        assert_eq!(s.inline_commits, 1);
        assert_eq!(s.commits, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(j.replay().len(), 1);
    }

    #[test]
    fn mixed_inline_and_queued_callbacks_stay_ordered() {
        let j = journal(64 * MIB);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let j = &j;
                let order = Arc::clone(&order);
                s.spawn(move || {
                    for _ in 0..50 {
                        let o = Arc::clone(&order);
                        let cb: CommitFn = Box::new(move |s| o.lock().push(s));
                        if t % 2 == 0 {
                            j.submit_inline(payload(128), cb).unwrap();
                        } else {
                            j.submit(payload(128), cb).unwrap();
                        }
                    }
                });
            }
        });
        j.quiesce();
        let o = order.lock();
        assert_eq!(o.len(), 200);
        assert!(
            o.windows(2).all(|w| w[0] < w[1]),
            "inline/queued commit interleaving broke order"
        );
    }

    #[test]
    fn linger_fills_batches_under_load() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let j = Journal::new(
            dev,
            JournalConfig {
                capacity: 64 * MIB,
                batch_max_wait: Duration::from_millis(5),
                ..JournalConfig::default()
            },
        );
        // Queue a burst before the committer can drain it all; the linger
        // window should coalesce the stragglers instead of emitting many
        // tiny records.
        for _ in 0..64 {
            j.submit(payload(256), Box::new(|_| {})).unwrap();
        }
        j.quiesce();
        let s = j.stats();
        assert_eq!(s.commits, 64);
        assert!(s.batches <= 8, "linger did not coalesce: {}", s.batches);
    }

    #[test]
    fn full_ring_blocks_until_trim() {
        let j = journal(64 * 1024); // 16 4K-aligned slots
        let mut seqs = Vec::new();
        for _ in 0..16 {
            seqs.push(j.submit(payload(1000), Box::new(|_| {})).unwrap());
        }
        j.quiesce();
        assert!(j.used_fraction() > 0.9);
        // Next submit would block; trim from another thread unblocks it.
        let j2 = Arc::clone(&j);
        let last = *seqs.last().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            j2.trim_through(last);
        });
        let t0 = Instant::now();
        j.submit(payload(1000), Box::new(|_| {})).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25), "did not block");
        t.join().unwrap();
        assert!(j.stats().full_stalls > 0);
        assert!(j.stats().full_stall_us > 0);
    }

    #[test]
    fn fail_when_full_mode_errors() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let j = Journal::new(
            dev,
            JournalConfig {
                capacity: 16 * 1024,
                // 4 slots of 1000-byte payloads at 4 KiB footprints.
                align: 4096,
                fail_when_full: true,
                ..JournalConfig::default()
            },
        );
        let mut ok = 0;
        let mut full = 0;
        for _ in 0..10 {
            match j.submit(payload(1000), Box::new(|_| {})) {
                Ok(_) => ok += 1,
                Err(AfcError::Full(_)) => full += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(ok >= 3 && full >= 1, "ok={ok} full={full}");
    }

    #[test]
    fn replay_returns_untrimmed_entries() {
        let j = journal(16 * MIB);
        let mut seqs = Vec::new();
        for i in 0..10 {
            seqs.push(
                j.submit(Bytes::from(vec![i as u8; 64]), Box::new(|_| {}))
                    .unwrap(),
            );
        }
        j.quiesce();
        assert_eq!(j.replay().len(), 10);
        j.trim_through(seqs[4]);
        let r = j.replay();
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].seq, seqs[5]);
        assert_eq!(r[0].payload[0], 5u8);
        // Trim everything.
        j.trim_through(u64::MAX);
        assert!(j.replay().is_empty());
        assert_eq!(j.used_fraction(), 0.0);
    }

    #[test]
    fn oversized_entry_rejected() {
        let j = journal(64 * 1024);
        let err = j.submit(payload(128 * 1024), Box::new(|_| {})).unwrap_err();
        assert_eq!(err.kind(), "invalid_argument");
        let err = j
            .submit_inline(payload(128 * 1024), Box::new(|_| {}))
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_argument");
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let j = journal(16 * MIB);
        let seq = j.submit_and_wait(payload(2048)).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(j.stats().commits, 1);
    }

    #[test]
    fn concurrent_submitters() {
        let j = journal(64 * MIB);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let j = &j;
                s.spawn(move || {
                    for _ in 0..100 {
                        j.submit_and_wait(payload(256)).unwrap();
                    }
                });
            }
        });
        let s = j.stats();
        assert_eq!(s.submits, 800);
        assert_eq!(s.commits, 800);
    }

    #[test]
    fn drop_with_pending_work_is_clean() {
        let j = journal(16 * MIB);
        for _ in 0..50 {
            j.submit(payload(100), Box::new(|_| {})).unwrap();
        }
        drop(j); // must not hang
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
    use afc_device::{Nvram, NvramConfig};
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};

    #[test]
    fn entry_checksum_binds_seq_and_payload() {
        let p = Bytes::from_static(b"payload");
        let e = JournalEntry {
            seq: 9,
            footprint: 4096,
            payload: p.clone(),
            checksum: entry_checksum(9, &p),
        };
        assert!(e.is_valid());
        assert!(!JournalEntry {
            seq: 10,
            ..e.clone()
        }
        .is_valid());
        assert!(!JournalEntry {
            payload: Bytes::from_static(b"payloae"),
            ..e
        }
        .is_valid());
    }

    #[test]
    fn torn_tail_never_acks_and_replay_truncates() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let reg = Arc::new(FaultRegistry::new());
        dev.faults().attach(Arc::clone(&reg), "jdev");
        let j = Journal::new(dev, JournalConfig::default());
        for i in 0..3u8 {
            j.submit_and_wait(Bytes::from(vec![i; 256])).unwrap();
        }
        // The next device write tears: the entry lands with a poisoned
        // checksum and its commit callback must never fire.
        reg.install(FaultSpec::new("jdev.write", FaultKind::Torn));
        let acked = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&acked);
        j.submit(
            Bytes::from(vec![9u8; 256]),
            Box::new(move |_| {
                a.fetch_add(1, AOrd::SeqCst);
            }),
        )
        .unwrap();
        j.quiesce();
        assert_eq!(acked.load(AOrd::SeqCst), 0, "torn write was acked");
        assert_eq!(j.stats().torn_writes, 1);

        // Crash: the image keeps the torn tail as-written...
        let image = j.crash_image();
        assert_eq!(image.len(), 4);
        assert!(!image[3].is_valid());
        drop(j);

        // ...and replay on the recovered journal truncates it, idempotently.
        let dev2 = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let j2 = Journal::recover(dev2, JournalConfig::default(), image);
        let r1 = j2.replay();
        assert_eq!(r1.len(), 3, "garbage tail must not be replayed");
        assert!(r1.iter().all(JournalEntry::is_valid));
        assert_eq!(j2.stats().replay_truncated, 1);
        let r2 = j2.replay();
        assert_eq!(
            r1.iter().map(|e| e.seq).collect::<Vec<_>>(),
            r2.iter().map(|e| e.seq).collect::<Vec<_>>()
        );
        // Sequencing resumes after the highest recovered entry.
        let seq = j2.submit_and_wait(Bytes::from_static(b"next")).unwrap();
        assert_eq!(seq, 5);
    }

    #[test]
    fn torn_inline_commit_never_acks() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let reg = Arc::new(FaultRegistry::new());
        dev.faults().attach(Arc::clone(&reg), "jdev");
        let j = Journal::new(dev, JournalConfig::default());
        reg.install(FaultSpec::new("jdev.write", FaultKind::Torn));
        let acked = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&acked);
        j.submit_inline(
            Bytes::from(vec![7u8; 256]),
            Box::new(move |_| {
                a.fetch_add(1, AOrd::SeqCst);
            }),
        )
        .unwrap();
        j.quiesce();
        assert_eq!(acked.load(AOrd::SeqCst), 0, "torn inline write was acked");
        assert_eq!(j.stats().torn_writes, 1);
        assert_eq!(j.stats().flushes, 0, "torn record must not be flushed");
        // The poisoned entry truncates on replay; the journal keeps working.
        assert!(j.replay().is_empty());
        let seq = j.submit_and_wait(Bytes::from_static(b"after")).unwrap();
        assert_eq!(seq, 2);
    }

    #[test]
    fn injected_device_faults_are_absorbed_and_counted() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let faults = Arc::clone(&dev);
        let j = Journal::new(dev, JournalConfig::default());
        faults.faults().inject(2);
        for _ in 0..6 {
            j.submit_and_wait(Bytes::from(vec![0u8; 512])).unwrap();
        }
        let s = j.stats();
        assert_eq!(s.commits, 6, "entries must commit despite device faults");
        assert!(s.write_errors >= 1, "faults not accounted: {s:?}");
    }
}
