//! Journal statistics.

use afc_common::metrics::{Counter, Metrics};

/// Snapshot of journal activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// Entries submitted.
    pub submits: u64,
    /// Entries committed (callbacks fired).
    pub commits: u64,
    /// Entries committed on the submitter's thread via the inline
    /// low-queue-depth fast path (subset of `commits`).
    pub inline_commits: u64,
    /// Device writes issued (each covers a batch).
    pub batches: u64,
    /// Group-commit flush barriers issued (one per intact record).
    pub flushes: u64,
    /// Bytes written to the device (aligned footprints).
    pub bytes_written: u64,
    /// Bytes released by trims.
    pub trimmed_bytes: u64,
    /// Times a submitter blocked on a full ring.
    pub full_stalls: u64,
    /// Total time submitters spent blocked, microseconds.
    pub full_stall_us: u64,
    /// Device write errors absorbed (fault injection).
    pub write_errors: u64,
    /// Torn device writes: the batch tail was poisoned and its commit
    /// callback dropped (fault injection / power-loss model).
    pub torn_writes: u64,
    /// Entries discarded by replay checksum validation (torn tails).
    pub replay_truncated: u64,
}

impl JournalStats {
    /// Mean entries per device write.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.commits as f64 / self.batches as f64
    }
}

/// Thread-safe accumulator behind [`JournalStats`]. Each field is a
/// shared metric cell, so the same counters the journal mutates on its
/// hot path can be registered into a cluster [`Metrics`] registry.
#[derive(Debug, Default)]
pub struct JournalStatsCell {
    pub(crate) submits: Counter,
    pub(crate) commits: Counter,
    pub(crate) inline_commits: Counter,
    pub(crate) batches: Counter,
    pub(crate) flushes: Counter,
    pub(crate) bytes_written: Counter,
    pub(crate) trimmed_bytes: Counter,
    pub(crate) full_stalls: Counter,
    pub(crate) full_stall_us: Counter,
    pub(crate) write_errors: Counter,
    pub(crate) torn_writes: Counter,
    pub(crate) replay_truncated: Counter,
}

impl JournalStatsCell {
    /// Snapshot current values.
    pub fn snapshot(&self) -> JournalStats {
        JournalStats {
            submits: self.submits.get(),
            commits: self.commits.get(),
            inline_commits: self.inline_commits.get(),
            batches: self.batches.get(),
            flushes: self.flushes.get(),
            bytes_written: self.bytes_written.get(),
            trimmed_bytes: self.trimmed_bytes.get(),
            full_stalls: self.full_stalls.get(),
            full_stall_us: self.full_stall_us.get(),
            write_errors: self.write_errors.get(),
            torn_writes: self.torn_writes.get(),
            replay_truncated: self.replay_truncated.get(),
        }
    }

    /// Register every cell under `<prefix>.<field>` (e.g.
    /// `node0.journal.commits`). Registering the same cells from several
    /// journals under one prefix sums them in snapshots.
    pub fn register_into(&self, m: &Metrics, prefix: &str) {
        let fields: [(&str, &Counter); 12] = [
            ("submits", &self.submits),
            ("commits", &self.commits),
            ("inline_commits", &self.inline_commits),
            ("batches", &self.batches),
            ("flushes", &self.flushes),
            ("bytes_written", &self.bytes_written),
            ("trimmed_bytes", &self.trimmed_bytes),
            ("full_stalls", &self.full_stalls),
            ("full_stall_us", &self.full_stall_us),
            ("write_errors", &self.write_errors),
            ("torn_writes", &self.torn_writes),
            ("replay_truncated", &self.replay_truncated),
        ];
        for (name, cell) in fields {
            m.register_counter(format!("{prefix}.{name}"), cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_batch_math() {
        let s = JournalStats {
            commits: 100,
            batches: 25,
            ..Default::default()
        };
        assert!((s.avg_batch() - 4.0).abs() < 1e-9);
        assert_eq!(JournalStats::default().avg_batch(), 0.0);
    }

    #[test]
    fn snapshot_reflects_cell() {
        let c = JournalStatsCell::default();
        c.submits.add(3);
        c.full_stalls.inc();
        let s = c.snapshot();
        assert_eq!(s.submits, 3);
        assert_eq!(s.full_stalls, 1);
    }

    #[test]
    fn register_exposes_all_fields() {
        let m = Metrics::new();
        let c = JournalStatsCell::default();
        c.register_into(&m, "node0.journal");
        c.commits.add(7);
        c.bytes_written.add(4096);
        let s = m.snapshot();
        assert_eq!(s.counter("node0.journal.commits"), Some(7));
        assert_eq!(s.counter("node0.journal.bytes_written"), Some(4096));
        assert_eq!(s.counter("node0.journal.torn_writes"), Some(0));
    }
}
