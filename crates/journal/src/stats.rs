//! Journal statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of journal activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// Entries submitted.
    pub submits: u64,
    /// Entries committed (callbacks fired).
    pub commits: u64,
    /// Device writes issued (each covers a batch).
    pub batches: u64,
    /// Bytes written to the device (aligned footprints).
    pub bytes_written: u64,
    /// Bytes released by trims.
    pub trimmed_bytes: u64,
    /// Times a submitter blocked on a full ring.
    pub full_stalls: u64,
    /// Total time submitters spent blocked, microseconds.
    pub full_stall_us: u64,
    /// Device write errors absorbed (fault injection).
    pub write_errors: u64,
    /// Torn device writes: the batch tail was poisoned and its commit
    /// callback dropped (fault injection / power-loss model).
    pub torn_writes: u64,
    /// Entries discarded by replay checksum validation (torn tails).
    pub replay_truncated: u64,
}

impl JournalStats {
    /// Mean entries per device write.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.commits as f64 / self.batches as f64
    }
}

/// Thread-safe accumulator behind [`JournalStats`].
#[derive(Debug, Default)]
pub struct JournalStatsCell {
    pub(crate) submits: AtomicU64,
    pub(crate) commits: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) trimmed_bytes: AtomicU64,
    pub(crate) full_stalls: AtomicU64,
    pub(crate) full_stall_us: AtomicU64,
    pub(crate) write_errors: AtomicU64,
    pub(crate) torn_writes: AtomicU64,
    pub(crate) replay_truncated: AtomicU64,
}

impl JournalStatsCell {
    /// Snapshot current values.
    pub fn snapshot(&self) -> JournalStats {
        JournalStats {
            submits: self.submits.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            trimmed_bytes: self.trimmed_bytes.load(Ordering::Relaxed),
            full_stalls: self.full_stalls.load(Ordering::Relaxed),
            full_stall_us: self.full_stall_us.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            replay_truncated: self.replay_truncated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_batch_math() {
        let s = JournalStats {
            commits: 100,
            batches: 25,
            ..Default::default()
        };
        assert!((s.avg_batch() - 4.0).abs() < 1e-9);
        assert_eq!(JournalStats::default().avg_batch(), 0.0);
    }

    #[test]
    fn snapshot_reflects_cell() {
        let c = JournalStatsCell::default();
        c.submits.fetch_add(3, Ordering::Relaxed);
        c.full_stalls.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.submits, 3);
        assert_eq!(s.full_stalls, 1);
    }
}
