//! Property test: journal replay returns exactly the committed, untrimmed
//! prefix — for arbitrary submit/trim interleavings, with and without a
//! torn tail at the crash point — and replay is idempotent.

use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
use afc_device::{Nvram, NvramConfig};
use afc_journal::{Journal, JournalConfig};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic per-entry payload so replayed bytes can be checked.
fn payload_for(seq: u64, len: usize) -> Bytes {
    Bytes::from(vec![(seq % 251) as u8; len.max(1)])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Model: a run of submits interleaved with trims, then a crash —
    /// optionally tearing one final in-flight entry. Replay after
    /// recovery must yield seqs `(trimmed, committed]` with the original
    /// payloads; the torn entry never appears; a second replay returns
    /// the same entries (idempotence).
    #[test]
    fn replay_is_exactly_the_committed_untrimmed_prefix(
        cmds in proptest::collection::vec((0u8..5, any::<u8>(), 1u16..2048), 1..50),
        torn_tail in any::<bool>(),
    ) {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let reg = Arc::new(FaultRegistry::new());
        dev.faults().attach(Arc::clone(&reg), "jdev");
        let j = Journal::new(dev, JournalConfig::default());

        let mut committed: u64 = 0; // highest acked seq
        let mut trimmed: u64 = 0;   // highest trim watermark issued
        for (kind, arg, len) in &cmds {
            if *kind < 4 {
                // Submit (weighted 4:1 over trim to grow the log).
                let seq = j
                    .submit_and_wait(payload_for(committed + 1, *len as usize))
                    .unwrap();
                prop_assert_eq!(seq, committed + 1, "seqs must be dense");
                committed = seq;
            } else if committed > trimmed {
                // Trim through some already-committed point.
                let through = trimmed + 1 + u64::from(*arg) % (committed - trimmed);
                j.trim_through(through);
                trimmed = through;
            }
        }
        if torn_tail {
            // Crash point: the last entry tears mid-write. It must be
            // recovered as garbage and truncated, never replayed.
            reg.install(FaultSpec::new("jdev.write", FaultKind::Torn));
            j.submit(payload_for(committed + 1, 512), Box::new(|_| {})).unwrap();
            j.quiesce();
            prop_assert_eq!(j.stats().torn_writes, 1);
        }

        // Crash + recover onto a fresh device.
        let image = j.crash_image();
        drop(j);
        let j2 = Journal::recover(
            Arc::new(Nvram::new(NvramConfig::pmc_8g())),
            JournalConfig::default(),
            image,
        );

        let replayed = j2.replay();
        let expect: Vec<u64> = (trimmed + 1..=committed).collect();
        let got: Vec<u64> = replayed.iter().map(|e| e.seq).collect();
        prop_assert_eq!(&got, &expect, "replay must be the committed untrimmed prefix");
        for e in &replayed {
            prop_assert!(e.is_valid());
            prop_assert_eq!(&e.payload[..1], &payload_for(e.seq, 1)[..1]);
        }

        // Double replay = single replay.
        let again: Vec<u64> = j2.replay().iter().map(|e| e.seq).collect();
        prop_assert_eq!(&again, &expect, "second replay must be a no-op repeat");
    }
}
