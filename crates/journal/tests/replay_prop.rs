//! Property test: journal replay returns exactly the committed, untrimmed
//! prefix — for arbitrary submit/trim interleavings, with and without a
//! torn tail at the crash point — and replay is idempotent.

use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
use afc_device::{Nvram, NvramConfig};
use afc_journal::{Journal, JournalConfig};
use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic per-entry payload so replayed bytes can be checked.
fn payload_for(seq: u64, len: usize) -> Bytes {
    Bytes::from(vec![(seq % 251) as u8; len.max(1)])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Model: a run of submits interleaved with trims, then a crash —
    /// optionally tearing one final in-flight entry. Replay after
    /// recovery must yield seqs `(trimmed, committed]` with the original
    /// payloads; the torn entry never appears; a second replay returns
    /// the same entries (idempotence).
    #[test]
    fn replay_is_exactly_the_committed_untrimmed_prefix(
        cmds in proptest::collection::vec((0u8..5, any::<u8>(), 1u16..2048), 1..50),
        torn_tail in any::<bool>(),
    ) {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let reg = Arc::new(FaultRegistry::new());
        dev.faults().attach(Arc::clone(&reg), "jdev");
        let j = Journal::new(dev, JournalConfig::default());

        let mut committed: u64 = 0; // highest acked seq
        let mut trimmed: u64 = 0;   // highest trim watermark issued
        for (kind, arg, len) in &cmds {
            if *kind < 4 {
                // Submit (weighted 4:1 over trim to grow the log).
                let seq = j
                    .submit_and_wait(payload_for(committed + 1, *len as usize))
                    .unwrap();
                prop_assert_eq!(seq, committed + 1, "seqs must be dense");
                committed = seq;
            } else if committed > trimmed {
                // Trim through some already-committed point.
                let through = trimmed + 1 + u64::from(*arg) % (committed - trimmed);
                j.trim_through(through);
                trimmed = through;
            }
        }
        if torn_tail {
            // Crash point: the last entry tears mid-write. It must be
            // recovered as garbage and truncated, never replayed.
            reg.install(FaultSpec::new("jdev.write", FaultKind::Torn));
            j.submit(payload_for(committed + 1, 512), Box::new(|_| {})).unwrap();
            j.quiesce();
            prop_assert_eq!(j.stats().torn_writes, 1);
        }

        // Crash + recover onto a fresh device.
        let image = j.crash_image();
        drop(j);
        let j2 = Journal::recover(
            Arc::new(Nvram::new(NvramConfig::pmc_8g())),
            JournalConfig::default(),
            image,
        );

        let replayed = j2.replay();
        let expect: Vec<u64> = (trimmed + 1..=committed).collect();
        let got: Vec<u64> = replayed.iter().map(|e| e.seq).collect();
        prop_assert_eq!(&got, &expect, "replay must be the committed untrimmed prefix");
        for e in &replayed {
            prop_assert!(e.is_valid());
            prop_assert_eq!(&e.payload[..1], &payload_for(e.seq, 1)[..1]);
        }

        // Double replay = single replay.
        let again: Vec<u64> = j2.replay().iter().map(|e| e.seq).collect();
        prop_assert_eq!(&again, &expect, "second replay must be a no-op repeat");
    }

    /// Group commit is a pure batching optimization: a run of coalesced
    /// submits must replay to exactly the same `(seq, payload)` sequence
    /// as the same payloads written one record per op, and callbacks must
    /// fire in submission order either way.
    #[test]
    fn group_commit_replay_equals_per_op_replay(
        lens in proptest::collection::vec(1u16..2048, 3..32),
    ) {
        // Batched journal: stall record 1's flush barrier so the rest of
        // the run queues behind it and coalesces into multi-entry records.
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let reg = Arc::new(FaultRegistry::new());
        dev.faults().attach(Arc::clone(&reg), "jdev");
        let grouped = Journal::new(dev, JournalConfig::default());
        reg.install(
            FaultSpec::new("jdev.flush", FaultKind::Delay(Duration::from_millis(10))).times(1),
        );
        let acked = Arc::new(Mutex::new(Vec::new()));
        for (i, len) in lens.iter().enumerate() {
            let a = Arc::clone(&acked);
            grouped
                .submit(
                    payload_for(i as u64 + 1, *len as usize),
                    Box::new(move |s| a.lock().push(s)),
                )
                .unwrap();
            if i == 0 {
                // Record 1 is in flight before anything else is queued, so
                // entries 2.. coalesce deterministically behind its slow
                // barrier.
                while grouped.stats().batches < 1 {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        while acked.lock().len() < lens.len() {
            std::thread::sleep(Duration::from_micros(100));
        }
        let gs = grouped.stats();
        prop_assert!(
            gs.batches < gs.submits,
            "no coalescing: {} records for {} submits", gs.batches, gs.submits
        );
        prop_assert_eq!(gs.flushes, gs.batches, "one barrier per record");
        let order = acked.lock().clone();
        let expect_order: Vec<u64> = (1..=lens.len() as u64).collect();
        prop_assert_eq!(&order, &expect_order, "callbacks left submission order");

        // Per-op reference: identical payloads, one record + flush each.
        let solo = Journal::new(
            Arc::new(Nvram::new(NvramConfig::pmc_8g())),
            JournalConfig { batch_max_ops: 1, ..JournalConfig::default() },
        );
        for (i, len) in lens.iter().enumerate() {
            solo.submit_and_wait(payload_for(i as u64 + 1, *len as usize)).unwrap();
        }
        prop_assert_eq!(solo.stats().batches, lens.len() as u64);

        // Crash both; the recovered logs must replay identically.
        let (gi, si) = (grouped.crash_image(), solo.crash_image());
        drop(grouped);
        drop(solo);
        let g2 = Journal::recover(
            Arc::new(Nvram::new(NvramConfig::pmc_8g())),
            JournalConfig::default(),
            gi,
        );
        let s2 = Journal::recover(
            Arc::new(Nvram::new(NvramConfig::pmc_8g())),
            JournalConfig::default(),
            si,
        );
        let gr: Vec<(u64, Bytes)> = g2.replay().iter().map(|e| (e.seq, e.payload.clone())).collect();
        let sr: Vec<(u64, Bytes)> = s2.replay().iter().map(|e| (e.seq, e.payload.clone())).collect();
        prop_assert_eq!(&gr, &sr, "group-commit replay diverges from per-op replay");
        // Double replay is a no-op repeat on both.
        prop_assert_eq!(g2.replay().len(), gr.len());
        prop_assert_eq!(s2.replay().len(), sr.len());
    }
}

/// Crash point inside a multi-entry batch flush: the record tears at its
/// tail. Entries before the tail reached media whole and are committed;
/// only the tail is poisoned, dropped from acks, and truncated on replay.
#[test]
fn torn_batch_tail_poisons_only_the_tail() {
    let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
    let reg = Arc::new(FaultRegistry::new());
    dev.faults().attach(Arc::clone(&reg), "jdev");
    let j = Journal::new(dev, JournalConfig::default());

    // Hold the committer inside record 1's flush so entries 2..=5
    // coalesce into one multi-entry record behind it.
    reg.install(FaultSpec::new("jdev.flush", FaultKind::Delay(Duration::from_millis(25))).times(1));
    let acked = Arc::new(Mutex::new(Vec::new()));
    let a = Arc::clone(&acked);
    j.submit(payload_for(1, 256), Box::new(move |s| a.lock().push(s)))
        .unwrap();
    while j.stats().batches < 1 {
        std::thread::sleep(Duration::from_micros(100));
    }
    // Record 2 (entries 2..=5) tears at its tail mid-write.
    reg.install(FaultSpec::new("jdev.write", FaultKind::Torn).times(1));
    for s in 2..=5u64 {
        let a = Arc::clone(&acked);
        j.submit(payload_for(s, 256), Box::new(move |q| a.lock().push(q)))
            .unwrap();
    }
    j.quiesce();
    while acked.lock().len() < 4 {
        std::thread::sleep(Duration::from_micros(100));
    }

    let st = j.stats();
    assert_eq!(st.torn_writes, 1);
    assert_eq!(st.batches, 2, "entries 2..=5 must share one record");
    assert_eq!(st.flushes, 1, "a torn record must never be flushed");
    // Entries 2..=4 of the torn record are durable and acked in order;
    // only the tail (5) is dropped.
    assert_eq!(acked.lock().clone(), vec![1, 2, 3, 4]);

    // Crash: replay truncates exactly at the torn tail, idempotently.
    let image = j.crash_image();
    assert_eq!(image.len(), 5, "the torn tail is on media, as garbage");
    drop(j);
    let j2 = Journal::recover(
        Arc::new(Nvram::new(NvramConfig::pmc_8g())),
        JournalConfig::default(),
        image,
    );
    let seqs: Vec<u64> = j2.replay().iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![1, 2, 3, 4]);
    assert_eq!(j2.stats().replay_truncated, 1);
    assert_eq!(
        j2.replay().len(),
        4,
        "double replay must repeat the same prefix"
    );
}
