//! PG pending-queue contention tests (lockdep active in debug builds).
//!
//! The pending queue (§3.1) hands drain responsibility to whichever
//! thread holds the PG lock, so the failure mode to guard against is a
//! *stranded* work item: queued after the holder's last drain check but
//! never picked up. These tests hammer a single PG from many threads —
//! with concurrent quiesce/shutdown traffic at the cluster level — and
//! assert that every submitted completion ran and every thread joins
//! cleanly. Lockdep wrappers are live throughout, so any lock-order
//! regression on this path fails these tests too.

use afc_common::{FaultKind, FaultPlan, FaultSpec, PgId, PoolId};
use afc_core::osd::pg::Pg;
use afc_core::{Cluster, DeviceProfile, OsdTuning};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

#[test]
fn pending_queue_loses_no_completions_under_contention() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 500;
    let pg = Pg::new(PgId {
        pool: PoolId(0),
        seq: 7,
    });
    let completions = Arc::new(AtomicUsize::new(0));
    let stop_quiescer = Arc::new(AtomicBool::new(false));

    // A quiescer thread concurrently drains the FIFO the way
    // `Osd::quiesce` would — it must coexist with the submitters without
    // double-running or stranding work.
    let quiescer = {
        let pg = Arc::clone(&pg);
        let stop = Arc::clone(&stop_quiescer);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                pg.drain(true);
                thread::yield_now();
            }
        })
    };

    let barrier = Arc::new(Barrier::new(THREADS));
    let submitters: Vec<_> = (0..THREADS)
        .map(|t| {
            let pg = Arc::clone(&pg);
            let completions = Arc::clone(&completions);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    let c = Arc::clone(&completions);
                    // Alternate the community (blocking) and pending-queue
                    // (try-lock) paths: both drain one FIFO and the
                    // hand-off between them is where items could strand.
                    let blocking = (t + i) % 2 == 0;
                    pg.submit(
                        Box::new(move |st| {
                            st.next_pg_seq += 1;
                            c.fetch_add(1, Ordering::Relaxed);
                        }),
                        blocking,
                    );
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter must join cleanly");
    }

    // Non-blocking submissions may have deferred work to a holder that
    // has since released; a final blocking drain must leave nothing.
    let deadline = Instant::now() + Duration::from_secs(5);
    while completions.load(Ordering::Relaxed) < THREADS * OPS_PER_THREAD {
        pg.drain(true);
        assert!(
            Instant::now() < deadline,
            "work stranded in the pending queue"
        );
        thread::sleep(Duration::from_millis(1));
    }
    stop_quiescer.store(true, Ordering::Relaxed);
    quiescer.join().expect("quiescer must join cleanly");

    assert_eq!(
        completions.load(Ordering::Relaxed),
        THREADS * OPS_PER_THREAD
    );
    assert_eq!(pg.processed(), (THREADS * OPS_PER_THREAD) as u64);
    assert_eq!(pg.pending_len(), 0);
}

#[test]
fn cluster_survives_concurrent_writers_and_quiesce() {
    const WRITERS: usize = 4;
    const OBJECTS_PER_WRITER: usize = 25;
    let cluster = Arc::new(
        Cluster::builder()
            .nodes(2)
            .osds_per_node(2)
            .replication(2)
            .pg_num(16)
            .tuning(OsdTuning::afceph())
            .devices(DeviceProfile::clean())
            .build()
            .unwrap(),
    );
    let client = cluster.client().unwrap();

    // Quiesce concurrently with the write storm: quiesce takes the
    // journal and filestore idle paths while writers hold PG locks, so
    // this cross-checks the declared hierarchy under real traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let quiescer = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cluster.quiesce();
                thread::yield_now();
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let client = Arc::clone(&client);
            thread::spawn(move || {
                for i in 0..OBJECTS_PER_WRITER {
                    let name = format!("contend-{w}-{i}");
                    client.write_object(&name, 0, name.as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for h in writers {
        h.join().expect("writer must join cleanly");
    }
    stop.store(true, Ordering::Relaxed);
    quiescer.join().expect("quiescer must join cleanly");
    cluster.quiesce();

    // No lost completions: every write that returned Ok is readable.
    for w in 0..WRITERS {
        for i in 0..OBJECTS_PER_WRITER {
            let name = format!("contend-{w}-{i}");
            assert_eq!(
                client.read_object(&name, 0, name.len() as u32).unwrap(),
                name.as_bytes(),
                "lost completion for {name}"
            );
        }
    }

    // Shutdown must be idempotent and race-safe: two concurrent calls
    // plus a third after the fact, all returning with threads joined.
    let c1 = Arc::clone(&cluster);
    let c2 = Arc::clone(&cluster);
    let s1 = thread::spawn(move || c1.shutdown());
    let s2 = thread::spawn(move || c2.shutdown());
    s1.join().expect("first shutdown must join cleanly");
    s2.join().expect("second shutdown must join cleanly");
    cluster.shutdown();
}

#[test]
fn shutdown_drains_inflight_faulted_ops_without_hanging() {
    // Every replica ack is dropped and resends never exhaust, so the
    // write below is permanently stranded waiting on its RepAck.
    // Shutdown must fail it out of `rep_waits` and join all workers —
    // the pre-fix behaviour was a quiesce/join hang on the stuck op.
    let cluster = Arc::new(
        Cluster::builder()
            .nodes(2)
            .osds_per_node(1)
            .replication(2)
            .pg_num(8)
            .tuning(OsdTuning {
                rep_resend_after_ms: 20,
                rep_max_resends: u32::MAX,
                ..OsdTuning::afceph()
            })
            .devices(DeviceProfile::clean())
            .faults(FaultPlan::new(0xDEAD))
            .build()
            .unwrap(),
    );
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    client.write_object("pre_fault", 0, b"fine").unwrap();
    reg.install(FaultSpec::new("net.repack", FaultKind::Drop).forever());
    let stuck = client
        .write_object_async("stranded", 0, Bytes::from_static(b"never acked"))
        .unwrap();
    // Let the op reach the primary and start burning resend attempts.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resends: u64 = cluster.osd_stats().iter().map(|(_, s)| s.rep_resends).sum();
        if resends >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "resend machinery never engaged");
        thread::sleep(Duration::from_millis(5));
    }
    assert!(
        stuck.try_wait().is_none(),
        "stranded op acked unexpectedly?"
    );

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let c = Arc::clone(&cluster);
    thread::spawn(move || {
        c.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown hung on an in-flight faulted op");
}
