//! Cluster-level metric snapshot: after real client IO the registry must
//! expose the full taxonomy — per-stage write-path histograms, device and
//! journal counters — agree with the legacy stats adapters, and round-trip
//! through the Prometheus text format.

use afc_core::{Cluster, DeviceProfile, OsdTuning};

const NODES: u32 = 2;
const OSDS_PER_NODE: u32 = 2;
const WRITES: u64 = 400;

fn run_cluster() -> Cluster {
    let cluster = Cluster::builder()
        .nodes(NODES)
        .osds_per_node(OSDS_PER_NODE)
        .replication(2)
        .pg_num(64)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()
        .unwrap();
    let client = cluster.client().unwrap();
    let buf = vec![0x42u8; 4096];
    for i in 0..WRITES {
        client
            .write_object(&format!("obj{}", i % 16), (i / 16) * 4096, &buf)
            .unwrap();
    }
    cluster.quiesce();
    cluster
}

#[test]
fn snapshot_covers_the_write_path() {
    let cluster = run_cluster();
    let snap = cluster.metrics_snapshot();

    // Every write-path stage named by the paper's Figure 3 breakdown has a
    // live histogram on at least every primary OSD.
    for stage in [
        "messenger",
        "pg_queue",
        "submit",
        "journal",
        "apply",
        "ack",
        "total",
    ] {
        let recorded: u64 = (0..NODES * OSDS_PER_NODE)
            .filter_map(|osd| snap.histogram(&format!("osd{osd}.stage.{stage}")))
            .map(|h| h.count)
            .sum();
        assert!(recorded > 0, "no samples recorded for stage {stage}");
    }

    // Client ops land in the OSD op counters...
    let client_writes: u64 = (0..NODES * OSDS_PER_NODE)
        .filter_map(|osd| snap.counter(&format!("osd{osd}.op.writes")))
        .sum();
    assert_eq!(client_writes, WRITES);

    // ...journal rings committed them (primary + replica)...
    let commits: u64 = (0..NODES)
        .filter_map(|n| snap.counter(&format!("node{n}.journal.commits")))
        .sum();
    assert!(commits >= WRITES, "commits {commits} < writes {WRITES}");

    // ...and both journal devices and data SSDs saw bytes.
    for n in 0..NODES {
        assert!(
            snap.counter(&format!("node{n}.journal.dev.bytes_written"))
                .unwrap()
                > 0
        );
    }
    for osd in 0..NODES * OSDS_PER_NODE {
        assert!(
            snap.counter(&format!("osd{osd}.data.bytes_written"))
                .unwrap()
                > 0
        );
    }

    cluster.shutdown();
}

#[test]
fn snapshot_agrees_with_legacy_stats_adapters() {
    let cluster = run_cluster();
    let snap = cluster.metrics_snapshot();
    let stats = cluster.osd_stats();

    // The metric registry reads the same cells the legacy per-OSD stats
    // snapshots read, so the aggregates must match exactly.
    let legacy_commits: u64 = stats.iter().map(|(_, s)| s.journal.commits).sum();
    let metric_commits: u64 = (0..NODES)
        .filter_map(|n| snap.counter(&format!("node{n}.journal.commits")))
        .sum();
    assert_eq!(metric_commits, legacy_commits);

    let legacy_txns: u64 = stats.iter().map(|(_, s)| s.filestore.txns_applied).sum();
    let metric_txns: u64 = (0..NODES * OSDS_PER_NODE)
        .filter_map(|osd| snap.counter(&format!("osd{osd}.fs.txns_applied")))
        .sum();
    assert_eq!(metric_txns, legacy_txns);

    cluster.shutdown();
}

#[test]
fn cluster_snapshot_roundtrips_through_prometheus() {
    let cluster = run_cluster();
    let snap = cluster.metrics_snapshot();
    cluster.shutdown();

    assert!(
        snap.len() > 50,
        "expected a rich snapshot, got {}",
        snap.len()
    );
    let text = snap.to_prometheus();
    let parsed = afc_common::MetricsSnapshot::from_prometheus(&text).unwrap();
    assert_eq!(parsed, snap);
}
