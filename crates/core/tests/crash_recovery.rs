//! Crash-recovery harness: deterministic fault injection at three named
//! crash points, each followed by `Osd::simulate_crash` + journal replay
//! and a read-back consistency check.
//!
//! Crash points (see DESIGN.md "Fault model & recovery"):
//! - **A. journal pre-commit**: the journal device tears the entry write.
//!   The op is never acked, and replay truncates the torn tail — the
//!   object must not exist after recovery.
//! - **B. post-commit / pre-apply**: the filestore rejects every apply.
//!   The op *was* acked off the journal commit, so after crash + replay
//!   the data must be readable.
//! - **C. mid-apply**: the filestore fails between ops of a transaction,
//!   leaving partial state. Replay re-applies the whole transaction.
//!
//! Every scenario ends by replaying a second time and asserting a no-op
//! (replay idempotence), and scenario C runs twice from the same seed to
//! pin determinism.

use afc_common::{FaultKind, FaultPlan, FaultSpec};
use afc_core::{Cluster, DeviceProfile, OsdTuning};
use bytes::Bytes;
use std::time::{Duration, Instant};

/// Single OSD, no replication: crash points are local to the one journal
/// + filestore pair, so read-back verdicts are unambiguous.
fn one_osd_cluster(seed: u64) -> Cluster {
    Cluster::builder()
        .nodes(1)
        .osds_per_node(1)
        .replication(1)
        .pg_num(8)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .faults(FaultPlan::new(seed))
        .build()
        .unwrap()
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn crash_point_a_torn_journal_tail_never_surfaces() {
    let cluster = one_osd_cluster(0xA11);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    for i in 0..4 {
        client
            .write_object(&format!("base{i}"), 0, b"stable")
            .unwrap();
    }
    cluster.quiesce();

    // Tear the next journal entry write on the node's NVRAM card.
    reg.install(FaultSpec::new("node0.journal.write", FaultKind::Torn));
    let osd = &cluster.osds()[0];
    let handle = client
        .write_object_async("torn_obj", 0, Bytes::from_static(b"never"))
        .unwrap();
    wait_until("torn journal write", || {
        osd.journal().stats().torn_writes >= 1
    });
    assert!(
        handle.try_wait().is_none(),
        "a torn journal write must never be acked to the client"
    );
    reg.clear();

    osd.simulate_crash().unwrap();
    osd.replay_journal().unwrap();

    // The torn entry was truncated, not replayed as garbage.
    assert!(
        client.read_object("torn_obj", 0, 5).is_err(),
        "torn-tail object must not exist after recovery"
    );
    for i in 0..4 {
        assert_eq!(
            client.read_object(&format!("base{i}"), 0, 6).unwrap(),
            b"stable",
            "committed prefix lost in recovery"
        );
    }
    assert_eq!(
        osd.replay_journal().unwrap(),
        0,
        "replay must be idempotent"
    );
    cluster.shutdown();
}

#[test]
fn crash_point_b_acked_write_survives_apply_failure() {
    let cluster = one_osd_cluster(0xB22);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();
    let osd = &cluster.osds()[0];

    // Every apply fails, but journal commits still ack the client.
    reg.install(FaultSpec::new("osd0.fs.apply", FaultKind::Error).forever());
    client.write_object("obj_b", 0, b"acked-data").unwrap();
    wait_until("apply failure", || osd.stats().apply_failures >= 1);
    reg.clear();

    osd.simulate_crash().unwrap();
    let replayed = osd.replay_journal().unwrap();
    assert!(
        replayed >= 1,
        "journal entry for the acked write must replay"
    );
    assert_eq!(
        client.read_object("obj_b", 0, 10).unwrap(),
        b"acked-data",
        "acked write lost across crash"
    );
    assert_eq!(
        osd.replay_journal().unwrap(),
        0,
        "replay must be idempotent"
    );
    cluster.shutdown();
}

/// Run crash point C once; return (replay count, recovered bytes, hits).
fn run_crash_point_c(seed: u64) -> (usize, Vec<u8>, u64) {
    let cluster = one_osd_cluster(seed);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();
    let osd = &cluster.osds()[0];

    reg.install(FaultSpec::new("osd0.fs.mid_apply", FaultKind::Error).times(1));
    client
        .write_object("obj_c", 0, b"partially-applied")
        .unwrap();
    wait_until("mid-apply failure", || osd.stats().apply_failures >= 1);
    reg.clear();

    osd.simulate_crash().unwrap();
    let replayed = osd.replay_journal().unwrap();
    assert!(replayed >= 1);
    let data = client.read_object("obj_c", 0, 17).unwrap();
    assert_eq!(
        osd.replay_journal().unwrap(),
        0,
        "replay must be idempotent"
    );
    let hits = reg.total_hits();
    cluster.shutdown();
    (replayed, data, hits)
}

#[test]
fn crash_point_c_mid_apply_recovers_and_is_deterministic() {
    let first = run_crash_point_c(0xC33);
    assert_eq!(first.1, b"partially-applied");
    // Same seed, same schedule, same outcome: the harness is reproducible.
    let second = run_crash_point_c(0xC33);
    assert_eq!(first, second, "same seed must give identical recovery");
}
