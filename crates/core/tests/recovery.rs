//! Self-healing loop, end to end: heartbeat failure detection, epoch-driven
//! peering, degraded writes, recovery pushes, mark-out backfill.
//!
//! Every test pins its fault-plan seed, so failures replay exactly. The
//! invariant under test throughout: **no acked write is ever lost** — not
//! during degraded operation, not across recovery, not across primary
//! handoffs.

use afc_common::{FaultKind, FaultPlan, FaultSpec, OsdId, PgId};
use afc_core::{Cluster, DeviceProfile, FailureConfig, OsdTuning, RadosClient};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggressive timers so detection + recovery converge in test time.
fn hb_tuning() -> OsdTuning {
    OsdTuning {
        rep_resend_after_ms: 20,
        rep_max_resends: 2,
        heartbeat_grace_ms: 40,
        ..OsdTuning::afceph().with_heartbeats(5)
    }
}

fn hb_cluster(seed: u64) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(16)
        .tuning(hb_tuning())
        .devices(DeviceProfile::clean())
        .faults(FaultPlan::new(seed))
        .seed(seed)
        .build()
        .unwrap()
}

/// A client that abandons attempts quickly (ops to a dead OSD would
/// otherwise wait forever) and retries generously.
fn impatient_client(c: &Cluster) -> Arc<RadosClient> {
    let client = c.client().unwrap();
    client.set_op_timeout(Duration::from_millis(400));
    client.set_max_retries(24);
    client
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cond(), "timed out waiting for: {what}");
}

/// Cluster-wide convergence: every PG health gauge back to zero and no
/// lingering `pg_temp` override.
fn wait_converged(c: &Cluster) {
    wait_until("cluster convergence", Duration::from_secs(20), || {
        let snap = c.metrics_snapshot();
        let busy: i64 = c
            .osds()
            .iter()
            .map(|o| {
                let n = o.id().0;
                snap.gauge(&format!("osd{n}.recovery.pgs_degraded"))
                    .unwrap_or(0)
                    + snap
                        .gauge(&format!("osd{n}.recovery.pgs_recovering"))
                        .unwrap_or(0)
                    + snap
                        .gauge(&format!("osd{n}.peering.pgs_peering"))
                        .unwrap_or(0)
            })
            .sum();
        let map = c.monitor().map();
        let temps = (0..16).any(|seq| {
            map.pg_temp(PgId {
                pool: c.pool(),
                seq,
            })
            .is_some()
        });
        busy == 0 && !temps
    });
}

fn counter_sum(c: &Cluster, suffix: &str) -> u64 {
    let snap = c.metrics_snapshot();
    c.osds()
        .iter()
        .map(|o| {
            snap.counter(&format!("osd{}.{suffix}", o.id().0))
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn kill_one_osd_mid_workload_loses_no_acked_writes() {
    let c = hb_cluster(0x71);
    let client = impatient_client(&c);

    for i in 0..24 {
        client.write_object(&format!("pre{i}"), 0, b"v1").unwrap();
    }
    // Kill the primary of pre0 (a pause models a crashed process: it stops
    // answering anything, including heartbeats).
    let obj = afc_common::ObjectId::new(c.pool(), "pre0");
    let (_, acting) = c.monitor().map().object_placement(&obj).unwrap();
    let victim = acting[0];
    c.osd(victim).unwrap().pause();

    // Writes issued across the detection window must all eventually ack
    // (client retries bridge the gap) — these are the acked writes whose
    // survival the rest of the test audits.
    for i in 0..24 {
        client.write_object(&format!("mid{i}"), 0, b"v2").unwrap();
    }
    wait_until("victim marked down", Duration::from_secs(10), || {
        !c.monitor().map().osd_status(victim).up
    });
    for i in 0..24 {
        client.write_object(&format!("post{i}"), 0, b"v3").unwrap();
    }

    // Degraded mode: everything acked is readable with one replica down.
    for i in 0..24 {
        assert_eq!(client.read_object(&format!("pre{i}"), 0, 2).unwrap(), b"v1");
        assert_eq!(client.read_object(&format!("mid{i}"), 0, 2).unwrap(), b"v2");
        assert_eq!(
            client.read_object(&format!("post{i}"), 0, 2).unwrap(),
            b"v3"
        );
    }
    assert!(
        counter_sum(&c, "hb.reports") >= 1,
        "nobody reported the dead OSD"
    );
    assert!(
        counter_sum(&c, "peering.rounds") >= 1,
        "no peering round ran"
    );

    // Revive: the OSD reasserts liveness, peers, and is backfilled with
    // everything it missed; the pg_temp handoff returns primaryship.
    c.osd(victim).unwrap().resume();
    wait_until("victim marked up", Duration::from_secs(10), || {
        c.monitor().map().osd_status(victim).up
    });
    wait_converged(&c);

    assert!(
        counter_sum(&c, "recovery.pushes") >= 1,
        "recovery never pushed anything"
    );
    c.quiesce();
    let report = c.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    for i in 0..24 {
        assert_eq!(client.read_object(&format!("pre{i}"), 0, 2).unwrap(), b"v1");
        assert_eq!(client.read_object(&format!("mid{i}"), 0, 2).unwrap(), b"v2");
        assert_eq!(
            client.read_object(&format!("post{i}"), 0, 2).unwrap(),
            b"v3"
        );
    }
    c.shutdown();
}

#[test]
fn flapping_osd_converges_without_duplicate_applies() {
    let c = hb_cluster(0x72);
    let client = impatient_client(&c);

    for i in 0..16 {
        client
            .write_object(&format!("flap{i}"), 0, b"stable")
            .unwrap();
    }
    let victim = OsdId(1);

    // Cycle 1: down with writes in flight, then back.
    c.osd(victim).unwrap().pause();
    wait_until("victim down (1)", Duration::from_secs(10), || {
        !c.monitor().map().osd_status(victim).up
    });
    for i in 0..8 {
        client
            .write_object(&format!("during{i}"), 0, b"cycle1")
            .unwrap();
    }
    c.osd(victim).unwrap().resume();
    wait_until("victim up (1)", Duration::from_secs(10), || {
        c.monitor().map().osd_status(victim).up
    });
    wait_converged(&c);
    c.quiesce();

    // Cycle 2: an idle flap — nothing written while down, so convergence
    // must not replay or re-apply anything.
    let applies_before: u64 = c
        .osd_stats()
        .iter()
        .map(|(_, s)| s.filestore.txns_applied)
        .sum();
    c.osd(victim).unwrap().pause();
    wait_until("victim down (2)", Duration::from_secs(10), || {
        !c.monitor().map().osd_status(victim).up
    });
    c.osd(victim).unwrap().resume();
    wait_until("victim up (2)", Duration::from_secs(10), || {
        c.monitor().map().osd_status(victim).up
    });
    wait_converged(&c);
    c.quiesce();
    let applies_after: u64 = c
        .osd_stats()
        .iter()
        .map(|(_, s)| s.filestore.txns_applied)
        .sum();
    assert_eq!(
        applies_before, applies_after,
        "an idle flap must not re-apply anything"
    );

    let report = c.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    for i in 0..16 {
        assert_eq!(
            client.read_object(&format!("flap{i}"), 0, 6).unwrap(),
            b"stable"
        );
    }
    for i in 0..8 {
        assert_eq!(
            client.read_object(&format!("during{i}"), 0, 6).unwrap(),
            b"cycle1"
        );
    }
    c.shutdown();
}

#[test]
fn dropped_heartbeats_within_grace_cause_no_false_positive() {
    let c = hb_cluster(0x73);
    let reg = c.fault_registry().unwrap().clone();
    let client = impatient_client(&c);

    // Lose a handful of pings: well within the grace budget, so nobody
    // may be accused.
    reg.install(FaultSpec::new("net.heartbeat", FaultKind::Drop).times(3));
    client.write_object("hb", 0, b"steady").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert!(reg.hits("net.heartbeat") >= 3, "fault never fired");
    let map = c.monitor().map();
    for osd in c.osds() {
        assert!(
            map.osd_status(osd.id()).up,
            "{} was falsely marked down",
            osd.id()
        );
    }
    assert_eq!(client.read_object("hb", 0, 6).unwrap(), b"steady");
    c.shutdown();
}

#[test]
fn peering_completes_despite_dropped_info_messages() {
    let c = hb_cluster(0x74);
    let reg = c.fault_registry().unwrap().clone();
    let client = impatient_client(&c);

    for i in 0..12 {
        client
            .write_object(&format!("peer{i}"), 0, b"kept")
            .unwrap();
    }
    let victim = OsdId(2);
    c.osd(victim).unwrap().pause();
    wait_until("victim down", Duration::from_secs(10), || {
        !c.monitor().map().osd_status(victim).up
    });
    // The post-resume peering traffic loses messages; the per-tick
    // re-query must still drive every round to completion.
    reg.install(FaultSpec::new("net.peering", FaultKind::Drop).times(2));
    c.osd(victim).unwrap().resume();
    wait_until("victim up", Duration::from_secs(10), || {
        c.monitor().map().osd_status(victim).up
    });
    wait_converged(&c);
    assert!(reg.hits("net.peering") >= 1, "fault never fired");

    c.quiesce();
    let report = c.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    for i in 0..12 {
        assert_eq!(
            client.read_object(&format!("peer{i}"), 0, 4).unwrap(),
            b"kept"
        );
    }
    c.shutdown();
}

#[test]
fn dropped_recovery_push_is_requeued_with_fresh_data() {
    let c = hb_cluster(0x75);
    let reg = c.fault_registry().unwrap().clone();
    let client = impatient_client(&c);

    let victim = OsdId(3);
    c.osd(victim).unwrap().pause();
    wait_until("victim down", Duration::from_secs(10), || {
        !c.monitor().map().osd_status(victim).up
    });
    // Degraded writes accumulate in the survivors' peer_missing ledgers.
    for i in 0..12 {
        client
            .write_object(&format!("owed{i}"), 0, b"deferred")
            .unwrap();
    }
    // First recovery push is lost: the push-wait timer must requeue the
    // object and push fresh bytes (never a verbatim resend).
    reg.install(FaultSpec::new("net.push", FaultKind::Drop).times(1));
    c.osd(victim).unwrap().resume();
    wait_until("victim up", Duration::from_secs(10), || {
        c.monitor().map().osd_status(victim).up
    });
    wait_converged(&c);
    assert!(reg.hits("net.push") >= 1, "fault never fired");
    assert!(
        counter_sum(&c, "recovery.requeues") >= 1,
        "lost push was never requeued"
    );

    c.quiesce();
    let report = c.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    for i in 0..12 {
        assert_eq!(
            client.read_object(&format!("owed{i}"), 0, 8).unwrap(),
            b"deferred"
        );
    }
    c.shutdown();
}

#[test]
fn marked_out_osd_triggers_backfill_onto_replacement() {
    // 3 hosts × 1 OSD, size 2: each PG lives on 2 of the 3 OSDs, so when
    // one is marked out, CRUSH re-homes its PGs onto the third and
    // backfill must rebuild redundancy there.
    let c = Cluster::builder()
        .nodes(3)
        .osds_per_node(1)
        .replication(2)
        .pg_num(16)
        .tuning(hb_tuning())
        .devices(DeviceProfile::clean())
        .faults(FaultPlan::new(0x76))
        .seed(0x76)
        .failure_config(FailureConfig {
            min_reporters: 1,
            mark_out_after: Some(Duration::from_millis(150)),
        })
        .build()
        .unwrap();
    let client = impatient_client(&c);

    for i in 0..24 {
        client
            .write_object(&format!("bf{i}"), 0, b"replicate-me")
            .unwrap();
    }
    let victim = OsdId(0);
    c.osd(victim).unwrap().pause();
    wait_until("victim marked out", Duration::from_secs(10), || {
        let st = c.monitor().map().osd_status(victim);
        !st.up && !st.in_cluster
    });

    // Convergence here means: every PG re-peered onto the survivors and
    // backfill copied the out OSD's share onto its replacement.
    wait_until("post-out convergence", Duration::from_secs(20), || {
        let snap = c.metrics_snapshot();
        c.osds()
            .iter()
            .filter(|o| o.id() != victim)
            .map(|o| {
                let n = o.id().0;
                snap.gauge(&format!("osd{n}.recovery.pgs_degraded"))
                    .unwrap_or(0)
                    + snap
                        .gauge(&format!("osd{n}.recovery.pgs_recovering"))
                        .unwrap_or(0)
                    + snap
                        .gauge(&format!("osd{n}.peering.pgs_peering"))
                        .unwrap_or(0)
            })
            .sum::<i64>()
            == 0
    });
    assert!(
        counter_sum(&c, "recovery.pushes") >= 1,
        "backfill never pushed anything"
    );

    // Every object now has two live replicas among the survivors; the
    // paused OSD is gone from every acting set.
    c.quiesce();
    let map = c.monitor().map();
    for seq in 0..16 {
        let acting = map
            .pg_acting(PgId {
                pool: c.pool(),
                seq,
            })
            .unwrap();
        assert!(!acting.contains(&victim), "pg {seq} still names the victim");
        assert_eq!(acting.len(), 2, "pg {seq} redundancy not restored");
    }
    let report = c.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    for i in 0..24 {
        assert_eq!(
            client.read_object(&format!("bf{i}"), 0, 12).unwrap(),
            b"replicate-me"
        );
    }
    c.shutdown();
}

#[test]
fn stale_map_write_gets_typed_not_primary_reject() {
    // Heartbeats off: topology is frozen, so a deliberately misdirected op
    // exercises the typed reject without the healing loop interfering.
    let c = Cluster::builder()
        .nodes(2)
        .osds_per_node(1)
        .replication(2)
        .pg_num(8)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()
        .unwrap();
    let client = c.client().unwrap();
    client.write_object("routed", 0, b"ok").unwrap();

    // Force a remap: the old primary of this object must now reject with
    // NotPrimary, and the client's refresh/retry loop must land the op.
    let obj = afc_common::ObjectId::new(c.pool(), "routed");
    let (_, acting) = c.monitor().map().object_placement(&obj).unwrap();
    c.monitor().mark_down(acting[0]);
    client.write_object("routed", 0, b"v2").unwrap();
    assert_eq!(client.read_object("routed", 0, 2).unwrap(), b"v2");
    c.shutdown();
}
