//! End-to-end per-volume QoS: tagged client ops flow through the OSD-side
//! scheduler, the metric taxonomy appears in the cluster snapshot, ceilings
//! hold, and a reserved tenant keeps its latency under noisy neighbors.
//!
//! Wall-clock-dependent assertions here are deliberately generous (these
//! run in debug CI on a loaded box); the tight policy properties are
//! covered by the synthetic-clock unit tests in `afc_core::qos`.

use afc_core::{Cluster, DeviceProfile, OsdTuning, QosSpec, RbdImage};
use afc_workload::{JobSpec, Rw, Tenant};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE_SIZE: u64 = 8 * afc_common::MIB;

/// The latency-comparison test is meaningless while sibling tests hog the
/// box with their own clusters; every test here takes this lock so the
/// timing-sensitive ones always run against a quiet machine.
static SERIAL: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

fn qos_cluster() -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(32)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()
        .unwrap()
}

#[test]
fn tagged_ops_reach_the_scheduler_and_metrics() {
    let _serial = SERIAL.lock();
    let cluster = qos_cluster();
    let client = cluster.open_volume(QosSpec::new(500, 0, 0)).unwrap();
    assert_eq!(client.qos_tag().volume, afc_common::VolumeId(1));
    for i in 0..50 {
        client
            .write_object(&format!("o{}", i % 8), 0, b"payload")
            .unwrap();
    }
    cluster.quiesce();
    let snap = cluster.metrics_snapshot();
    let sum = |name: &str| -> u64 {
        (0..cluster.osds().len())
            .map(|n| snap.counter(&format!("osd{n}.qos.{name}")).unwrap_or(0))
            .sum()
    };
    // Every client op (primary side) was enqueued and billed to vol1.
    assert!(sum("enqueued") >= 50, "enqueued={}", sum("enqueued"));
    assert!(
        sum("vol1.enqueued") >= 50,
        "vol1.enqueued={}",
        sum("vol1.enqueued")
    );
    // A volume with a floor and no contention is served at reservation.
    assert!(sum("served_reservation") > 0);
    assert_eq!(
        sum("served_reservation") + sum("served_weight"),
        sum("enqueued"),
        "every enqueued op is dispatched by exactly one phase"
    );
    // The per-volume queue-wait histogram is live in the same snapshot.
    let hist_count: u64 = (0..cluster.osds().len())
        .filter_map(|n| snap.histogram(&format!("osd{n}.qos.vol1.queue_wait")))
        .map(|h| h.count)
        .sum();
    assert!(hist_count >= 50, "queue_wait count={hist_count}");
    cluster.shutdown();
}

#[test]
fn untagged_clients_bill_to_the_shared_volume() {
    let _serial = SERIAL.lock();
    let cluster = qos_cluster();
    let client = cluster.client().unwrap();
    for i in 0..20 {
        client.write_object(&format!("u{i}"), 0, b"x").unwrap();
    }
    cluster.quiesce();
    let snap = cluster.metrics_snapshot();
    let vol0: u64 = (0..cluster.osds().len())
        .map(|n| {
            snap.counter(&format!("osd{n}.qos.vol0.enqueued"))
                .unwrap_or(0)
        })
        .sum();
    assert!(vol0 >= 20, "vol0.enqueued={vol0}");
    cluster.shutdown();
}

#[test]
fn max_iops_ceiling_holds_end_to_end() {
    let _serial = SERIAL.lock();
    let cluster = qos_cluster();
    // 100 IOPS ceiling, burst 4: 60 writes need ≥ ~0.5 s of token refill.
    let client = cluster.open_volume(QosSpec::new(0, 100, 4)).unwrap();
    let start = Instant::now();
    for i in 0..60 {
        client
            .write_object("capped", (i as u64) * 4096, b"z")
            .unwrap();
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(300),
        "60 writes at 100 IOPS finished in {elapsed:?} — limit not enforced"
    );
    cluster.quiesce();
    let snap = cluster.metrics_snapshot();
    let limited: u64 = (0..cluster.osds().len())
        .map(|n| {
            snap.counter(&format!("osd{n}.qos.vol1.limited"))
                .unwrap_or(0)
        })
        .sum();
    assert!(limited > 0, "limit bucket never throttled");
    cluster.shutdown();
}

#[test]
fn reserved_tenant_keeps_latency_under_noisy_neighbors() {
    // Seed-pinned fairness check, the same shape as the qos bench but
    // smoke-sized. The protected tenant holds a floor; four untagged
    // neighbors flood the same cluster.
    let _serial = SERIAL.lock();
    let window = Duration::from_millis(400);
    let protected_job = || {
        JobSpec::new(Rw::RandWrite)
            .bs(4096)
            .iodepth(1)
            .runtime(window)
            .seed(0x0905)
            .label("protected")
    };

    // Solo reference.
    let solo = {
        let cluster = qos_cluster();
        let client = cluster.open_volume(QosSpec::new(800, 0, 0)).unwrap();
        let img = RbdImage::new(client, "prot", IMAGE_SIZE).unwrap();
        let r = afc_workload::run(&protected_job(), &img);
        cluster.shutdown();
        r
    };

    // Contended run.
    let cluster = qos_cluster();
    let prot_client = cluster.open_volume(QosSpec::new(800, 0, 0)).unwrap();
    let prot_img = Arc::new(RbdImage::new(prot_client, "prot", IMAGE_SIZE).unwrap());
    let noisy_imgs: Vec<Arc<RbdImage>> = (0..4)
        .map(|i| {
            Arc::new(
                cluster
                    .create_image(&format!("noisy{i}"), IMAGE_SIZE)
                    .unwrap(),
            )
        })
        .collect();
    let mut tenants = vec![Tenant::new(protected_job(), prot_img.as_ref())];
    for (i, img) in noisy_imgs.iter().enumerate() {
        tenants.push(Tenant::new(
            JobSpec::new(Rw::RandWrite)
                .bs(4096)
                .iodepth(4)
                .runtime(window)
                .seed(0xb05e ^ ((i as u64) << 8))
                .label(format!("noisy{i}")),
            img.as_ref(),
        ));
    }
    let reports = afc_workload::run_tenants(&tenants);
    let snap = cluster.metrics_snapshot();
    let reserved: u64 = (0..cluster.osds().len())
        .map(|n| {
            snap.counter(&format!("osd{n}.qos.served_reservation"))
                .unwrap_or(0)
        })
        .sum();
    cluster.shutdown();

    let protected = &reports[0];
    let noisy_ops: u64 = reports[1..].iter().map(|r| r.ops).sum();
    // The floor actually engaged…
    assert!(
        reserved > 0,
        "no reservation-phase dispatches under contention"
    );
    // …nobody starved…
    assert!(protected.ops > 0, "protected tenant did no work");
    assert!(noisy_ops > 0, "noisy tenants starved");
    // …and the protected p99 stays within a generous factor of solo.
    // The calibrated 2× claim is gated by the release-mode bench; debug CI
    // on this 1-core box runs 17 threads in the contended phase, so the
    // wall-clock ratio here only guards against order-of-magnitude blowups.
    let solo_p99 = solo.p99().max(Duration::from_micros(500));
    let factor = protected.p99().as_secs_f64() / solo_p99.as_secs_f64();
    eprintln!(
        "qos fairness: factor {factor:.2} (solo {:?} contended {:?})",
        solo.p99(),
        protected.p99()
    );
    assert!(
        factor <= 20.0,
        "protected p99 blew out under contention: solo {:?} vs contended {:?} ({factor:.1}×)",
        solo.p99(),
        protected.p99()
    );
}
