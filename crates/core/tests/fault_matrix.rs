//! Fault matrix: injected network and device faults must be absorbed by
//! the stack's recovery machinery (retransmit, dedup, bounded client
//! retries) — never surfacing as a hang, a panic, or silent corruption.

use afc_common::{AfcError, FaultKind, FaultPlan, FaultSpec};
use afc_core::{Cluster, DeviceProfile, OsdTuning};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

fn fast_resend_tuning() -> OsdTuning {
    OsdTuning {
        rep_resend_after_ms: 20,
        ..OsdTuning::afceph()
    }
}

fn replicated_cluster(seed: u64) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(1)
        .replication(2)
        .pg_num(8)
        .tuning(fast_resend_tuning())
        .devices(DeviceProfile::clean())
        .faults(FaultPlan::new(seed))
        .build()
        .unwrap()
}

#[test]
fn dropped_repack_recovered_by_primary_resend() {
    let cluster = replicated_cluster(0x01);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    // Lose the first replica ack: the primary must retransmit the
    // Replicate, the replica must re-ack from its dedup window, and the
    // client must see a plain success.
    reg.install(FaultSpec::new("net.repack", FaultKind::Drop).times(1));
    client.write_object("lost_ack", 0, b"payload").unwrap();

    let resends: u64 = cluster.osd_stats().iter().map(|(_, s)| s.rep_resends).sum();
    assert!(resends >= 1, "primary never retransmitted the sub-op");
    assert!(reg.hits("net.repack") >= 1, "fault never fired");

    cluster.quiesce();
    let report = cluster.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    assert_eq!(client.read_object("lost_ack", 0, 7).unwrap(), b"payload");
    cluster.shutdown();
}

#[test]
fn duplicated_replicate_and_delayed_ack_apply_once() {
    let cluster = replicated_cluster(0x02);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    reg.install(FaultSpec::new("net.replicate", FaultKind::Duplicate).times(1));
    reg.install(FaultSpec::new("net.repack", FaultKind::Delay(Duration::from_millis(30))).times(2));
    client.write_object("dup_rep", 0, b"exactly-once").unwrap();

    cluster.quiesce();
    // One client write ⇒ one primary apply + one replica apply, even
    // though the Replicate arrived twice.
    let txns: u64 = cluster
        .osd_stats()
        .iter()
        .map(|(_, s)| s.filestore.txns_applied)
        .sum();
    assert_eq!(txns, 2, "duplicate Replicate must not re-apply");
    let report = cluster.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    assert_eq!(
        client.read_object("dup_rep", 0, 12).unwrap(),
        b"exactly-once"
    );
    cluster.shutdown();
}

#[test]
fn permanent_device_error_surfaces_typed_after_bounded_retries() {
    let cluster = Cluster::builder()
        .nodes(1)
        .osds_per_node(1)
        .replication(1)
        .pg_num(8)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .faults(FaultPlan::new(0x03))
        .build()
        .unwrap();
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    client.write_object("durable", 0, b"good bytes").unwrap();
    cluster.quiesce();

    // Every data-device read now fails. The client retries its bounded
    // schedule and then returns the typed error — no panic, no hang.
    reg.install(FaultSpec::new("osd0.data.read", FaultKind::Error).forever());
    let err = client.read_object("durable", 0, 10).unwrap_err();
    assert!(
        matches!(err, AfcError::Io(_) | AfcError::Timeout(_)),
        "expected a typed I/O error, got {err:?}"
    );
    assert!(reg.hits("osd0.data.read") >= 1, "fault never fired");

    // Clearing the fault heals the path: same read now succeeds.
    reg.clear();
    assert_eq!(client.read_object("durable", 0, 10).unwrap(), b"good bytes");
    cluster.shutdown();
}

#[test]
fn delayed_replicate_holds_ack_until_replica_commits() {
    let cluster = replicated_cluster(0x04);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    reg.install(
        FaultSpec::new("net.replicate", FaultKind::Delay(Duration::from_millis(40))).times(1),
    );
    client.write_object("slow_rep", 0, b"delayed").unwrap();

    cluster.quiesce();
    let report = cluster.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    let _ = Arc::clone(cluster.network()); // fabric survives the episode
    assert_eq!(client.read_object("slow_rep", 0, 7).unwrap(), b"delayed");
    cluster.shutdown();
}

#[test]
fn write_path_device_error_does_not_wedge_the_osd() {
    let cluster = Cluster::builder()
        .nodes(1)
        .osds_per_node(1)
        .replication(1)
        .pg_num(8)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .faults(FaultPlan::new(0x05))
        .build()
        .unwrap();
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();
    let osd = &cluster.osds()[0];

    // Data-device writes fail during apply: the apply is accounted as a
    // failure, the journal keeps the entry, and later healthy traffic
    // still flows.
    reg.install(FaultSpec::new("osd0.data.write", FaultKind::Error).times(1));
    let _ = client.write_object("maybe_lost", 0, b"x");
    reg.clear();
    client.write_object("healthy", 0, b"still alive").unwrap();
    cluster.quiesce();
    assert_eq!(
        client.read_object("healthy", 0, 11).unwrap(),
        b"still alive"
    );
    // The faulted apply either failed (counted) or the fault fired on
    // another device op; either way nothing hung and stats are coherent.
    let stats = osd.stats();
    assert!(stats.writes >= 2);
    cluster.shutdown();
}

#[test]
fn journal_flush_backpressure_preserves_ack_order() {
    let cluster = replicated_cluster(0x07);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    // Stall several group-commit flush barriers on both nodes' journals
    // while a pipelined burst of overwrites is in flight. Acks back up
    // behind the slow records, batches grow, but commit callbacks still
    // fire in journal-sequence order — so per-PG write order must hold
    // and the final state must be the LAST issued write.
    reg.install(
        FaultSpec::new(
            "node0.journal.flush",
            FaultKind::Delay(Duration::from_millis(5)),
        )
        .times(4),
    );
    reg.install(
        FaultSpec::new(
            "node1.journal.flush",
            FaultKind::Delay(Duration::from_millis(5)),
        )
        .times(4),
    );
    let handles: Vec<_> = (0..24u8)
        .map(|v| {
            client
                .write_object_async("gc_order", 0, Bytes::from(vec![v; 512]))
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let hits = reg.hits("node0.journal.flush") + reg.hits("node1.journal.flush");
    assert!(hits >= 1, "flush fault never fired");

    cluster.quiesce();
    let report = cluster.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    assert_eq!(
        client.read_object("gc_order", 0, 512).unwrap(),
        vec![23u8; 512]
    );
    cluster.shutdown();
}

#[test]
fn delayed_request_and_reply_surface_as_latency_not_errors() {
    let cluster = replicated_cluster(0x06);
    let reg = cluster.fault_registry().unwrap().clone();
    let client = cluster.client().unwrap();

    // Stretch the client→OSD request and the OSD→client reply legs
    // (Delay, not Drop: `OpHandle::wait` has no client-side timeout, so a
    // dropped request would hang the test by design). The write must
    // still succeed, just slower.
    reg.install(
        FaultSpec::new("net.request", FaultKind::Delay(Duration::from_millis(25))).times(1),
    );
    reg.install(FaultSpec::new("net.reply", FaultKind::Delay(Duration::from_millis(25))).times(1));
    client
        .write_object("slow_legs", 0, b"late but intact")
        .unwrap();

    assert!(
        reg.hits("net.request") >= 1,
        "request-leg fault never fired"
    );
    assert!(reg.hits("net.reply") >= 1, "reply-leg fault never fired");

    cluster.quiesce();
    let report = cluster.deep_scrub().unwrap();
    assert!(report.is_clean(), "inconsistent: {:?}", report.inconsistent);
    assert_eq!(
        client.read_object("slow_legs", 0, 15).unwrap(),
        b"late but intact"
    );
    cluster.shutdown();
}
