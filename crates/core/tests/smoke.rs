//! End-to-end smoke tests for the cluster stack.

use afc_common::{BlockTarget, MIB};
use afc_core::{Cluster, DeviceProfile, OsdTuning};

fn small_cluster(tuning: OsdTuning) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(32)
        .tuning(tuning)
        .devices(DeviceProfile::clean())
        .build()
        .unwrap()
}

#[test]
fn community_write_read_roundtrip() {
    let cluster = small_cluster(OsdTuning::community());
    let client = cluster.client().unwrap();
    client.write_object("obj1", 0, b"hello community").unwrap();
    assert_eq!(
        client.read_object("obj1", 0, 15).unwrap(),
        b"hello community"
    );
    assert_eq!(client.stat_object("obj1").unwrap(), 15);
    cluster.shutdown();
}

#[test]
fn afceph_write_read_roundtrip() {
    let cluster = small_cluster(OsdTuning::afceph());
    let client = cluster.client().unwrap();
    client.write_object("obj1", 100, b"hello afceph").unwrap();
    assert_eq!(
        client.read_object("obj1", 100, 12).unwrap(),
        b"hello afceph"
    );
    client.delete_object("obj1").unwrap();
    assert!(client.read_object("obj1", 0, 1).is_err());
    cluster.shutdown();
}

#[test]
fn rbd_image_io() {
    let cluster = small_cluster(OsdTuning::afceph());
    let img = cluster.create_image("vm0", 64 * MIB).unwrap();
    let data = vec![0xabu8; 8192];
    img.write_at(4 * MIB - 4096, &data).unwrap(); // crosses object boundary
    assert_eq!(img.read_at(4 * MIB - 4096, 8192).unwrap(), data);
    cluster.shutdown();
}

#[test]
fn writes_are_replicated() {
    let cluster = small_cluster(OsdTuning::afceph());
    let client = cluster.client().unwrap();
    for i in 0..20 {
        client
            .write_object(&format!("o{i}"), 0, b"payload")
            .unwrap();
    }
    cluster.quiesce();
    // Each write lands on a primary and one replica: total filestore
    // transactions across OSDs ≈ 2 × ops.
    let total_txns: u64 = cluster
        .osd_stats()
        .iter()
        .map(|(_, s)| s.filestore.txns_applied)
        .sum();
    assert!(total_txns >= 40, "only {total_txns} transactions applied");
    cluster.shutdown();
}

#[test]
fn journal_trims_after_applies() {
    let cluster = small_cluster(OsdTuning::afceph());
    let client = cluster.client().unwrap();
    for i in 0..40 {
        client
            .write_object(&format!("t{i}"), 0, &[1u8; 4096])
            .unwrap();
    }
    cluster.quiesce();
    // Applies completed ⇒ trim watermark advanced ⇒ ring nearly empty.
    for osd in cluster.osds() {
        assert!(
            osd.journal().used_fraction() < 0.05,
            "{}: journal not trimmed ({:.3})",
            osd.id(),
            osd.journal().used_fraction()
        );
        let s = osd.journal().stats();
        assert!(
            s.trimmed_bytes > 0 || s.submits == 0,
            "{}: nothing trimmed",
            osd.id()
        );
    }
    cluster.shutdown();
}

#[test]
fn osd_stats_account_the_pipeline() {
    let cluster = small_cluster(OsdTuning::community());
    let client = cluster.client().unwrap();
    for i in 0..24 {
        client
            .write_object(&format!("s{i}"), 0, &[2u8; 2048])
            .unwrap();
        let _ = client.read_object(&format!("s{i}"), 0, 2048).unwrap();
    }
    cluster.quiesce();
    let stats = cluster.osd_stats();
    let sum = |f: &dyn Fn(&afc_core::OsdStats) -> u64| stats.iter().map(|(_, s)| f(s)).sum::<u64>();
    assert_eq!(sum(&|s| s.writes), 24);
    assert_eq!(sum(&|s| s.reads), 24);
    assert_eq!(sum(&|s| s.repops), 24, "each write replicates once at rf=2");
    assert_eq!(sum(&|s| s.repacks), 24);
    // Community blocking logging accounted real wait time.
    assert!(sum(&|s| s.log_submitted) > 0);
    assert!(
        sum(&|s| s.journal.commits) >= 48,
        "primary + replica journal commits"
    );
    assert!(sum(&|s| s.filestore.txns_applied) >= 48);
    assert!(sum(&|s| s.device.bytes_written) > 0);
    cluster.shutdown();
}

#[test]
fn stage_traces_collected_for_writes() {
    let cluster = small_cluster(OsdTuning::afceph());
    let client = cluster.client().unwrap();
    for i in 0..64 {
        client
            .write_object(&format!("tr{i}"), 0, &[3u8; 1024])
            .unwrap();
    }
    let samples: usize = cluster.osds().iter().map(|o| o.stage_samples().len()).sum();
    assert!(samples > 0, "sampled stage traces missing");
    let all: Vec<_> = cluster
        .osds()
        .iter()
        .flat_map(|o| o.stage_samples())
        .collect();
    let mean = afc_core::StageSample::mean(&all);
    assert!(mean.total > std::time::Duration::ZERO);
    assert!(
        mean.total >= mean.journal,
        "stage decomposition inconsistent"
    );
    cluster.shutdown();
}
