//! Per-optimization switches (the Figure 9 ablation axis).

use afc_logging::{Level, LogConfig, LogMode};

/// Throttle sizing profile (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleProfile {
    /// Community defaults, sized for HDDs (`filestore_queue_max_ops` = 50,
    /// `osd_client_message_cap` = 100).
    Hdd,
    /// Retuned for flash: the paper picked ~30K IOPS per block device; we
    /// scale the op caps to keep the filestore, not the throttle, as the
    /// limiter.
    Ssd,
}

/// Memory allocator behaviour (§3.2).
///
/// The paper replaced tcmalloc with jemalloc because small-random workloads
/// hammer the allocator. We model the difference as the number of real heap
/// allocations the op path performs per request (buffers Ceph would
/// allocate and free around each op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocator {
    /// tcmalloc-like: more allocator churn per op under small random I/O.
    TcMalloc,
    /// jemalloc-like: pooled, little per-op churn.
    JeMalloc,
}

impl Allocator {
    /// Number of transient heap allocations the op path performs.
    pub fn allocs_per_op(&self) -> usize {
        match self {
            Allocator::TcMalloc => 48,
            Allocator::JeMalloc => 4,
        }
    }
}

/// Debug-logging mode on the I/O path (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggingMode {
    /// No logging (Figure 4's "No log").
    Off,
    /// Community synchronous logging.
    Blocking,
    /// AFCeph asynchronous logging with the string cache.
    NonBlocking,
}

impl LoggingMode {
    /// Build the corresponding logger configuration.
    pub fn log_config(&self) -> LogConfig {
        match self {
            LoggingMode::Off => LogConfig::off(),
            LoggingMode::Blocking => LogConfig {
                max_level: Level::Trace,
                ..LogConfig::community()
            },
            LoggingMode::NonBlocking => LogConfig {
                max_level: Level::Trace,
                ..LogConfig::afceph()
            },
        }
    }

    /// The underlying logger mode.
    pub fn mode(&self) -> LogMode {
        match self {
            LoggingMode::Off => LogMode::Off,
            LoggingMode::Blocking => LogMode::Blocking,
            LoggingMode::NonBlocking => LogMode::NonBlocking,
        }
    }
}

/// The complete tuning vector for an OSD. Each field maps to one of the
/// paper's optimizations; [`OsdTuning::community`] and
/// [`OsdTuning::afceph`] are the two evaluated configurations, and the
/// `step_*` constructors reproduce Figure 9's cumulative steps.
#[derive(Debug, Clone)]
pub struct OsdTuning {
    /// §3.1: per-PG pending queue — op workers never block on a held PG
    /// lock; queued ops are drained in FIFO order by the lock holder.
    pub pending_queue: bool,
    /// §3.1: dedicated batching completion worker + per-op (OP) locks;
    /// journal/filestore completion handlers touch the PG lock only in
    /// batched, deferred work.
    pub dedicated_completion: bool,
    /// §3.1: replica acks are processed immediately on the messenger
    /// thread instead of being enqueued behind data ops in the PG queue.
    pub fast_ack: bool,
    /// §3.1 (last paragraph): re-sort client acks so each client observes
    /// them in issue order even though the completion worker batches.
    pub ordered_acks: bool,
    /// §3.2: throttle sizing.
    pub throttle: ThrottleProfile,
    /// §3.2: allocator behaviour.
    pub allocator: Allocator,
    /// §3.2: TCP Nagle on client/replication connections.
    pub nagle: bool,
    /// §3.3: logging mode.
    pub logging: LoggingMode,
    /// §3.4: light-weight transactions (dedup, batch KV, FD reuse, skip
    /// alloc hints on small writes, write-through metadata cache).
    pub lightweight_txn: bool,
    /// Op worker (OP_WQ) threads per OSD.
    pub op_threads: usize,
    /// Filestore apply threads per OSD.
    pub apply_threads: usize,
    /// Primary-side replication sub-op timeout, milliseconds: a `Replicate`
    /// without a matching `RepAck` for this long is retransmitted (lost-ack
    /// recovery). Generous next to healthy in-process RTTs so it never
    /// fires outside fault injection.
    pub rep_resend_after_ms: u64,
    /// Retransmits per sub-op before the primary gives up and fails the
    /// client op with a typed `Timeout`.
    pub rep_max_resends: u32,
    /// Heartbeat ping interval, milliseconds. `0` disables the whole
    /// failure-detection / peering / recovery loop (the default: fixed
    /// topologies — most tests and benches — pay nothing for it).
    pub heartbeat_interval_ms: u64,
    /// Silence tolerated from a peer before this OSD reports it down to
    /// the monitor (Ceph's `osd_heartbeat_grace`).
    pub heartbeat_grace_ms: u64,
    /// Max concurrent recovery pushes per PG — the throttle keeping
    /// backfill traffic from starving client I/O (Ceph's
    /// `osd_recovery_max_active`).
    pub recovery_max_inflight: usize,
    /// Group commit: max entries coalesced into one journal record.
    pub journal_batch_max_ops: usize,
    /// Group commit: max aligned bytes coalesced into one journal record.
    pub journal_batch_max_bytes: u64,
    /// Group commit: adaptive linger window, microseconds. A batch that
    /// already holds ≥2 entries waits up to this long to fill before the
    /// single flush; a lone entry never waits (no added latency at low
    /// queue depth). Zero disables lingering.
    pub journal_batch_max_wait_us: u64,
    /// Multi-stream write separation on the data SSDs: each write stream
    /// (KV WAL, KV compaction, metadata, hot/cold data) gets its own FTL
    /// allocation group, so short-lived pages never share erase blocks
    /// with cold data and GC copies less. Off = community mixed-stream
    /// placement.
    pub streams_enabled: bool,
    /// Per-volume QoS: dmClock-style reservation/limit scheduling of
    /// client ops at the OSD op queue (see `crate::qos`). Off = client
    /// ops dispatch in pure arrival order, tags ignored.
    pub qos_enabled: bool,
}

impl OsdTuning {
    /// Community Ceph 0.94 defaults.
    pub fn community() -> Self {
        OsdTuning {
            pending_queue: false,
            dedicated_completion: false,
            fast_ack: false,
            ordered_acks: false,
            throttle: ThrottleProfile::Hdd,
            allocator: Allocator::TcMalloc,
            nagle: true,
            logging: LoggingMode::Blocking,
            lightweight_txn: false,
            op_threads: 2,
            apply_threads: 2,
            rep_resend_after_ms: 150,
            rep_max_resends: 5,
            heartbeat_interval_ms: 0,
            heartbeat_grace_ms: 200,
            recovery_max_inflight: 16,
            journal_batch_max_ops: 64,
            journal_batch_max_bytes: 8 * 1024 * 1024,
            journal_batch_max_wait_us: 0,
            streams_enabled: false,
            qos_enabled: false,
        }
    }

    /// Fully optimized AFCeph.
    pub fn afceph() -> Self {
        OsdTuning {
            pending_queue: true,
            dedicated_completion: true,
            fast_ack: true,
            ordered_acks: false,
            throttle: ThrottleProfile::Ssd,
            allocator: Allocator::JeMalloc,
            nagle: false,
            logging: LoggingMode::NonBlocking,
            lightweight_txn: true,
            op_threads: 2,
            apply_threads: 2,
            rep_resend_after_ms: 150,
            rep_max_resends: 5,
            heartbeat_interval_ms: 0,
            heartbeat_grace_ms: 200,
            recovery_max_inflight: 16,
            journal_batch_max_ops: 64,
            journal_batch_max_bytes: 8 * 1024 * 1024,
            journal_batch_max_wait_us: 50,
            streams_enabled: true,
            qos_enabled: true,
        }
    }

    /// Enable the self-healing loop (heartbeats → peering → recovery)
    /// with the given ping interval.
    #[must_use]
    pub fn with_heartbeats(mut self, interval_ms: u64) -> Self {
        self.heartbeat_interval_ms = interval_ms;
        self
    }

    /// Figure 9 step 1: community + PG-lock minimization.
    pub fn step_lock_opt() -> Self {
        OsdTuning {
            pending_queue: true,
            dedicated_completion: true,
            fast_ack: true,
            ..Self::community()
        }
    }

    /// Figure 9 step 2: + throttle policy and system tuning.
    pub fn step_tuning() -> Self {
        OsdTuning {
            throttle: ThrottleProfile::Ssd,
            allocator: Allocator::JeMalloc,
            nagle: false,
            ..Self::step_lock_opt()
        }
    }

    /// Figure 9 step 3: + non-blocking logging.
    pub fn step_logging() -> Self {
        OsdTuning {
            logging: LoggingMode::NonBlocking,
            ..Self::step_tuning()
        }
    }

    /// Figure 9 step 4: + light-weight transactions (= AFCeph).
    pub fn step_lwt() -> Self {
        OsdTuning {
            lightweight_txn: true,
            ..Self::step_logging()
        }
    }

    /// `filestore_queue_max_ops` for the profile.
    pub fn filestore_queue_max_ops(&self) -> u64 {
        match self.throttle {
            ThrottleProfile::Hdd => 50,
            ThrottleProfile::Ssd => 5_000,
        }
    }

    /// `osd_client_message_cap` for the profile.
    pub fn client_message_cap(&self) -> u64 {
        match self.throttle {
            ThrottleProfile::Hdd => 100,
            ThrottleProfile::Ssd => 10_000,
        }
    }

    /// Human-readable label for tables.
    pub fn label(&self) -> &'static str {
        let all_opt = self.pending_queue
            && self.dedicated_completion
            && self.fast_ack
            && self.throttle == ThrottleProfile::Ssd
            && self.logging == LoggingMode::NonBlocking
            && self.lightweight_txn;
        let none_opt = !self.pending_queue
            && !self.dedicated_completion
            && !self.fast_ack
            && self.throttle == ThrottleProfile::Hdd
            && !self.lightweight_txn;
        if all_opt {
            "afceph"
        } else if none_opt {
            "community"
        } else {
            "custom"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_expected() {
        let c = OsdTuning::community();
        let a = OsdTuning::afceph();
        assert!(!c.pending_queue && a.pending_queue);
        assert!(c.nagle && !a.nagle);
        assert_eq!(c.logging, LoggingMode::Blocking);
        assert_eq!(a.logging, LoggingMode::NonBlocking);
        assert!(c.filestore_queue_max_ops() < a.filestore_queue_max_ops());
        assert!(c.client_message_cap() < a.client_message_cap());
        assert_eq!(c.label(), "community");
        assert_eq!(a.label(), "afceph");
        // The self-healing loop is opt-in; both profiles ship it disabled
        // and enabling it does not change the optimization label.
        assert_eq!(c.heartbeat_interval_ms, 0);
        assert_eq!(a.heartbeat_interval_ms, 0);
        assert_eq!(a.with_heartbeats(5).heartbeat_interval_ms, 5);
        assert_eq!(OsdTuning::afceph().with_heartbeats(5).label(), "afceph");
        // Group commit is tuned on in afceph, conservative in community.
        let (c, a) = (OsdTuning::community(), OsdTuning::afceph());
        assert_eq!(c.journal_batch_max_wait_us, 0);
        assert_eq!(a.journal_batch_max_wait_us, 50);
        assert!(a.journal_batch_max_ops >= 2 && a.journal_batch_max_bytes > 0);
        // Multi-stream separation ships on in afceph, off in community
        // (and does not affect the optimization label — it's a device
        // placement policy, not one of the Figure 9 steps).
        assert!(!c.streams_enabled && a.streams_enabled);
        // Per-volume QoS likewise: on in afceph, off in community, and
        // not part of the Figure 9 label.
        assert!(!c.qos_enabled && a.qos_enabled);
    }

    #[test]
    fn steps_are_cumulative() {
        let s1 = OsdTuning::step_lock_opt();
        assert!(s1.pending_queue && s1.nagle && s1.logging == LoggingMode::Blocking);
        let s2 = OsdTuning::step_tuning();
        assert!(s2.pending_queue && !s2.nagle && s2.throttle == ThrottleProfile::Ssd);
        let s3 = OsdTuning::step_logging();
        assert_eq!(s3.logging, LoggingMode::NonBlocking);
        assert!(!s3.lightweight_txn);
        let s4 = OsdTuning::step_lwt();
        assert!(s4.lightweight_txn);
        assert_eq!(s4.label(), "afceph");
        assert_eq!(s2.label(), "custom");
    }

    #[test]
    fn allocator_model() {
        assert!(Allocator::TcMalloc.allocs_per_op() > Allocator::JeMalloc.allocs_per_op());
    }

    #[test]
    fn logging_mode_maps() {
        assert_eq!(LoggingMode::Off.mode(), LogMode::Off);
        assert_eq!(LoggingMode::Blocking.mode(), LogMode::Blocking);
        assert_eq!(LoggingMode::NonBlocking.mode(), LogMode::NonBlocking);
    }
}
