//! The RADOS-style object client.
//!
//! Clients need no metadata server: the shared [`afc_crush::OsdMap`] plus CRUSH
//! determine each object's PG and primary OSD, requests go straight to the
//! primary, and misdirected ops (stale map during failures/expansion) are
//! retried after a map refresh.

use crate::messages::{ClientOp, ClientReply, ObjectOp, OpOutcome, OsdMsg};
use crate::monitor::SharedMap;
use crate::qos::{QosSpec, QosTag};
use afc_common::{AfcError, ClientId, ObjectId, OpId, PoolId, Result, VolumeId};
use afc_messenger::{Addr, Dispatcher, Messenger, Network};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

type ReplyTx = crossbeam::channel::Sender<Result<OpOutcome>>;

struct ClientShared {
    pending: Mutex<HashMap<OpId, ReplyTx>>,
}

struct ClientDispatcher(Arc<ClientShared>);

impl Dispatcher<OsdMsg> for ClientDispatcher {
    fn dispatch(&self, _from: Addr, msg: OsdMsg) {
        if let OsdMsg::Reply(ClientReply { op_id, result }) = msg {
            if let Some(tx) = self.0.pending.lock().remove(&op_id) {
                let _ = tx.send(result);
            }
        }
    }
}

/// A pending asynchronous operation.
pub struct OpHandle {
    rx: crossbeam::channel::Receiver<Result<OpOutcome>>,
    op_id: OpId,
}

impl OpHandle {
    /// Block until the op completes.
    pub fn wait(self) -> Result<OpOutcome> {
        self.rx
            .recv()
            .map_err(|_| AfcError::Disconnected("client shut down".into()))?
    }

    /// Block until the op completes or `timeout` elapses (typed
    /// `Timeout`; the caller should abandon the op via its op id).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<OpOutcome> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(AfcError::Timeout(format!(
                "op {} unanswered after {timeout:?}",
                self.op_id.0
            ))),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(AfcError::Disconnected("client shut down".into()))
            }
        }
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Result<OpOutcome>> {
        self.rx.try_recv().ok()
    }
}

/// A RADOS-style client session (one per VM in the evaluation).
pub struct RadosClient {
    id: ClientId,
    pool: PoolId,
    msgr: Messenger<OsdMsg>,
    map: SharedMap,
    shared: Arc<ClientShared>,
    next_op: AtomicU64,
    /// Request in-order ack delivery (exercises the §3.1 ordered-ack path).
    pub ordered_acks: bool,
    /// Retries for misdirected ops before giving up.
    max_retries: AtomicU64,
    /// Per-attempt reply timeout, milliseconds; `0` waits forever (the
    /// default — a healthy fixed topology never drops a request). Set it
    /// when OSDs can die mid-op so the attempt fails typed and the retry
    /// re-targets the refreshed map instead of hanging.
    op_timeout_ms: AtomicU64,
    /// QoS identity stamped on every submitted op. Defaults to
    /// [`QosTag::best_effort`]; [`RadosClient::open_volume`] replaces it.
    qos: Mutex<QosTag>,
}

impl RadosClient {
    /// Connect a client to the fabric.
    pub fn connect(
        net: &Arc<Network<OsdMsg>>,
        map: SharedMap,
        id: ClientId,
        pool: PoolId,
    ) -> Result<Arc<Self>> {
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
        });
        let msgr = net.register(
            Addr::Client(id),
            Arc::new(ClientDispatcher(Arc::clone(&shared))),
        )?;
        Ok(Arc::new(RadosClient {
            id,
            pool,
            msgr,
            map,
            shared,
            next_op: AtomicU64::new(1),
            ordered_acks: false,
            max_retries: AtomicU64::new(8),
            op_timeout_ms: AtomicU64::new(0),
            qos: Mutex::new(QosTag::best_effort()),
        }))
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The pool this client addresses.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// Cap each [`RadosClient::execute`] attempt at `timeout` before
    /// abandoning the request and retrying against a refreshed map.
    pub fn set_op_timeout(&self, timeout: Duration) {
        self.op_timeout_ms
            .store(timeout.as_millis() as u64, Ordering::Relaxed);
    }

    /// Change the bounded retry budget of [`RadosClient::execute`].
    pub fn set_max_retries(&self, n: usize) {
        self.max_retries.store(n as u64, Ordering::Relaxed);
    }

    /// Bind this session to `volume` under `spec`: every subsequent op is
    /// tagged with it and scheduled by the OSD-side per-volume QoS
    /// scheduler. Carrying the spec inline means there is no registration
    /// round-trip — the first tagged op teaches each OSD the contract,
    /// and re-opening with a new spec updates it in place.
    pub fn open_volume(&self, volume: VolumeId, spec: QosSpec) -> QosTag {
        let tag = QosTag::new(volume, spec);
        *self.qos.lock() = tag;
        tag
    }

    /// The QoS tag currently stamped on submitted ops.
    pub fn qos_tag(&self) -> QosTag {
        *self.qos.lock()
    }

    /// Submit an op asynchronously.
    pub fn submit(&self, object: &str, op: ObjectOp) -> Result<OpHandle> {
        let obj = ObjectId::new(self.pool, object);
        let map = self.map.read().clone();
        let (pg, acting) = map.object_placement(&obj)?;
        let primary = acting[0];
        let op_id = OpId(self.next_op.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.shared.pending.lock().insert(op_id, tx);
        let wire = op.wire_bytes();
        let req = OsdMsg::Request(ClientOp {
            client: self.id,
            op_id,
            pg,
            object: obj,
            op,
            ordered_ack: self.ordered_acks,
            epoch: map.epoch(),
            qos: self.qos_tag(),
        });
        if let Err(e) = self.msgr.send(Addr::Osd(primary), req, wire) {
            self.shared.pending.lock().remove(&op_id);
            return Err(e);
        }
        Ok(OpHandle { rx, op_id })
    }

    /// One attempt: wait (optionally bounded) and abandon the pending
    /// entry on timeout so a late reply cannot leak into a later attempt.
    fn wait_attempt(&self, handle: OpHandle) -> Result<OpOutcome> {
        let timeout_ms = self.op_timeout_ms.load(Ordering::Relaxed);
        if timeout_ms == 0 {
            return handle.wait();
        }
        let r = handle.wait_timeout(Duration::from_millis(timeout_ms));
        if matches!(r, Err(AfcError::Timeout(_))) {
            self.shared.pending.lock().remove(&handle.op_id);
        }
        r
    }

    /// Submit and wait, retrying transient failures with exponential
    /// backoff. Each `submit` re-reads the shared map, so stale-map
    /// rejects ([`AfcError::needs_map_refresh`]: `NotPrimary` from an OSD
    /// that lost primaryship, `WrongEpoch` from a PG still peering) are
    /// resubmitted against the refreshed epoch, re-targeting whatever
    /// primary it names now. [`AfcError::is_retryable`] transport/timeout
    /// errors (lost message, injected drop, replica-ack timeout, a dead
    /// primary when an op timeout is set) retry the same way. Permanent
    /// errors — `NotFound`, `Corruption`, a device `Io` surfaced through
    /// the OSD — propagate typed after the bounded retries; nothing
    /// panics.
    pub fn execute(&self, object: &str, op: ObjectOp) -> Result<OpOutcome> {
        let mut last = AfcError::Timeout("no attempt".into());
        let max_retries = self.max_retries.load(Ordering::Relaxed);
        for attempt in 0..max_retries {
            let attempt = (attempt as u32).min(6);
            let handle = match self.submit(object, op.clone()) {
                Ok(h) => h,
                Err(e) if e.is_retryable() => {
                    last = e;
                    std::thread::sleep(Duration::from_millis(1 << attempt));
                    continue;
                }
                Err(e) => return Err(e),
            };
            match self.wait_attempt(handle) {
                Ok(o) => return Ok(o),
                Err(e) if e.needs_map_refresh() => {
                    last = e;
                    // Map is shared; a short pause lets the monitor publish.
                    std::thread::sleep(Duration::from_millis(2 << attempt));
                }
                Err(e) if e.is_retryable() => {
                    last = e;
                    std::thread::sleep(Duration::from_millis(1 << attempt));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Write `data` into `object` at `offset`.
    pub fn write_object(&self, object: &str, offset: u64, data: &[u8]) -> Result<()> {
        match self.execute(
            object,
            ObjectOp::Write {
                offset,
                data: Bytes::copy_from_slice(data),
            },
        )? {
            OpOutcome::Done => Ok(()),
            other => Err(AfcError::Corruption(format!(
                "unexpected write outcome {other:?}"
            ))),
        }
    }

    /// Read `len` bytes from `object` at `offset`.
    pub fn read_object(&self, object: &str, offset: u64, len: u32) -> Result<Vec<u8>> {
        match self.execute(object, ObjectOp::Read { offset, len })? {
            OpOutcome::Data(d) => Ok(d.to_vec()),
            other => Err(AfcError::Corruption(format!(
                "unexpected read outcome {other:?}"
            ))),
        }
    }

    /// Object size.
    pub fn stat_object(&self, object: &str) -> Result<u64> {
        match self.execute(object, ObjectOp::Stat)? {
            OpOutcome::Size(s) => Ok(s),
            other => Err(AfcError::Corruption(format!(
                "unexpected stat outcome {other:?}"
            ))),
        }
    }

    /// Delete an object.
    pub fn delete_object(&self, object: &str) -> Result<()> {
        match self.execute(object, ObjectOp::Delete)? {
            OpOutcome::Done => Ok(()),
            other => Err(AfcError::Corruption(format!(
                "unexpected delete outcome {other:?}"
            ))),
        }
    }

    /// Asynchronous write (iodepth-style issue).
    pub fn write_object_async(&self, object: &str, offset: u64, data: Bytes) -> Result<OpHandle> {
        self.submit(object, ObjectOp::Write { offset, data })
    }

    /// Asynchronous read.
    pub fn read_object_async(&self, object: &str, offset: u64, len: u32) -> Result<OpHandle> {
        self.submit(object, ObjectOp::Read { offset, len })
    }
}
