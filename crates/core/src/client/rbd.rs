//! The RBD-style block image: a virtual disk striped over 4 MiB objects.
//!
//! KRBD in the paper's testbed exports each VM's 100 GB image as a block
//! device; every block I/O maps to object I/O named
//! `rbd_data.<image>.<object-index>`. [`RbdImage`] implements
//! [`BlockTarget`] so the FIO-like workload generator can drive it
//! directly.

use crate::client::rados::RadosClient;
use afc_common::blocktarget::check_range;
use afc_common::{AfcError, BlockTarget, Result, MIB};
use bytes::Bytes;
use std::sync::Arc;

/// Default RBD object size (4 MiB, Ceph's default).
pub const DEFAULT_OBJECT_SIZE: u64 = 4 * MIB;

/// A block image striped into fixed-size objects.
pub struct RbdImage {
    client: Arc<RadosClient>,
    name: String,
    size: u64,
    object_size: u64,
}

impl RbdImage {
    /// Create an image handle (object namespace `rbd_data.<name>.*`).
    pub fn new(client: Arc<RadosClient>, name: impl Into<String>, size: u64) -> Result<Self> {
        Self::with_object_size(client, name, size, DEFAULT_OBJECT_SIZE)
    }

    /// Create an image with a custom object size (power of two expected).
    pub fn with_object_size(
        client: Arc<RadosClient>,
        name: impl Into<String>,
        size: u64,
        object_size: u64,
    ) -> Result<Self> {
        if size == 0 || object_size == 0 {
            return Err(AfcError::InvalidArgument(
                "image and object size must be positive".into(),
            ));
        }
        Ok(RbdImage {
            client,
            name: name.into(),
            size,
            object_size,
        })
    }

    /// Image name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Object size.
    pub fn object_size(&self) -> u64 {
        self.object_size
    }

    /// The owning client.
    pub fn client(&self) -> &Arc<RadosClient> {
        &self.client
    }

    fn object_name(&self, index: u64) -> String {
        format!("rbd_data.{}.{index:016x}", self.name)
    }

    /// Split `[off, off+len)` into `(object-name, in-object-off, len)`.
    fn extents(&self, off: u64, len: u64) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        let mut cur = off;
        let end = off + len;
        while cur < end {
            let idx = cur / self.object_size;
            let within = cur % self.object_size;
            let take = (self.object_size - within).min(end - cur);
            out.push((self.object_name(idx), within, take));
            cur += take;
        }
        out
    }
}

impl BlockTarget for RbdImage {
    fn size(&self) -> u64 {
        self.size
    }

    fn write_at(&self, off: u64, data: &[u8]) -> Result<()> {
        check_range(self.size, off, data.len() as u64)?;
        let extents = self.extents(off, data.len() as u64);
        if extents.len() == 1 {
            let (obj, ooff, _) = &extents[0];
            return self.client.write_object(obj, *ooff, data);
        }
        // Multi-object write: issue concurrently, wait for all.
        let mut handles = Vec::with_capacity(extents.len());
        let mut cursor = 0usize;
        for (obj, ooff, olen) in &extents {
            let chunk = Bytes::copy_from_slice(&data[cursor..cursor + *olen as usize]);
            cursor += *olen as usize;
            handles.push(self.client.write_object_async(obj, *ooff, chunk)?);
        }
        for h in handles {
            h.wait()?;
        }
        Ok(())
    }

    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        check_range(self.size, off, len as u64)?;
        let extents = self.extents(off, len as u64);
        if extents.len() == 1 {
            let (obj, ooff, olen) = &extents[0];
            // Missing objects read as zeros (KRBD semantics for unwritten
            // extents: the object does not exist yet).
            let mut data = match self.client.read_object(obj, *ooff, *olen as u32) {
                Ok(d) => d,
                Err(AfcError::NotFound(_)) => Vec::new(),
                Err(e) => return Err(e),
            };
            data.resize(*olen as usize, 0); // sparse/unwritten tail
            return Ok(data);
        }
        let mut handles = Vec::with_capacity(extents.len());
        for (obj, ooff, olen) in &extents {
            handles.push((
                self.client.read_object_async(obj, *ooff, *olen as u32)?,
                *olen,
            ));
        }
        let mut out = Vec::with_capacity(len);
        for (h, olen) in handles {
            match h.wait() {
                Ok(crate::messages::OpOutcome::Data(d)) => {
                    let mut d = d.to_vec();
                    d.resize(olen as usize, 0);
                    out.extend_from_slice(&d);
                }
                Err(AfcError::NotFound(_)) => out.extend_from_slice(&vec![0u8; olen as usize]),
                Ok(other) => {
                    return Err(AfcError::Corruption(format!(
                        "unexpected outcome {other:?}"
                    )))
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Extent math is testable without a cluster; end-to-end behaviour is
    // covered by the integration tests.
    fn image_for_math() -> RbdImage {
        // A client is required structurally; build a disconnected dummy via
        // a private network.
        let net = afc_messenger::Network::new(afc_messenger::NetConfig::default());
        let mon = crate::monitor::Monitor::new(afc_crush::CrushMap::uniform(1, 1));
        mon.update(|m| {
            m.add_pool(
                afc_common::PoolId(0),
                afc_crush::osdmap::PoolSpec { pg_num: 8, size: 1 },
            )
            .unwrap()
        });
        let client = RadosClient::connect(
            &net,
            mon.shared_map(),
            afc_common::ClientId(99),
            afc_common::PoolId(0),
        )
        .unwrap();
        RbdImage::new(client, "img", 64 * MIB).unwrap()
    }

    #[test]
    fn extents_within_one_object() {
        let img = image_for_math();
        let e = img.extents(100, 4096);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].0, "rbd_data.img.0000000000000000");
        assert_eq!(e[0].1, 100);
        assert_eq!(e[0].2, 4096);
    }

    #[test]
    fn extents_cross_object_boundary() {
        let img = image_for_math();
        let off = 4 * MIB - 1024;
        let e = img.extents(off, 4096);
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[0],
            ("rbd_data.img.0000000000000000".into(), 4 * MIB - 1024, 1024)
        );
        assert_eq!(e[1], ("rbd_data.img.0000000000000001".into(), 0, 3072));
    }

    #[test]
    fn extents_cover_large_write() {
        let img = image_for_math();
        let e = img.extents(MIB, 10 * MIB);
        let total: u64 = e.iter().map(|x| x.2).sum();
        assert_eq!(total, 10 * MIB);
        assert_eq!(e.len(), 3); // 3 MiB (obj 0) + 4 MiB (obj 1) + 3 MiB (obj 2)
    }

    #[test]
    fn invalid_sizes_rejected() {
        let net = afc_messenger::Network::new(afc_messenger::NetConfig::default());
        let mon = crate::monitor::Monitor::new(afc_crush::CrushMap::uniform(1, 1));
        let client = RadosClient::connect(
            &net,
            mon.shared_map(),
            afc_common::ClientId(98),
            afc_common::PoolId(0),
        )
        .unwrap();
        assert!(RbdImage::new(Arc::clone(&client), "x", 0).is_err());
        assert!(RbdImage::with_object_size(client, "x", MIB, 0).is_err());
    }

    #[test]
    fn out_of_range_io_rejected() {
        let img = image_for_math();
        assert!(img.write_at(64 * MIB, &[0u8; 1]).is_err());
        assert!(img.read_at(64 * MIB - 1, 2).is_err());
    }
}
