//! Client-side access: the RADOS object client and the RBD block image.

pub mod rados;
pub mod rbd;
