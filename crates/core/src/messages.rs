//! Wire messages between clients, primaries and replicas.

use crate::qos::QosTag;
use afc_common::{AfcError, ClientId, Epoch, ObjectId, OpId, OsdId, PgId};
use bytes::Bytes;

/// Object-level operation requested by a client.
#[derive(Debug, Clone)]
pub enum ObjectOp {
    /// Write `data` at `offset`.
    Write {
        /// Byte offset within the object.
        offset: u64,
        /// Payload.
        data: Bytes,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Byte offset within the object.
        offset: u64,
        /// Length.
        len: u32,
    },
    /// Fetch object size.
    Stat,
    /// Delete the object.
    Delete,
}

impl ObjectOp {
    /// Whether this op mutates state (and therefore journals/replicates).
    pub fn is_write(&self) -> bool {
        matches!(self, ObjectOp::Write { .. } | ObjectOp::Delete)
    }

    /// Approximate wire size of the request carrying this op.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            ObjectOp::Write { data, .. } => 256 + data.len() as u32,
            _ => 256,
        }
    }
}

/// Result payload of a completed op.
#[derive(Debug, Clone)]
pub enum OpOutcome {
    /// Write/delete acknowledged (journal-durable everywhere).
    Done,
    /// Read data.
    Data(Bytes),
    /// Object size.
    Size(u64),
}

/// Client request to the primary OSD (`MOSDOp`).
#[derive(Debug, Clone)]
pub struct ClientOp {
    /// Issuing client.
    pub client: ClientId,
    /// Per-client op id.
    pub op_id: OpId,
    /// Target placement group (client computes it via CRUSH).
    pub pg: PgId,
    /// Target object.
    pub object: ObjectId,
    /// The operation.
    pub op: ObjectOp,
    /// Client requests in-order ack delivery (§3.1 ordered-ack option).
    pub ordered_ack: bool,
    /// Map epoch the client computed the placement under. A primary that
    /// has moved on rejects with `WrongEpoch`/`NotPrimary` so the client
    /// refreshes its snapshot instead of hammering a stale target.
    pub epoch: Epoch,
    /// QoS identity: which volume this op bills to and that volume's
    /// min/max/burst contract. Untagged clients send
    /// [`QosTag::best_effort`] (volume 0, no floor, no ceiling).
    pub qos: QosTag,
}

/// Primary's reply to the client (`MOSDOpReply`).
#[derive(Debug, Clone)]
pub struct ClientReply {
    /// Echoed op id.
    pub op_id: OpId,
    /// Result.
    pub result: Result<OpOutcome, AfcError>,
}

/// Replication sub-op, primary → replica (`MOSDRepOp`).
#[derive(Debug, Clone)]
pub struct RepOp {
    /// Correlation id unique on the primary.
    pub rep_id: u64,
    /// Placement group.
    pub pg: PgId,
    /// Target object.
    pub object: ObjectId,
    /// The (write) operation to mirror.
    pub op: ObjectOp,
    /// PG log sequence assigned by the primary.
    pub pg_seq: u64,
}

/// Replica's commit ack, replica → primary (`MOSDRepOpReply`). Also acks
/// recovery pushes (the `rep_id` then carries a push id from the same
/// counter space).
#[derive(Debug, Clone)]
pub struct RepOpReply {
    /// Correlation id.
    pub rep_id: u64,
    /// Acking replica.
    pub from: OsdId,
}

/// Heartbeat ping/pong between OSDs (`MOSDPing`).
#[derive(Debug, Clone)]
pub struct PingMsg {
    /// Sender.
    pub from: OsdId,
    /// Sender's map epoch (peers use it to notice they are stale).
    pub epoch: Epoch,
}

/// Peering info request, primary → peer (`GetInfo`).
#[derive(Debug, Clone)]
pub struct PgQueryMsg {
    /// Placement group being peered.
    pub pg: PgId,
    /// Epoch tagging the peering round; echoed in the reply so stale
    /// answers from older rounds are ignored.
    pub epoch: Epoch,
    /// Querying (acting-primary) OSD.
    pub from: OsdId,
}

/// Peering info reply, peer → primary (`Notify`/`Info`).
#[derive(Debug, Clone)]
pub struct PgInfoMsg {
    /// Placement group.
    pub pg: PgId,
    /// Echo of the round epoch from the query.
    pub epoch: Epoch,
    /// Replying OSD.
    pub from: OsdId,
    /// Highest PG-log sequence the peer has committed.
    pub last_update: u64,
}

/// Recovery push, primary → peer (`MOSDPGPush`): the authoritative full
/// copy of one object (or its deletion when `data` is `None`).
#[derive(Debug, Clone)]
pub struct PushOp {
    /// Correlation id unique on the pushing primary.
    pub push_id: u64,
    /// Placement group.
    pub pg: PgId,
    /// Object being recovered.
    pub object: ObjectId,
    /// Full object bytes, or `None` to propagate a deletion.
    pub data: Option<Bytes>,
    /// PG log sequence covered by this push.
    pub pg_seq: u64,
}

/// Everything that travels over the fabric.
#[derive(Debug, Clone)]
pub enum OsdMsg {
    /// Client → primary.
    Request(ClientOp),
    /// Primary → client.
    Reply(ClientReply),
    /// Primary → replica.
    Replicate(RepOp),
    /// Replica → primary (write sub-ops and recovery pushes).
    RepAck(RepOpReply),
    /// OSD → OSD heartbeat.
    Ping(PingMsg),
    /// Heartbeat response.
    Pong(PingMsg),
    /// Peering: acting primary asks a peer for its PG info.
    PgQuery(PgQueryMsg),
    /// Peering: peer answers with its last committed PG-log seq.
    PgInfo(PgInfoMsg),
    /// Recovery/backfill object push.
    Push(PushOp),
}

impl OsdMsg {
    /// Wire size estimate used for Nagle decisions and byte counters.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            OsdMsg::Request(r) => r.op.wire_bytes(),
            OsdMsg::Reply(r) => match &r.result {
                Ok(OpOutcome::Data(d)) => 128 + d.len() as u32,
                _ => 128,
            },
            OsdMsg::Replicate(r) => r.op.wire_bytes() + 64,
            OsdMsg::RepAck(_) => 96,
            OsdMsg::Ping(_) | OsdMsg::Pong(_) => 64,
            OsdMsg::PgQuery(_) => 96,
            OsdMsg::PgInfo(_) => 128,
            OsdMsg::Push(p) => 256 + p.data.as_ref().map_or(0, |d| d.len() as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::PoolId;

    #[test]
    fn write_classification() {
        assert!(ObjectOp::Write {
            offset: 0,
            data: Bytes::new()
        }
        .is_write());
        assert!(ObjectOp::Delete.is_write());
        assert!(!ObjectOp::Read { offset: 0, len: 1 }.is_write());
        assert!(!ObjectOp::Stat.is_write());
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = ObjectOp::Write {
            offset: 0,
            data: Bytes::from(vec![0; 512]),
        };
        let large = ObjectOp::Write {
            offset: 0,
            data: Bytes::from(vec![0; 65536]),
        };
        assert!(large.wire_bytes() > small.wire_bytes());
        let read = ObjectOp::Read {
            offset: 0,
            len: 4096,
        };
        assert_eq!(read.wire_bytes(), 256);
    }

    #[test]
    fn reply_wire_bytes_include_data() {
        let r = OsdMsg::Reply(ClientReply {
            op_id: OpId(1),
            result: Ok(OpOutcome::Data(Bytes::from(vec![0; 4096]))),
        });
        assert!(r.wire_bytes() > 4096);
        let ack = OsdMsg::RepAck(RepOpReply {
            rep_id: 1,
            from: OsdId(0),
        });
        assert_eq!(ack.wire_bytes(), 96);
    }

    #[test]
    fn client_op_construction() {
        let op = ClientOp {
            client: ClientId(1),
            op_id: OpId(9),
            pg: PgId {
                pool: PoolId(0),
                seq: 3,
            },
            object: ObjectId::new(PoolId(0), "o"),
            op: ObjectOp::Stat,
            ordered_ack: false,
            epoch: Epoch(1),
            qos: QosTag::best_effort(),
        };
        assert_eq!(op.op_id, OpId(9));
        assert!(!op.op.is_write());
    }

    #[test]
    fn recovery_wire_bytes() {
        let ping = OsdMsg::Ping(PingMsg {
            from: OsdId(0),
            epoch: Epoch(3),
        });
        assert_eq!(ping.wire_bytes(), 64);
        let push = OsdMsg::Push(PushOp {
            push_id: 1,
            pg: PgId {
                pool: PoolId(0),
                seq: 0,
            },
            object: ObjectId::new(PoolId(0), "o"),
            data: Some(Bytes::from(vec![0; 4096])),
            pg_seq: 9,
        });
        assert!(push.wire_bytes() > 4096);
        let del = OsdMsg::Push(PushOp {
            push_id: 2,
            pg: PgId {
                pool: PoolId(0),
                seq: 0,
            },
            object: ObjectId::new(PoolId(0), "o"),
            data: None,
            pg_seq: 10,
        });
        assert_eq!(del.wire_bytes(), 256);
    }
}
