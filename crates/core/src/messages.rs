//! Wire messages between clients, primaries and replicas.

use afc_common::{AfcError, ClientId, ObjectId, OpId, OsdId, PgId};
use bytes::Bytes;

/// Object-level operation requested by a client.
#[derive(Debug, Clone)]
pub enum ObjectOp {
    /// Write `data` at `offset`.
    Write {
        /// Byte offset within the object.
        offset: u64,
        /// Payload.
        data: Bytes,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Byte offset within the object.
        offset: u64,
        /// Length.
        len: u32,
    },
    /// Fetch object size.
    Stat,
    /// Delete the object.
    Delete,
}

impl ObjectOp {
    /// Whether this op mutates state (and therefore journals/replicates).
    pub fn is_write(&self) -> bool {
        matches!(self, ObjectOp::Write { .. } | ObjectOp::Delete)
    }

    /// Approximate wire size of the request carrying this op.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            ObjectOp::Write { data, .. } => 256 + data.len() as u32,
            _ => 256,
        }
    }
}

/// Result payload of a completed op.
#[derive(Debug, Clone)]
pub enum OpOutcome {
    /// Write/delete acknowledged (journal-durable everywhere).
    Done,
    /// Read data.
    Data(Bytes),
    /// Object size.
    Size(u64),
}

/// Client request to the primary OSD (`MOSDOp`).
#[derive(Debug, Clone)]
pub struct ClientOp {
    /// Issuing client.
    pub client: ClientId,
    /// Per-client op id.
    pub op_id: OpId,
    /// Target placement group (client computes it via CRUSH).
    pub pg: PgId,
    /// Target object.
    pub object: ObjectId,
    /// The operation.
    pub op: ObjectOp,
    /// Client requests in-order ack delivery (§3.1 ordered-ack option).
    pub ordered_ack: bool,
}

/// Primary's reply to the client (`MOSDOpReply`).
#[derive(Debug, Clone)]
pub struct ClientReply {
    /// Echoed op id.
    pub op_id: OpId,
    /// Result.
    pub result: Result<OpOutcome, AfcError>,
}

/// Replication sub-op, primary → replica (`MOSDRepOp`).
#[derive(Debug, Clone)]
pub struct RepOp {
    /// Correlation id unique on the primary.
    pub rep_id: u64,
    /// Placement group.
    pub pg: PgId,
    /// Target object.
    pub object: ObjectId,
    /// The (write) operation to mirror.
    pub op: ObjectOp,
    /// PG log sequence assigned by the primary.
    pub pg_seq: u64,
}

/// Replica's commit ack, replica → primary (`MOSDRepOpReply`).
#[derive(Debug, Clone)]
pub struct RepOpReply {
    /// Correlation id.
    pub rep_id: u64,
    /// Acking replica.
    pub from: OsdId,
}

/// Everything that travels over the fabric.
#[derive(Debug, Clone)]
pub enum OsdMsg {
    /// Client → primary.
    Request(ClientOp),
    /// Primary → client.
    Reply(ClientReply),
    /// Primary → replica.
    Replicate(RepOp),
    /// Replica → primary.
    RepAck(RepOpReply),
}

impl OsdMsg {
    /// Wire size estimate used for Nagle decisions and byte counters.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            OsdMsg::Request(r) => r.op.wire_bytes(),
            OsdMsg::Reply(r) => match &r.result {
                Ok(OpOutcome::Data(d)) => 128 + d.len() as u32,
                _ => 128,
            },
            OsdMsg::Replicate(r) => r.op.wire_bytes() + 64,
            OsdMsg::RepAck(_) => 96,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::PoolId;

    #[test]
    fn write_classification() {
        assert!(ObjectOp::Write {
            offset: 0,
            data: Bytes::new()
        }
        .is_write());
        assert!(ObjectOp::Delete.is_write());
        assert!(!ObjectOp::Read { offset: 0, len: 1 }.is_write());
        assert!(!ObjectOp::Stat.is_write());
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = ObjectOp::Write {
            offset: 0,
            data: Bytes::from(vec![0; 512]),
        };
        let large = ObjectOp::Write {
            offset: 0,
            data: Bytes::from(vec![0; 65536]),
        };
        assert!(large.wire_bytes() > small.wire_bytes());
        let read = ObjectOp::Read {
            offset: 0,
            len: 4096,
        };
        assert_eq!(read.wire_bytes(), 256);
    }

    #[test]
    fn reply_wire_bytes_include_data() {
        let r = OsdMsg::Reply(ClientReply {
            op_id: OpId(1),
            result: Ok(OpOutcome::Data(Bytes::from(vec![0; 4096]))),
        });
        assert!(r.wire_bytes() > 4096);
        let ack = OsdMsg::RepAck(RepOpReply {
            rep_id: 1,
            from: OsdId(0),
        });
        assert_eq!(ack.wire_bytes(), 96);
    }

    #[test]
    fn client_op_construction() {
        let op = ClientOp {
            client: ClientId(1),
            op_id: OpId(9),
            pg: PgId {
                pool: PoolId(0),
                seq: 3,
            },
            object: ObjectId::new(PoolId(0), "o"),
            op: ObjectOp::Stat,
            ordered_ack: false,
        };
        assert_eq!(op.op_id, OpId(9));
        assert!(!op.op.is_write());
    }
}
