//! The scale-out object store core: OSDs, PGs, replication, clients.
//!
//! This crate is the paper's subject. It implements a Ceph-like OSD with
//! **both** I/O paths:
//!
//! - the **community** path — coarse PG locking (workers block on held PG
//!   locks; journal/filestore completions and replica acks all re-acquire
//!   the PG lock through shared queues), blocking debug logging, HDD-sized
//!   throttles, Nagle on, heavyweight filestore transactions; and
//! - the **AFCeph** path — per-PG pending queues, a dedicated batching
//!   completion worker with per-op locks, fast-path ack processing, SSD
//!   throttles, jemalloc-style allocation behaviour, Nagle off,
//!   non-blocking logging and light-weight transactions.
//!
//! Every optimization is independently switchable via [`OsdTuning`], which
//! is how the Figure 9 stepwise ablation is produced.
//!
//! ```no_run
//! use afc_core::{Cluster, OsdTuning};
//! use afc_common::{BlockTarget, GIB};
//!
//! let cluster = Cluster::builder()
//!     .nodes(4)
//!     .osds_per_node(4)
//!     .replication(2)
//!     .tuning(OsdTuning::afceph())
//!     .build()
//!     .unwrap();
//! let img = cluster.create_image("vm0", GIB).unwrap();
//! img.write_at(0, &vec![0u8; 4096]).unwrap();
//! ```

pub mod client;
pub mod cluster;
pub mod messages;
pub mod monitor;
pub mod osd;
pub mod qos;
pub mod tuning;

pub use client::rados::RadosClient;
pub use client::rbd::RbdImage;
pub use cluster::{Cluster, ClusterBuilder, DeviceProfile, ScrubReport};
pub use messages::{ObjectOp, OpOutcome, OsdMsg};
pub use monitor::{FailureConfig, Monitor};
pub use osd::{Osd, OsdStats, StageSample};
pub use qos::{QosSpec, QosTag};
pub use tuning::{Allocator, LoggingMode, OsdTuning, ThrottleProfile};
