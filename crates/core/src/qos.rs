//! dmClock-style per-volume QoS scheduling for the OSD op queue.
//!
//! SolidFire's defining product feature — guaranteed per-volume
//! min/max/burst IOPS — reproduced on the afc side as a two-level
//! scheduler in front of the OSD op workers:
//!
//! 1. **Reservation phase.** Every volume with `min_iops > 0` carries a
//!    dmClock-style reservation deadline tag that advances by
//!    `1/min_iops` per dispatch. A volume whose tag lags `now` is owed
//!    guaranteed throughput and is served *before* all best-effort
//!    traffic, earliest tag first — which under oversubscription
//!    (Σ min_iops > capacity) degrades every reservation proportionally
//!    to its `min_iops` instead of starving anyone, because a volume with
//!    3× the floor advances its tag a third as far per dispatch.
//! 2. **Weight phase.** Remaining capacity round-robins across all
//!    backlogged volumes. A per-volume limit bucket (rate `max_iops`,
//!    cap `burst`) gates *both* phases, so no volume exceeds its ceiling
//!    no matter how empty the cluster is.
//!
//! A streak cap ([`RESERVATION_STREAK_MAX`]) bounds how many consecutive
//! dispatches the reservation phase may win while best-effort work is
//! waiting: even a hopelessly oversubscribed set of reservations leaks
//! ~1/(K+1) of capacity to the weight phase, so untagged traffic always
//! makes progress.
//!
//! The scheduler is generic over the queued item so the dequeue policy is
//! unit-testable with synthetic clocks; the OSD instantiates it with its
//! PG work closures. Internal traffic (replication, recovery, peering)
//! never enters this scheduler — only client ops are tagged and shaped.
//!
//! Limit buckets refill lazily at access time and clamp to their cap;
//! reservation tags are clamped forward when a volume goes busy again. So
//! an idle volume never accumulates more than one bounded burst of
//! credit on either level.

use afc_common::counters::{Counter, CounterSet};
use afc_common::lockdep::classes;
use afc_common::metrics::{Histogram, HistogramSet};
use afc_common::{TrackedMutex, VolumeId};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Consecutive reservation-phase dispatches allowed while weight-phase
/// candidates are waiting, before one weight pick is forced. Bounds
/// best-effort starvation at ~1/(K+1) of capacity under reservation
/// oversubscription.
pub const RESERVATION_STREAK_MAX: u32 = 8;

/// A volume's QoS contract: guaranteed floor, hard ceiling, burst credit.
///
/// All rates are in IOPS. `max_iops == 0` means unlimited; `burst` is the
/// number of ops a volume may momentarily exceed its sustained `max_iops`
/// by after idling (SolidFire's "burst IOPS" knob). `best_effort()` (all
/// zero) is the untagged default: no floor, no ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosSpec {
    /// Guaranteed IOPS floor (reservation). 0 = no guarantee.
    pub min_iops: u64,
    /// IOPS ceiling (limit). 0 = unlimited.
    pub max_iops: u64,
    /// Burst credit in ops above the sustained ceiling. Only meaningful
    /// with `max_iops > 0`.
    pub burst: u64,
}

impl QosSpec {
    /// No floor, no ceiling: scheduled purely by the weight phase.
    pub const fn best_effort() -> Self {
        QosSpec {
            min_iops: 0,
            max_iops: 0,
            burst: 0,
        }
    }

    /// Build a spec, clamping `min_iops` to `max_iops` when a ceiling is
    /// set (a floor above the ceiling is unsatisfiable by construction).
    pub fn new(min_iops: u64, max_iops: u64, burst: u64) -> Self {
        let min_iops = if max_iops > 0 {
            min_iops.min(max_iops)
        } else {
            min_iops
        };
        QosSpec {
            min_iops,
            max_iops,
            burst,
        }
    }
}

/// The QoS identity carried on every client op: which volume it bills to
/// and that volume's contract. Carrying the spec inline means OSDs learn
/// a volume's QoS from its first op — no registration protocol, and a
/// re-opened volume's updated spec wins on arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosTag {
    /// Owning volume.
    pub volume: VolumeId,
    /// The volume's QoS contract.
    pub spec: QosSpec,
}

impl QosTag {
    /// The shared best-effort volume (id 0): untagged traffic.
    pub const fn best_effort() -> Self {
        QosTag {
            volume: VolumeId(0),
            spec: QosSpec::best_effort(),
        }
    }

    /// Tag ops for `volume` under `spec`.
    pub fn new(volume: VolumeId, spec: QosSpec) -> Self {
        QosTag { volume, spec }
    }
}

/// A lazily-refilled token bucket. Fractional tokens accumulate between
/// polls; the cap bounds what an idle volume can save up.
#[derive(Debug)]
struct TokenBucket {
    /// Tokens per second.
    rate: f64,
    /// Maximum stored tokens.
    cap: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate_iops: u64, cap: f64, now: Instant) -> Self {
        let cap = cap.max(1.0);
        TokenBucket {
            rate: rate_iops as f64,
            cap,
            // Start full: a fresh volume may burst immediately.
            tokens: cap,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        if now > self.last {
            let dt = now.duration_since(self.last).as_secs_f64();
            self.tokens = (self.tokens + self.rate * dt).min(self.cap);
            self.last = now;
        }
    }

    fn has_token(&self) -> bool {
        self.tokens >= 1.0
    }

    fn take(&mut self) {
        self.tokens -= 1.0;
    }

    /// Earliest instant at which a full token will be available.
    fn next_available(&self, now: Instant) -> Instant {
        if self.tokens >= 1.0 || self.rate <= 0.0 {
            return now;
        }
        now + Duration::from_secs_f64((1.0 - self.tokens) / self.rate)
    }
}

/// dmClock reservation clock. The volume is owed a guaranteed dispatch
/// whenever `tag <= now`; every reservation dispatch advances the tag by
/// `1/min_iops`, so under oversubscription the volume whose tag lags
/// furthest is the one furthest below its floor. Unlike a token bucket,
/// the tag never saturates while the volume stays busy — that is what
/// keeps the split *proportional* when Σ min_iops exceeds capacity.
#[derive(Debug)]
struct Reservation {
    /// Seconds of clock per guaranteed op (`1 / min_iops`).
    interval: Duration,
    /// How far the tag may lag `now` when the volume goes busy after an
    /// idle spell — the post-idle catch-up credit, in wall time of floor.
    window: Duration,
    /// The deadline tag.
    tag: Instant,
}

impl Reservation {
    fn new(min_iops: u64, now: Instant) -> Self {
        let window = Duration::from_millis(250);
        Reservation {
            interval: Duration::from_secs_f64(1.0 / min_iops as f64),
            window,
            // Start one window behind: a fresh volume may claim its
            // floor immediately (min_iops / 4 ops of initial credit).
            tag: now.checked_sub(window).unwrap_or(now),
        }
    }

    /// True when the volume is below its guaranteed floor.
    fn due(&self, now: Instant) -> bool {
        self.tag <= now
    }

    /// Account one guaranteed dispatch.
    fn on_dispatch(&mut self) {
        self.tag += self.interval;
    }

    /// Clamp the tag forward when the volume goes busy after idling, so
    /// idle time banks at most `window` worth of reservation credit.
    fn on_busy(&mut self, now: Instant) {
        if let Some(floor) = now.checked_sub(self.window) {
            if self.tag < floor {
                self.tag = floor;
            }
        }
    }
}

/// Per-volume scheduler state: the FIFO of pending items plus the
/// reservation clock, limit bucket, and cached metric handles.
struct VolState<T> {
    spec: QosSpec,
    /// Pending items with their enqueue timestamps (for the queue-wait
    /// histogram).
    queue: VecDeque<(T, Instant)>,
    /// Reservation clock, present when `min_iops > 0`. Its catch-up
    /// window is 250 ms of floor — enough to ride out scheduler hiccups,
    /// small enough that an idle volume cannot bank a deluge.
    reservation: Option<Reservation>,
    /// Ceiling, present when `max_iops > 0`. Rate `max_iops`, cap `burst`
    /// (or 250 ms of ceiling when no burst is configured).
    limit: Option<TokenBucket>,
    /// Whether the current queue head has already been billed to the
    /// `limited` counters — dequeue polls repeat (one per woken worker),
    /// but each *op* counts as rate-limited at most once.
    limited_counted: bool,
    c_res: Counter,
    c_weight: Counter,
    c_limited: Counter,
    c_enq: Counter,
    h_wait: Histogram,
}

impl<T> VolState<T> {
    fn new(vol: VolumeId, spec: QosSpec, now: Instant, cs: &CounterSet, hs: &HistogramSet) -> Self {
        let (reservation, limit) = Self::buckets(&spec, now);
        VolState {
            spec,
            queue: VecDeque::new(),
            reservation,
            limit,
            limited_counted: false,
            c_res: cs.counter(&format!("{vol}.served_reservation")),
            c_weight: cs.counter(&format!("{vol}.served_weight")),
            c_limited: cs.counter(&format!("{vol}.limited")),
            c_enq: cs.counter(&format!("{vol}.enqueued")),
            h_wait: hs.hist(&format!("{vol}.queue_wait")),
        }
    }

    fn buckets(spec: &QosSpec, now: Instant) -> (Option<Reservation>, Option<TokenBucket>) {
        let reservation = (spec.min_iops > 0).then(|| Reservation::new(spec.min_iops, now));
        let limit = (spec.max_iops > 0).then(|| {
            let cap = if spec.burst > 0 {
                spec.burst as f64
            } else {
                spec.max_iops as f64 / 4.0
            };
            TokenBucket::new(spec.max_iops, cap, now)
        });
        (reservation, limit)
    }

    /// Adopt a changed spec (volume re-opened with new QoS): rebuild the
    /// buckets, keep the queue. Balances carry over — a fresh bucket
    /// starts full, so without the carry-over a client could mint a new
    /// burst of credit (and reset consumed reservation credit) just by
    /// re-opening the volume with an alternating spec.
    fn set_spec(&mut self, spec: QosSpec, now: Instant) {
        if self.spec == spec {
            return;
        }
        self.spec = spec;
        let (mut r, mut l) = Self::buckets(&spec, now);
        if let (Some(old), Some(new)) = (self.limit.as_mut(), l.as_mut()) {
            old.refill(now);
            new.tokens = old.tokens.min(new.cap);
        }
        if let (Some(old), Some(new)) = (self.reservation.as_ref(), r.as_mut()) {
            // The further-ahead tag means less outstanding credit; keep it.
            if old.tag > new.tag {
                new.tag = old.tag;
            }
        }
        self.reservation = r;
        self.limit = l;
    }

    /// True when the limit bucket (if any) permits a dispatch now.
    fn limit_ok(&self) -> bool {
        self.limit.as_ref().is_none_or(TokenBucket::has_token)
    }
}

struct SchedState<T> {
    vols: BTreeMap<VolumeId, VolState<T>>,
    /// Total queued items across volumes.
    queued: usize,
    /// Consecutive reservation-phase dispatches (see
    /// [`RESERVATION_STREAK_MAX`]).
    streak: u32,
    /// Last volume served by the weight phase (round-robin cursor).
    rr_last: Option<VolumeId>,
}

/// Outcome of a dequeue attempt.
#[derive(Debug)]
pub enum Deq<T> {
    /// An item was dispatched.
    Ready(T),
    /// Items are queued but every backlogged volume is at its limit;
    /// nothing can dispatch before the given instant.
    Wait(Instant),
    /// No items queued.
    Empty,
}

/// The two-level (reservation → weight) per-volume scheduler. See the
/// module docs for the policy; all methods are safe to call concurrently.
pub struct QosScheduler<T> {
    state: TrackedMutex<SchedState<T>>,
    counters: CounterSet,
    hists: HistogramSet,
    c_res: Counter,
    c_weight: Counter,
    c_limited: Counter,
    c_enq: Counter,
}

impl<T> Default for QosScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> QosScheduler<T> {
    /// Create an empty scheduler.
    pub fn new() -> Self {
        let counters = CounterSet::new();
        let hists = HistogramSet::new();
        QosScheduler {
            state: TrackedMutex::new(
                &classes::OSD_QOS,
                SchedState {
                    vols: BTreeMap::new(),
                    queued: 0,
                    streak: 0,
                    rr_last: None,
                },
            ),
            c_res: counters.counter("served_reservation"),
            c_weight: counters.counter("served_weight"),
            c_limited: counters.counter("limited"),
            c_enq: counters.counter("enqueued"),
            counters,
            hists,
        }
    }

    /// The live counter set (`served_reservation`, `served_weight`,
    /// `limited`, `enqueued`, plus `volN.*` per volume) for
    /// `Metrics::attach_set`.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// The live histogram set (`volN.queue_wait`) for
    /// `Metrics::attach_hist_set`.
    pub fn hists(&self) -> &HistogramSet {
        &self.hists
    }

    /// Queue `item` for `tag.volume`, creating (or re-speccing) the
    /// volume's state from the tag.
    pub fn enqueue(&self, tag: &QosTag, item: T, now: Instant) {
        let mut st = self.state.lock();
        let vs = match st.vols.entry(tag.volume) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let vs = e.into_mut();
                vs.set_spec(tag.spec, now);
                vs
            }
            std::collections::btree_map::Entry::Vacant(e) => e.insert(VolState::new(
                tag.volume,
                tag.spec,
                now,
                &self.counters,
                &self.hists,
            )),
        };
        if vs.queue.is_empty() {
            // Going busy after an idle spell: bound the banked credit.
            if let Some(r) = &mut vs.reservation {
                r.on_busy(now);
            }
        }
        vs.queue.push_back((item, now));
        vs.c_enq.inc();
        st.queued += 1;
        self.c_enq.inc();
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.state.lock().queued
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain every queue (shutdown path). Items are returned so their
    /// drop side effects (permit release, etc.) run outside the lock.
    pub fn clear(&self) -> Vec<T> {
        let mut st = self.state.lock();
        let mut out = Vec::with_capacity(st.queued);
        for vs in st.vols.values_mut() {
            out.extend(vs.queue.drain(..).map(|(item, _)| item));
        }
        st.queued = 0;
        out
    }

    /// Pick the next item to dispatch at `now` per the two-level policy.
    pub fn dequeue(&self, now: Instant) -> Deq<T> {
        let mut st = self.state.lock();
        if st.queued == 0 {
            return Deq::Empty;
        }
        let st = &mut *st;
        for vs in st.vols.values_mut() {
            if !vs.queue.is_empty() {
                if let Some(b) = &mut vs.limit {
                    b.refill(now);
                }
            }
        }

        // Reservation phase: among backlogged, limit-clear volumes below
        // their floor (tag due), the one whose tag lags furthest.
        let mut res_pick: Option<(VolumeId, Instant)> = None;
        // Does any backlogged, limit-clear volume with no due reservation
        // exist? (The streak cap only matters when someone else is
        // waiting.)
        let mut weight_waiting = false;
        for (vol, vs) in st.vols.iter() {
            if vs.queue.is_empty() || !vs.limit_ok() {
                continue;
            }
            match vs.reservation.as_ref().filter(|r| r.due(now)) {
                Some(r) => {
                    if res_pick.is_none_or(|(_, t)| r.tag < t) {
                        res_pick = Some((*vol, r.tag));
                    }
                }
                None => weight_waiting = true,
            }
        }

        let mut forced = false;
        if let Some((vol, _)) = res_pick {
            if !weight_waiting || st.streak < RESERVATION_STREAK_MAX {
                let vs = st.vols.get_mut(&vol).expect("picked volume exists");
                if let Some(r) = &mut vs.reservation {
                    r.on_dispatch();
                }
                if let Some(b) = &mut vs.limit {
                    b.take();
                }
                let (item, enq) = vs.queue.pop_front().expect("picked volume backlogged");
                vs.limited_counted = false;
                vs.h_wait.observe(now.duration_since(enq));
                vs.c_res.inc();
                self.c_res.inc();
                st.queued -= 1;
                // Saturate: with no weight candidate waiting the cap check
                // is skipped, so the streak can grow without bound.
                st.streak = st.streak.saturating_add(1);
                return Deq::Ready(item);
            }
            // Streak cap hit: force one weight pick, and aim it at the
            // volumes actually waiting behind the reservations (those
            // with no due floor claim) — `weight_waiting` guarantees at
            // least one such candidate exists.
            forced = true;
        }

        // Weight phase: round-robin over backlogged, limit-clear volumes,
        // starting just past the cursor.
        let candidates: Vec<VolumeId> = st
            .vols
            .iter()
            .filter(|(_, vs)| !vs.queue.is_empty() && vs.limit_ok())
            .filter(|(_, vs)| !forced || !vs.reservation.as_ref().is_some_and(|r| r.due(now)))
            .map(|(v, _)| *v)
            .collect();
        if let Some(vol) = pick_round_robin(&candidates, st.rr_last) {
            let vs = st.vols.get_mut(&vol).expect("picked volume exists");
            if let Some(b) = &mut vs.limit {
                b.take();
            }
            let (item, enq) = vs.queue.pop_front().expect("picked volume backlogged");
            vs.limited_counted = false;
            vs.h_wait.observe(now.duration_since(enq));
            vs.c_weight.inc();
            self.c_weight.inc();
            st.queued -= 1;
            st.streak = 0;
            st.rr_last = Some(vol);
            return Deq::Ready(item);
        }

        // Everything backlogged is rate-limited: report the earliest
        // instant a limit bucket frees up.
        let mut deadline: Option<Instant> = None;
        for vs in st.vols.values_mut() {
            if vs.queue.is_empty() {
                continue;
            }
            // Bill the deferred head once, not once per worker poll.
            if !vs.limited_counted {
                vs.limited_counted = true;
                vs.c_limited.inc();
                self.c_limited.inc();
            }
            if let Some(b) = &vs.limit {
                let at = b.next_available(now);
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
        }
        // A backlogged volume always has a limit bucket here (a volume
        // without one is always limit_ok and would have dispatched), but
        // fall back to a short poll rather than panic.
        Deq::Wait(deadline.unwrap_or(now + Duration::from_millis(1)))
    }
}

/// Next element after `last` in `sorted` (wrapping), or the first element
/// when `last` is absent.
fn pick_round_robin(sorted: &[VolumeId], last: Option<VolumeId>) -> Option<VolumeId> {
    if sorted.is_empty() {
        return None;
    }
    let Some(last) = last else {
        return Some(sorted[0]);
    };
    match sorted.iter().position(|v| *v > last) {
        Some(i) => Some(sorted[i]),
        None => Some(sorted[0]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    fn drain_at<T>(s: &QosScheduler<T>, now: Instant, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        for _ in 0..max {
            match s.dequeue(now) {
                Deq::Ready(x) => out.push(x),
                _ => break,
            }
        }
        out
    }

    #[test]
    fn fifo_within_a_volume() {
        let s = QosScheduler::new();
        let tag = QosTag::best_effort();
        let now = t0();
        for i in 0..5u32 {
            s.enqueue(&tag, i, now);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(drain_at(&s, now, 10), vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
        assert!(matches!(s.dequeue(now), Deq::Empty));
    }

    #[test]
    fn reservation_served_before_best_effort() {
        let s = QosScheduler::new();
        let now = t0();
        let noisy = QosTag::best_effort();
        let prot = QosTag::new(VolumeId(1), QosSpec::new(1000, 0, 0));
        for i in 0..10u32 {
            s.enqueue(&noisy, i, now);
        }
        s.enqueue(&prot, 100, now);
        s.enqueue(&prot, 101, now);
        // The reserved volume's items jump the whole best-effort backlog.
        let got = drain_at(&s, now, 2);
        assert_eq!(got, vec![100, 101]);
    }

    #[test]
    fn max_iops_enforced_with_wait_deadline() {
        let s = QosScheduler::new();
        let now = t0();
        // 1000 IOPS ceiling, burst 2: exactly 2 ops dispatch immediately.
        let tag = QosTag::new(VolumeId(1), QosSpec::new(0, 1000, 2));
        for i in 0..10u32 {
            s.enqueue(&tag, i, now);
        }
        assert_eq!(drain_at(&s, now, 10).len(), 2);
        let Deq::Wait(at) = s.dequeue(now) else {
            panic!("expected Wait while rate-limited");
        };
        // Next token at +1ms (1000 IOPS).
        let dt = at.duration_since(now);
        assert!(dt <= Duration::from_millis(2), "deadline {dt:?}");
        assert!(dt >= Duration::from_micros(500), "deadline {dt:?}");
        // After the deadline a token has accrued.
        let later = now + Duration::from_millis(1);
        assert_eq!(drain_at(&s, later, 10).len(), 1);
        assert!(s.counters().get("vol1.limited") > 0);
    }

    #[test]
    fn burst_credit_is_capped() {
        let s = QosScheduler::new();
        let now = t0();
        let tag = QosTag::new(VolumeId(1), QosSpec::new(0, 100, 5));
        s.enqueue(&tag, 0u32, now);
        drain_at(&s, now, 1);
        // A long idle period must not bank more than `burst` tokens.
        let later = now + Duration::from_secs(3600);
        for i in 0..20u32 {
            s.enqueue(&tag, i, later);
        }
        // Started full (5), spent 1, idle refill clamps at 5.
        assert_eq!(drain_at(&s, later, 20).len(), 5);
        assert!(matches!(s.dequeue(later), Deq::Wait(_)));
    }

    #[test]
    fn idle_volume_reservation_credit_is_capped() {
        let s = QosScheduler::new();
        let now = t0();
        // min 1000 → reservation cap is 250 (min/4).
        let prot = QosTag::new(VolumeId(1), QosSpec::new(1000, 0, 0));
        let noisy = QosTag::best_effort();
        s.enqueue(&prot, 0u32, now);
        drain_at(&s, now, 1);
        // An hour idle, then both volumes go backlogged.
        let later = now + Duration::from_secs(3600);
        for i in 0..1000u32 {
            s.enqueue(&prot, i, later);
            s.enqueue(&noisy, 10_000 + i, later);
        }
        // With credit capped at 250, and the streak cap forcing a weight
        // pick every RESERVATION_STREAK_MAX reservation picks, the first
        // ~300 dispatches cannot all be the reserved volume.
        let got = drain_at(&s, later, 300);
        let noisy_served = got.iter().filter(|x| **x >= 10_000).count();
        assert!(
            noisy_served >= 300 / (RESERVATION_STREAK_MAX as usize + 1),
            "noisy starved: only {noisy_served} of 300"
        );
    }

    #[test]
    fn oversubscribed_reservations_degrade_proportionally() {
        let s = QosScheduler::new();
        let start = t0();
        let a = QosTag::new(VolumeId(1), QosSpec::new(1000, 0, 0));
        let b = QosTag::new(VolumeId(2), QosSpec::new(3000, 0, 0));
        for i in 0..4000u32 {
            s.enqueue(&a, i, start);
            s.enqueue(&b, 100_000 + i, start);
        }
        // Capacity 2000 IOPS vs 4000 reserved: dispatch one op every
        // 0.5 ms of synthetic time for one synthetic second.
        let (mut na, mut nb) = (0usize, 0usize);
        for step in 1..=2000u64 {
            let now = start + Duration::from_micros(500 * step);
            match s.dequeue(now) {
                Deq::Ready(x) if x < 100_000 => na += 1,
                Deq::Ready(_) => nb += 1,
                _ => {}
            }
        }
        // b reserved 3× a's floor → should get ~3× the dispatches; both
        // must make progress.
        assert!(na > 0 && nb > 0, "na={na} nb={nb}");
        let ratio = nb as f64 / na as f64;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "expected ~3:1 split, got {nb}:{na} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn weight_phase_round_robins_across_volumes() {
        let s = QosScheduler::new();
        let now = t0();
        for v in 1..=3u64 {
            let tag = QosTag::new(VolumeId(v), QosSpec::best_effort());
            for i in 0..4u32 {
                s.enqueue(&tag, (v as u32) * 100 + i, now);
            }
        }
        let got = drain_at(&s, now, 6);
        // Perfect interleave: one op per volume per round.
        assert_eq!(got, vec![100, 200, 300, 101, 201, 301]);
    }

    #[test]
    fn spec_update_on_reopen_wins() {
        let s = QosScheduler::new();
        let now = t0();
        let v = VolumeId(1);
        s.enqueue(&QosTag::new(v, QosSpec::new(0, 100, 1)), 0u32, now);
        drain_at(&s, now, 1);
        // Re-open with a higher burst: the new cap applies, but the spent
        // token balance carries over — re-opening mints no fresh credit.
        let tag = QosTag::new(v, QosSpec::new(0, 100, 50));
        for i in 0..30u32 {
            s.enqueue(&tag, i, now);
        }
        assert!(matches!(s.dequeue(now), Deq::Wait(_)));
        // A second later the 100 IOPS rate has accrued past 30 tokens
        // (clamped to the new 50 cap), so the whole backlog drains.
        let later = now + Duration::from_secs(1);
        assert_eq!(drain_at(&s, later, 40).len(), 30);
    }

    #[test]
    fn reopen_with_alternating_spec_mints_no_burst() {
        let s = QosScheduler::new();
        let now = t0();
        let v = VolumeId(1);
        let a = QosTag::new(v, QosSpec::new(0, 100, 5));
        let b = QosTag::new(v, QosSpec::new(0, 100, 6));
        for i in 0..40u32 {
            s.enqueue(if i % 2 == 0 { &a } else { &b }, i, now);
        }
        // The first open's burst (5) is all the credit there is; flapping
        // the spec on every enqueue refills nothing.
        assert_eq!(drain_at(&s, now, 40).len(), 5);
        assert!(matches!(s.dequeue(now), Deq::Wait(_)));
    }

    #[test]
    fn reopen_does_not_reset_reservation_credit() {
        let s = QosScheduler::new();
        let now = t0();
        let v = VolumeId(1);
        let t1 = QosTag::new(v, QosSpec::new(1000, 0, 0));
        for i in 0..400u32 {
            s.enqueue(&t1, i, now);
        }
        // Consumes the whole 250 ms catch-up window of reservation
        // credit; the tail dispatches via the weight phase.
        drain_at(&s, now, 400);
        let before = s.counters().get("vol1.served_reservation");
        assert!(before > 0);
        // Re-opening with a different floor must not re-arm the window.
        s.enqueue(&QosTag::new(v, QosSpec::new(2000, 0, 0)), 999u32, now);
        drain_at(&s, now, 1);
        assert_eq!(s.counters().get("vol1.served_reservation"), before);
    }

    #[test]
    fn limited_counts_deferred_ops_not_polls() {
        let s = QosScheduler::new();
        let now = t0();
        let tag = QosTag::new(VolumeId(1), QosSpec::new(0, 1000, 1));
        for i in 0..3u32 {
            s.enqueue(&tag, i, now);
        }
        assert_eq!(drain_at(&s, now, 1).len(), 1);
        // Several workers re-polling the same blocked head bill it once.
        for _ in 0..5 {
            assert!(matches!(s.dequeue(now), Deq::Wait(_)));
        }
        assert_eq!(s.counters().get("vol1.limited"), 1);
        assert_eq!(s.counters().get("limited"), 1);
        // Once the head dispatches, the next deferred head counts anew.
        let later = now + Duration::from_millis(2);
        assert_eq!(drain_at(&s, later, 1).len(), 1);
        assert!(matches!(s.dequeue(later), Deq::Wait(_)));
        assert!(matches!(s.dequeue(later), Deq::Wait(_)));
        assert_eq!(s.counters().get("vol1.limited"), 2);
    }

    #[test]
    fn clear_returns_queued_items() {
        let s = QosScheduler::new();
        let now = t0();
        s.enqueue(&QosTag::best_effort(), 1u32, now);
        s.enqueue(&QosTag::new(VolumeId(9), QosSpec::new(10, 0, 0)), 2, now);
        let mut drained = s.clear();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert!(s.is_empty());
    }

    #[test]
    fn spec_normalizes_min_above_max() {
        let s = QosSpec::new(5000, 1000, 0);
        assert_eq!(s.min_iops, 1000);
        // Unlimited ceiling keeps the floor as-is.
        assert_eq!(QosSpec::new(5000, 0, 0).min_iops, 5000);
    }

    #[test]
    fn scheduler_counts_phases() {
        let s = QosScheduler::new();
        let now = t0();
        s.enqueue(
            &QosTag::new(VolumeId(1), QosSpec::new(100, 0, 0)),
            1u32,
            now,
        );
        s.enqueue(&QosTag::best_effort(), 2u32, now);
        drain_at(&s, now, 2);
        assert_eq!(s.counters().get("served_reservation"), 1);
        assert_eq!(s.counters().get("served_weight"), 1);
        assert_eq!(s.counters().get("vol1.served_reservation"), 1);
        assert_eq!(s.counters().get("vol0.served_weight"), 1);
        assert_eq!(s.counters().get("enqueued"), 2);
        // Queue-wait histograms exist per volume.
        assert_eq!(s.hists().hist("vol1.queue_wait").count(), 1);
    }
}
