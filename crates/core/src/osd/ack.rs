//! Ordered ack delivery (§3.1, last paragraph).
//!
//! The batching completion worker can finish acks out of order. "We added
//! logic that sends client sequential acks if a client wants to receive
//! ordered acks as requested. Completion worker can sort these unordered
//! acks before sending them to clients." Ordering is per `(client, PG)`
//! lane in *arrival* order: an ack is released only after every
//! earlier-arrived op on its lane has been released.

use crate::messages::ClientReply;
use afc_common::lockdep::{classes, TrackedMutex};
use afc_common::{ClientId, PgId};
use afc_messenger::Addr;
use std::collections::{BTreeMap, HashMap};

struct Lane {
    next_assign: u64,
    next_release: u64,
    held: BTreeMap<u64, (Addr, ClientReply)>,
}

/// Per-(client, PG) ack sequencer.
pub struct OrderedAcker {
    lanes: TrackedMutex<HashMap<(ClientId, PgId), Lane>>,
}

impl Default for OrderedAcker {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedAcker {
    /// Create an empty sequencer.
    pub fn new() -> Self {
        OrderedAcker {
            lanes: TrackedMutex::new(&classes::ACK_LANES, HashMap::new()),
        }
    }

    /// Assign the next lane slot for an arriving op.
    pub fn assign(&self, client: ClientId, pg: PgId) -> u64 {
        let mut lanes = self.lanes.lock();
        let lane = lanes.entry((client, pg)).or_insert(Lane {
            next_assign: 0,
            next_release: 0,
            held: BTreeMap::new(),
        });
        let idx = lane.next_assign;
        lane.next_assign += 1;
        idx
    }

    /// Offer a completed ack. Returns every ack now releasable, in order
    /// (possibly empty if an earlier slot is still outstanding).
    pub fn release(
        &self,
        client: ClientId,
        pg: PgId,
        idx: u64,
        to: Addr,
        reply: ClientReply,
    ) -> Vec<(Addr, ClientReply)> {
        let mut lanes = self.lanes.lock();
        let Some(lane) = lanes.get_mut(&(client, pg)) else {
            return vec![(to, reply)];
        };
        lane.held.insert(idx, (to, reply));
        let mut out = Vec::new();
        while let Some(entry) = lane.held.remove(&lane.next_release) {
            out.push(entry);
            lane.next_release += 1;
        }
        out
    }

    /// Acks currently held back (diagnostics).
    pub fn held(&self) -> usize {
        self.lanes.lock().values().map(|l| l.held.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::{OpId, PoolId};

    fn reply(n: u64) -> ClientReply {
        ClientReply {
            op_id: OpId(n),
            result: Ok(crate::messages::OpOutcome::Done),
        }
    }

    fn pg() -> PgId {
        PgId {
            pool: PoolId(0),
            seq: 0,
        }
    }

    const CLIENT: ClientId = ClientId(1);
    const TO: Addr = Addr::Client(ClientId(1));

    #[test]
    fn in_order_completion_releases_immediately() {
        let a = OrderedAcker::new();
        let i0 = a.assign(CLIENT, pg());
        let i1 = a.assign(CLIENT, pg());
        assert_eq!(a.release(CLIENT, pg(), i0, TO, reply(0)).len(), 1);
        assert_eq!(a.release(CLIENT, pg(), i1, TO, reply(1)).len(), 1);
        assert_eq!(a.held(), 0);
    }

    #[test]
    fn out_of_order_completion_is_resequenced() {
        let a = OrderedAcker::new();
        let i0 = a.assign(CLIENT, pg());
        let i1 = a.assign(CLIENT, pg());
        let i2 = a.assign(CLIENT, pg());
        // Completion worker finishes 2 and 1 before 0.
        assert!(a.release(CLIENT, pg(), i2, TO, reply(2)).is_empty());
        assert!(a.release(CLIENT, pg(), i1, TO, reply(1)).is_empty());
        assert_eq!(a.held(), 2);
        let burst = a.release(CLIENT, pg(), i0, TO, reply(0));
        let ids: Vec<u64> = burst.iter().map(|(_, r)| r.op_id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(a.held(), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let a = OrderedAcker::new();
        let pg2 = PgId {
            pool: PoolId(0),
            seq: 1,
        };
        let x = a.assign(CLIENT, pg());
        let _y0 = a.assign(CLIENT, pg2);
        let y1 = a.assign(CLIENT, pg2);
        // pg2's later slot is blocked only by pg2's earlier slot, not pg()'s.
        assert!(a.release(CLIENT, pg2, y1, TO, reply(11)).is_empty());
        assert_eq!(a.release(CLIENT, pg(), x, TO, reply(0)).len(), 1);
    }

    #[test]
    fn unknown_lane_passes_through() {
        let a = OrderedAcker::new();
        assert_eq!(a.release(CLIENT, pg(), 0, TO, reply(9)).len(), 1);
    }
}
