//! Ordered ack delivery (§3.1, last paragraph), sharded per PG shard.
//!
//! The batching completion worker can finish acks out of order. "We added
//! logic that sends client sequential acks if a client wants to receive
//! ordered acks as requested. Completion worker can sort these unordered
//! acks before sending them to clients." Ordering is per `(client, PG)`
//! lane in *arrival* order: an ack is released only after every
//! earlier-arrived op on its lane has been released.
//!
//! Lanes live in [`COMPLETION_SHARDS`] independent tables keyed by the
//! PG's completion shard ([`pg_shard`]), so acks on different PG shards
//! never contend on one lock. A lane is always wholly contained in one
//! shard (its key starts with the PG), so ordering is unaffected.

use crate::messages::ClientReply;
use afc_common::lockdep::{classes, TrackedMutex};
use afc_common::{ClientId, PgId};
use afc_messenger::Addr;
use std::collections::{BTreeMap, HashMap};

/// Completion-path shard count. Power of two. Every per-PG completion
/// structure (ack lanes, rep waits, push waits, replica dedup) is split
/// this many ways; a PG's traffic always lands on [`pg_shard`]`(pg)`.
pub const COMPLETION_SHARDS: usize = 16;

/// The completion shard a PG's acks, rep-waits and dedup state live on.
#[inline]
pub fn pg_shard(pg: PgId) -> usize {
    (pg.seq as usize) & (COMPLETION_SHARDS - 1)
}

struct Lane {
    next_assign: u64,
    next_release: u64,
    held: BTreeMap<u64, (Addr, ClientReply)>,
}

/// Per-(client, PG) ack sequencer, sharded by PG shard.
pub struct OrderedAcker {
    shards: Vec<TrackedMutex<HashMap<(ClientId, PgId), Lane>>>,
}

impl Default for OrderedAcker {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedAcker {
    /// Create an empty sequencer.
    pub fn new() -> Self {
        OrderedAcker {
            shards: (0..COMPLETION_SHARDS)
                .map(|_| TrackedMutex::new(&classes::ACK_LANES, HashMap::new()))
                .collect(),
        }
    }

    /// Assign the next lane slot for an arriving op.
    pub fn assign(&self, client: ClientId, pg: PgId) -> u64 {
        let mut lanes = self.shards[pg_shard(pg)].lock();
        let lane = lanes.entry((client, pg)).or_insert(Lane {
            next_assign: 0,
            next_release: 0,
            held: BTreeMap::new(),
        });
        let idx = lane.next_assign;
        lane.next_assign += 1;
        idx
    }

    /// Offer a completed ack. Returns every ack now releasable, in order
    /// (possibly empty if an earlier slot is still outstanding).
    pub fn release(
        &self,
        client: ClientId,
        pg: PgId,
        idx: u64,
        to: Addr,
        reply: ClientReply,
    ) -> Vec<(Addr, ClientReply)> {
        let mut lanes = self.shards[pg_shard(pg)].lock();
        let Some(lane) = lanes.get_mut(&(client, pg)) else {
            return vec![(to, reply)];
        };
        lane.held.insert(idx, (to, reply));
        let mut out = Vec::new();
        while let Some(entry) = lane.held.remove(&lane.next_release) {
            out.push(entry);
            lane.next_release += 1;
        }
        out
    }

    /// Acks currently held back (diagnostics). Shards are visited one at
    /// a time — never two shard locks at once.
    pub fn held(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|l| l.held.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::{OpId, PoolId};

    fn reply(n: u64) -> ClientReply {
        ClientReply {
            op_id: OpId(n),
            result: Ok(crate::messages::OpOutcome::Done),
        }
    }

    fn pg() -> PgId {
        PgId {
            pool: PoolId(0),
            seq: 0,
        }
    }

    const CLIENT: ClientId = ClientId(1);
    const TO: Addr = Addr::Client(ClientId(1));

    #[test]
    fn shard_map_is_total_and_stable() {
        for seq in 0..256u32 {
            let pg = PgId {
                pool: PoolId(0),
                seq,
            };
            let s = pg_shard(pg);
            assert!(s < COMPLETION_SHARDS);
            assert_eq!(s, pg_shard(pg));
        }
        assert!(COMPLETION_SHARDS.is_power_of_two());
    }

    #[test]
    fn in_order_completion_releases_immediately() {
        let a = OrderedAcker::new();
        let i0 = a.assign(CLIENT, pg());
        let i1 = a.assign(CLIENT, pg());
        assert_eq!(a.release(CLIENT, pg(), i0, TO, reply(0)).len(), 1);
        assert_eq!(a.release(CLIENT, pg(), i1, TO, reply(1)).len(), 1);
        assert_eq!(a.held(), 0);
    }

    #[test]
    fn out_of_order_completion_is_resequenced() {
        let a = OrderedAcker::new();
        let i0 = a.assign(CLIENT, pg());
        let i1 = a.assign(CLIENT, pg());
        let i2 = a.assign(CLIENT, pg());
        // Completion worker finishes 2 and 1 before 0.
        assert!(a.release(CLIENT, pg(), i2, TO, reply(2)).is_empty());
        assert!(a.release(CLIENT, pg(), i1, TO, reply(1)).is_empty());
        assert_eq!(a.held(), 2);
        let burst = a.release(CLIENT, pg(), i0, TO, reply(0));
        let ids: Vec<u64> = burst.iter().map(|(_, r)| r.op_id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(a.held(), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let a = OrderedAcker::new();
        let pg2 = PgId {
            pool: PoolId(0),
            seq: 1,
        };
        let x = a.assign(CLIENT, pg());
        let _y0 = a.assign(CLIENT, pg2);
        let y1 = a.assign(CLIENT, pg2);
        // pg2's later slot is blocked only by pg2's earlier slot, not pg()'s.
        assert!(a.release(CLIENT, pg2, y1, TO, reply(11)).is_empty());
        assert_eq!(a.release(CLIENT, pg(), x, TO, reply(0)).len(), 1);
    }

    #[test]
    fn lanes_on_different_shards_are_independent() {
        // seq 0 and seq 1 land on different shards (different locks); the
        // behavior must match the same-shard case exactly.
        let a = OrderedAcker::new();
        let pg_a = pg();
        let pg_b = PgId {
            pool: PoolId(0),
            seq: 17, // shard 1
        };
        assert_ne!(pg_shard(pg_a), pg_shard(pg_b));
        let x = a.assign(CLIENT, pg_a);
        let y = a.assign(CLIENT, pg_b);
        assert_eq!(a.release(CLIENT, pg_b, y, TO, reply(1)).len(), 1);
        assert_eq!(a.release(CLIENT, pg_a, x, TO, reply(0)).len(), 1);
        assert_eq!(a.held(), 0);
    }

    #[test]
    fn unknown_lane_passes_through() {
        let a = OrderedAcker::new();
        assert_eq!(a.release(CLIENT, pg(), 0, TO, reply(9)).len(), 1);
    }
}
