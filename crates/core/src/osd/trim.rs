//! Contiguous-prefix tracking for journal trimming.
//!
//! Filestore applies complete out of order across PGs, but the journal ring
//! frees space front-to-back, so the OSD may only trim through the longest
//! contiguous prefix of applied journal sequences.

use std::collections::BTreeSet;

/// Tracks applied journal sequences and yields the trim watermark.
#[derive(Debug, Default)]
pub struct TrimTracker {
    /// Highest sequence such that all sequences `<= trimmed` are applied.
    trimmed: u64,
    /// Applied sequences beyond the contiguous prefix.
    done: BTreeSet<u64>,
}

impl TrimTracker {
    /// Create a tracker expecting sequences starting at 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a tracker that treats everything `<= watermark` as already
    /// trimmed (crash recovery: sequences below the journal's oldest
    /// surviving entry were trimmed before the crash).
    pub fn resume_from(watermark: u64) -> Self {
        TrimTracker {
            trimmed: watermark,
            done: BTreeSet::new(),
        }
    }

    /// Mark `seq` applied. Returns the new watermark if it advanced.
    pub fn mark(&mut self, seq: u64) -> Option<u64> {
        if seq <= self.trimmed {
            return None; // duplicate
        }
        self.done.insert(seq);
        let before = self.trimmed;
        while self.done.remove(&(self.trimmed + 1)) {
            self.trimmed += 1;
        }
        (self.trimmed > before).then_some(self.trimmed)
    }

    /// Current watermark.
    pub fn watermark(&self) -> u64 {
        self.trimmed
    }

    /// Applied-but-untrimmable sequences (gap diagnostics).
    pub fn stranded(&self) -> usize {
        self.done.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_marks_advance_each_time() {
        let mut t = TrimTracker::new();
        assert_eq!(t.mark(1), Some(1));
        assert_eq!(t.mark(2), Some(2));
        assert_eq!(t.mark(3), Some(3));
        assert_eq!(t.stranded(), 0);
    }

    #[test]
    fn out_of_order_waits_for_gap() {
        let mut t = TrimTracker::new();
        assert_eq!(t.mark(2), None);
        assert_eq!(t.mark(3), None);
        assert_eq!(t.stranded(), 2);
        assert_eq!(t.mark(1), Some(3));
        assert_eq!(t.stranded(), 0);
        assert_eq!(t.watermark(), 3);
    }

    #[test]
    fn resume_from_skips_pre_crash_prefix() {
        let mut t = TrimTracker::resume_from(41);
        assert_eq!(t.watermark(), 41);
        assert_eq!(t.mark(41), None, "pre-crash seq is a duplicate");
        assert_eq!(t.mark(43), None);
        assert_eq!(t.mark(42), Some(43));
    }

    #[test]
    fn duplicates_ignored() {
        let mut t = TrimTracker::new();
        t.mark(1);
        assert_eq!(t.mark(1), None);
        assert_eq!(t.watermark(), 1);
    }

    #[test]
    fn interleaved_pattern() {
        let mut t = TrimTracker::new();
        let order = [5u64, 1, 3, 2, 7, 4, 6];
        let mut last = 0;
        for s in order {
            if let Some(w) = t.mark(s) {
                assert!(w > last);
                last = w;
            }
        }
        assert_eq!(t.watermark(), 7);
        assert_eq!(t.stranded(), 0);
    }
}
