//! Write-path stage tracing (Figure 3).
//!
//! A sampled subset of write ops records a wall-clock timestamp at each
//! pipeline stage; the Figure 3 harness averages the deltas to print the
//! paper's latency breakdown: message processing → PG-queue dequeue →
//! journal submit (PG lock + replication send + metadata read) → journal
//! commit → completion hand-off → replica-ack handling → client reply.

use afc_common::metrics::{Histogram, Metrics};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Raw per-op stage timestamps.
#[derive(Debug, Clone, Copy)]
pub struct TraceTimes {
    /// Message received by the messenger dispatch.
    pub recv: Instant,
    /// Enqueued on the PG op queue (messenger dispatch work done).
    pub queued: Option<Instant>,
    /// Dequeued by an op worker (PG work started).
    pub dequeue: Option<Instant>,
    /// Journal submit issued.
    pub jsubmit: Option<Instant>,
    /// Local journal commit observed.
    pub jcommit: Option<Instant>,
    /// Completion handling finished (PG-backend hand-off done).
    pub handled: Option<Instant>,
    /// Last replica ack processed.
    pub replicas: Option<Instant>,
    /// Client reply sent.
    pub reply: Option<Instant>,
}

impl TraceTimes {
    /// Start a trace at message receive time.
    pub fn start() -> Self {
        TraceTimes {
            recv: Instant::now(),
            queued: None,
            dequeue: None,
            jsubmit: None,
            jcommit: None,
            handled: None,
            replicas: None,
            reply: None,
        }
    }
}

/// Per-stage durations of one completed write.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSample {
    /// (1a) receive → PG-queue enqueue (messenger dispatch: primary
    /// check, throttle, op setup).
    pub dispatch: Duration,
    /// (1b) enqueue → op-queue dequeue (pure PG-queue wait).
    pub queue: Duration,
    /// (2) dequeue → journal submit (PG lock, logging, metadata read,
    /// replication send).
    pub submit: Duration,
    /// (4) journal submit → journal commit.
    pub journal: Duration,
    /// (5) journal commit → completion handled.
    pub completion: Duration,
    /// (6)(7) completion → last replica ack processed.
    pub replica_wait: Duration,
    /// final ack hand-off → reply on the wire.
    pub reply: Duration,
    /// End-to-end.
    pub total: Duration,
}

impl StageSample {
    fn from_times(t: &TraceTimes) -> Option<StageSample> {
        let dequeue = t.dequeue?;
        let jsubmit = t.jsubmit?;
        let jcommit = t.jcommit?;
        let handled = t.handled?;
        let reply = t.reply?;
        // Replica acks may land before or after local completion handling.
        let replicas = t.replicas.unwrap_or(handled);
        // Traces predating the enqueue mark fold dispatch into queue.
        let queued = t.queued.unwrap_or(t.recv);
        let sat = |a: Instant, b: Instant| b.checked_duration_since(a).unwrap_or_default();
        Some(StageSample {
            dispatch: sat(t.recv, queued),
            queue: sat(queued, dequeue),
            submit: sat(dequeue, jsubmit),
            journal: sat(jsubmit, jcommit),
            completion: sat(jcommit, handled),
            replica_wait: sat(handled, replicas),
            reply: sat(replicas.max(handled), reply),
            total: sat(t.recv, reply),
        })
    }

    /// Component-wise mean of many samples.
    pub fn mean(samples: &[StageSample]) -> StageSample {
        if samples.is_empty() {
            return StageSample::default();
        }
        let n = samples.len() as u32;
        let sum = |f: fn(&StageSample) -> Duration| samples.iter().map(f).sum::<Duration>() / n;
        StageSample {
            dispatch: sum(|s| s.dispatch),
            queue: sum(|s| s.queue),
            submit: sum(|s| s.submit),
            journal: sum(|s| s.journal),
            completion: sum(|s| s.completion),
            replica_wait: sum(|s| s.replica_wait),
            reply: sum(|s| s.reply),
            total: sum(|s| s.total),
        }
    }
}

/// Latency histograms for the Figure 3 write-path stages, registered
/// under `<prefix>.<stage>` (e.g. `osd0.stage.journal`). Fed from the
/// sampled stage recorder, so counts reflect traced ops only.
pub struct StageHists {
    /// `messenger`: receive → PG-queue enqueue.
    pub messenger: Histogram,
    /// `pg_queue`: enqueue → op-worker dequeue.
    pub pg_queue: Histogram,
    /// `submit`: dequeue → journal submit (PG lock, logging, metadata
    /// read, replication send).
    pub submit: Histogram,
    /// `journal`: journal submit → commit.
    pub journal: Histogram,
    /// `apply`: journal commit → completion handled.
    pub apply: Histogram,
    /// `ack`: completion handled → client reply (replica wait + reply).
    pub ack: Histogram,
    /// `total`: end-to-end.
    pub total: Histogram,
}

impl StageHists {
    /// Create the stage histograms registered under `<prefix>.<stage>`.
    pub fn register(m: &Metrics, prefix: &str) -> StageHists {
        let h = |stage: &str| m.histogram(format!("{prefix}.{stage}"));
        StageHists {
            messenger: h("messenger"),
            pg_queue: h("pg_queue"),
            submit: h("submit"),
            journal: h("journal"),
            apply: h("apply"),
            ack: h("ack"),
            total: h("total"),
        }
    }

    /// Record one completed sample into every stage histogram.
    pub fn record(&self, s: &StageSample) {
        self.messenger.observe(s.dispatch);
        self.pg_queue.observe(s.queue);
        self.submit.observe(s.submit);
        self.journal.observe(s.journal);
        self.apply.observe(s.completion);
        self.ack.observe(s.replica_wait + s.reply);
        self.total.observe(s.total);
    }
}

/// Sampling recorder: every `every`-th write op carries a trace.
pub struct StageRecorder {
    every: u64,
    seq: AtomicU64,
    samples: Mutex<Vec<StageSample>>,
    cap: usize,
    hists: OnceLock<StageHists>,
}

impl StageRecorder {
    /// Record one in `every` ops, keeping at most `cap` samples.
    pub fn new(every: u64, cap: usize) -> Self {
        StageRecorder {
            every: every.max(1),
            seq: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
            cap,
            hists: OnceLock::new(),
        }
    }

    /// Attach per-stage metric histograms; every finished trace is also
    /// recorded there (first attach wins).
    pub fn attach_hists(&self, hists: StageHists) {
        let _ = self.hists.set(hists);
    }

    /// Should the next op be traced?
    pub fn should_trace(&self) -> bool {
        self.seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// Finalize a trace into a sample.
    pub fn finish(&self, times: &TraceTimes) {
        if let Some(s) = StageSample::from_times(times) {
            if let Some(h) = self.hists.get() {
                h.record(&s);
            }
            let mut v = self.samples.lock();
            if v.len() < self.cap {
                v.push(s);
            }
        }
    }

    /// Snapshot collected samples.
    pub fn samples(&self) -> Vec<StageSample> {
        self.samples.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times_ms(marks: [u64; 7]) -> TraceTimes {
        let base = Instant::now();
        let at = |ms: u64| base + Duration::from_millis(ms);
        TraceTimes {
            recv: at(marks[0]),
            queued: None,
            dequeue: Some(at(marks[1])),
            jsubmit: Some(at(marks[2])),
            jcommit: Some(at(marks[3])),
            handled: Some(at(marks[4])),
            replicas: Some(at(marks[5])),
            reply: Some(at(marks[6])),
        }
    }

    #[test]
    fn sample_deltas() {
        let t = times_ms([0, 1, 4, 12, 13, 15, 16]);
        let s = StageSample::from_times(&t).unwrap();
        // No enqueue mark: dispatch folds into zero, queue = recv→dequeue.
        assert_eq!(s.dispatch, Duration::ZERO);
        assert_eq!(s.queue, Duration::from_millis(1));
        assert_eq!(s.submit, Duration::from_millis(3));
        assert_eq!(s.journal, Duration::from_millis(8));
        assert_eq!(s.completion, Duration::from_millis(1));
        assert_eq!(s.replica_wait, Duration::from_millis(2));
        assert_eq!(s.reply, Duration::from_millis(1));
        assert_eq!(s.total, Duration::from_millis(16));
    }

    #[test]
    fn replicas_before_completion_is_safe() {
        // Replica acks arriving before local completion handling must not
        // underflow.
        let t = times_ms([0, 1, 2, 3, 8, 5, 9]);
        let s = StageSample::from_times(&t).unwrap();
        assert_eq!(s.replica_wait, Duration::ZERO);
        assert_eq!(s.reply, Duration::from_millis(1));
    }

    #[test]
    fn incomplete_trace_yields_none() {
        let mut t = TraceTimes::start();
        t.dequeue = Some(Instant::now());
        assert!(StageSample::from_times(&t).is_none());
    }

    #[test]
    fn queued_mark_splits_dispatch_from_queue_wait() {
        let mut t = times_ms([0, 5, 6, 7, 8, 9, 10]);
        t.queued = Some(t.recv + Duration::from_millis(2));
        let s = StageSample::from_times(&t).unwrap();
        assert_eq!(s.dispatch, Duration::from_millis(2));
        assert_eq!(s.queue, Duration::from_millis(3));
        assert_eq!(s.total, Duration::from_millis(10));
    }

    #[test]
    fn attached_hists_receive_samples() {
        let m = Metrics::new();
        let r = StageRecorder::new(1, 8);
        r.attach_hists(StageHists::register(&m, "osd0.stage"));
        for _ in 0..12 {
            r.finish(&times_ms([0, 1, 2, 3, 4, 5, 6]));
        }
        let snap = m.snapshot();
        for stage in [
            "messenger",
            "pg_queue",
            "submit",
            "journal",
            "apply",
            "ack",
            "total",
        ] {
            let h = snap
                .histogram(&format!("osd0.stage.{stage}"))
                .unwrap_or_else(|| panic!("missing {stage}"));
            // Histograms keep counting past the sample cap.
            assert_eq!(h.count, 12, "{stage}");
        }
        assert_eq!(r.samples().len(), 8);
    }

    #[test]
    fn recorder_samples_at_rate() {
        let r = StageRecorder::new(10, 100);
        let traced = (0..100).filter(|_| r.should_trace()).count();
        assert_eq!(traced, 10);
    }

    #[test]
    fn recorder_caps_storage() {
        let r = StageRecorder::new(1, 5);
        for _ in 0..20 {
            let t = times_ms([0, 1, 2, 3, 4, 5, 6]);
            r.finish(&t);
        }
        assert_eq!(r.samples().len(), 5);
    }

    #[test]
    fn mean_of_samples() {
        let a = StageSample::from_times(&times_ms([0, 1, 2, 3, 4, 5, 6])).unwrap();
        let b = StageSample::from_times(&times_ms([0, 3, 6, 9, 12, 15, 18])).unwrap();
        let m = StageSample::mean(&[a, b]);
        assert_eq!(m.queue, Duration::from_millis(2));
        assert_eq!(m.total, Duration::from_millis(12));
        assert_eq!(StageSample::mean(&[]).total, Duration::ZERO);
    }
}
