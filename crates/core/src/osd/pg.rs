//! Placement groups: the unit of ordering and locking.
//!
//! Every request, completion and ack for a PG serializes on its **PG lock**.
//! The paper's first optimization (§3.1) is the per-PG **pending queue**:
//! ops are appended to a FIFO next to the lock, and
//!
//! - in the **community** path a worker *blocks* on the PG lock before
//!   draining ("it has to be blocked since the necessary PG lock is already
//!   held by previous request, which in turn blocks the whole process");
//! - in the **pending-queue** path a worker *try-locks*: on failure the op
//!   stays queued and the current lock holder drains it, so the worker
//!   immediately moves on to other PGs' work.
//!
//! Both paths drain the same FIFO, so per-PG ordering — including
//! write-after-write and read-after-write — is identical, which is the
//! invariant the paper insists on preserving.

use afc_common::lockdep::{classes, TrackedMutex, TrackedMutexGuard};
use afc_common::{Epoch, OsdId, PgId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Health of a PG as seen by its acting primary.
///
/// Precedence when several conditions hold: `Peering` (map changed, the
/// authoritative log is being agreed — client I/O is rejected with
/// `WrongEpoch`) > `Recovering` (pushes in flight to stale-but-up peers;
/// I/O continues) > `Degraded` (a placed peer is down; I/O continues at
/// reduced redundancy while its missed ops accumulate) > `Active`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PgHealth {
    /// All placed replicas up to date.
    #[default]
    Active,
    /// Serving I/O with a down replica; missed ops are being journaled.
    Degraded,
    /// Serving I/O while pushing missed/backfill objects to peers.
    Recovering,
    /// Map changed; agreeing on the authoritative log. I/O rejected.
    Peering,
}

/// One in-flight peering round (GetInfo fan-out), tagged by the map epoch
/// that started it so stale replies are discarded.
#[derive(Debug)]
pub struct PeeringRound {
    /// Epoch this round peers for.
    pub epoch: Epoch,
    /// Peers that have not answered yet.
    pub awaiting: BTreeSet<OsdId>,
    /// `last_update` reported by each peer so far.
    pub infos: BTreeMap<OsdId, u64>,
}

/// Mutable PG state guarded by the PG lock.
#[derive(Debug, Default)]
pub struct PgState {
    /// Next PG-log sequence to assign.
    pub next_pg_seq: u64,
    /// Highest journal-committed PG sequence.
    pub last_committed: u64,
    /// Highest filestore-applied PG sequence.
    pub last_applied: u64,
    /// PG info version (bumped per mutation).
    pub info_version: u64,
    /// Current health (primary's view; replicas stay `Active`).
    pub health: PgHealth,
    /// In-flight peering round, if any.
    pub peering: Option<PeeringRound>,
    /// Acting set agreed by the last completed peering round (used to
    /// skip re-peering when an epoch bump did not move this PG).
    pub acting: Vec<OsdId>,
    /// Objects each absent/stale peer is missing (the degraded-write
    /// journal: written while the peer was not in the acting set, or
    /// discovered stale during peering).
    pub peer_missing: BTreeMap<OsdId, BTreeSet<String>>,
    /// Pushes in flight: `(peer, object) → generation`. The write path
    /// bumps the generation when it supersedes an in-flight push with an
    /// inline one, so the stale push is dropped instead of sent.
    pub recovering: BTreeMap<(OsdId, String), u64>,
    /// Generation counter for `recovering` entries.
    pub push_gen: u64,
    /// Peers needing full backfill (no per-object missing log — e.g. a
    /// CRUSH replacement): the pump enumerates local objects into
    /// `peer_missing` on its next pass.
    pub backfill: BTreeSet<OsdId>,
    /// Deferred request to install a `pg_temp` override (applied by the
    /// heartbeat ticker — never while holding the PG lock).
    pub want_pg_temp: Option<Vec<OsdId>>,
    /// Deferred request to clear this PG's `pg_temp` override.
    pub want_clear_temp: bool,
}

impl PgState {
    /// Objects still owed to `peer` (missing or push in flight).
    pub fn owes_peer(&self, peer: OsdId) -> bool {
        self.peer_missing.get(&peer).is_some_and(|s| !s.is_empty())
            || self.recovering.keys().any(|(p, _)| *p == peer)
    }
}

/// Work executed under the PG lock.
pub type PgWork = Box<dyn FnOnce(&mut PgState) + Send>;

/// A placement group: lock + state + pending FIFO + wait accounting.
pub struct Pg {
    id: PgId,
    state: TrackedMutex<PgState>,
    pending: TrackedMutex<VecDeque<PgWork>>,
    lock_waits: AtomicU64,
    lock_wait_us: AtomicU64,
    processed: AtomicU64,
}

impl Pg {
    /// Create a PG.
    pub fn new(id: PgId) -> Arc<Self> {
        Arc::new(Pg {
            id,
            state: TrackedMutex::new(&classes::PG_STATE, PgState::default()),
            pending: TrackedMutex::new(&classes::PG_PENDING, VecDeque::new()),
            lock_waits: AtomicU64::new(0),
            lock_wait_us: AtomicU64::new(0),
            processed: AtomicU64::new(0),
        })
    }

    /// The PG id.
    pub fn id(&self) -> PgId {
        self.id
    }

    /// Append work to the pending FIFO without draining. Dispatch threads
    /// use this so arrival order is fixed before op workers race to drain.
    pub fn queue(&self, work: PgWork) {
        self.pending.lock().push_back(work);
    }

    /// Queue `work` and drain the FIFO.
    ///
    /// `blocking = true` is the community path: wait for the PG lock (the
    /// wait is accounted). `blocking = false` is the pending-queue path:
    /// if the lock is held, leave the work for the holder and return
    /// immediately.
    pub fn submit(&self, work: PgWork, blocking: bool) {
        self.queue(work);
        self.drain(blocking);
    }

    /// Drain the pending FIFO under the PG lock (see [`Pg::submit`]).
    pub fn drain(&self, blocking: bool) {
        loop {
            let guard = if blocking {
                Some(self.lock_measured())
            } else {
                self.state.try_lock()
            };
            let Some(mut guard) = guard else { return };
            loop {
                let next = self.pending.lock().pop_front();
                let Some(w) = next else { break };
                w(&mut guard);
                self.processed.fetch_add(1, Ordering::Relaxed);
            }
            drop(guard);
            // Work may have arrived between the final drain check and the
            // unlock; if so, retry (otherwise it could strand until the
            // next submission).
            if self.pending.lock().is_empty() {
                return;
            }
        }
    }

    /// Acquire the PG lock directly (completion handlers in the community
    /// path), accounting the wait.
    pub fn lock_measured(&self) -> TrackedMutexGuard<'_, PgState> {
        if let Some(g) = self.state.try_lock() {
            return g;
        }
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let g = self.state.lock();
        self.lock_wait_us
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        g
    }

    /// Work items executed so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Currently queued (undrained) work items.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// `(contended acquisitions, total wait µs)`.
    pub fn lock_stats(&self) -> (u64, u64) {
        (
            self.lock_waits.load(Ordering::Relaxed),
            self.lock_wait_us.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::{PgId, PoolId};
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn pg() -> Arc<Pg> {
        Pg::new(PgId {
            pool: PoolId(0),
            seq: 1,
        })
    }

    #[test]
    fn submit_runs_in_fifo_order() {
        let pg = pg();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..100 {
            let o = Arc::clone(&order);
            pg.submit(Box::new(move |_st| o.lock().push(i)), true);
        }
        let o = order.lock();
        assert_eq!(*o, (0..100).collect::<Vec<_>>());
        assert_eq!(pg.processed(), 100);
    }

    #[test]
    fn nonblocking_submit_defers_to_holder() {
        let pg = pg();
        let ran = Arc::new(AtomicUsize::new(0));
        // Hold the lock on another thread, submit non-blocking, verify the
        // holder's drain picks the work up.
        let pg2 = Arc::clone(&pg);
        let ran2 = Arc::clone(&ran);
        let holder = std::thread::spawn(move || {
            // Simulate a long op holding the PG lock via submit.
            pg2.submit(
                Box::new(move |_st| {
                    std::thread::sleep(Duration::from_millis(50));
                    ran2.fetch_add(1, Ordering::SeqCst);
                }),
                true,
            );
        });
        std::thread::sleep(Duration::from_millis(10));
        let ran3 = Arc::clone(&ran);
        let t0 = Instant::now();
        pg.submit(
            Box::new(move |_st| {
                ran3.fetch_add(1, Ordering::SeqCst);
            }),
            false,
        );
        // Non-blocking submit returned quickly even though the lock is held.
        assert!(
            t0.elapsed() < Duration::from_millis(30),
            "{:?}",
            t0.elapsed()
        );
        holder.join().unwrap();
        // The holder drained our deferred work before releasing.
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        assert_eq!(pg.pending_len(), 0);
    }

    #[test]
    fn blocking_submit_waits_and_accounts() {
        let pg = pg();
        let pg2 = Arc::clone(&pg);
        let holder = std::thread::spawn(move || {
            pg2.submit(
                Box::new(|_st| std::thread::sleep(Duration::from_millis(40))),
                true,
            );
        });
        std::thread::sleep(Duration::from_millis(10));
        // Worker blocks until the holder finishes... but the holder drains
        // our op itself; either way ordering and accounting hold.
        pg.submit(Box::new(|_st| {}), true);
        holder.join().unwrap();
        assert_eq!(pg.processed(), 2);
    }

    #[test]
    fn lock_measured_accounts_contention() {
        let pg = pg();
        let g = pg.lock_measured();
        let pg2 = Arc::clone(&pg);
        let h = std::thread::spawn(move || {
            let _g = pg2.lock_measured();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        h.join().unwrap();
        let (waits, wait_us) = pg.lock_stats();
        assert_eq!(waits, 1);
        assert!(wait_us >= 15_000, "wait_us={wait_us}");
    }

    #[test]
    fn state_mutations_persist() {
        let pg = pg();
        pg.submit(
            Box::new(|st| {
                st.next_pg_seq = 10;
                st.last_committed = 5;
            }),
            true,
        );
        pg.submit(
            Box::new(|st| {
                assert_eq!(st.next_pg_seq, 10);
                assert_eq!(st.last_committed, 5);
            }),
            true,
        );
    }

    #[test]
    fn concurrent_mixed_submissions_all_run() {
        let pg = pg();
        let count = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..8 {
                let pg = Arc::clone(&pg);
                let count = Arc::clone(&count);
                s.spawn(move || {
                    for _ in 0..200 {
                        let c = Arc::clone(&count);
                        pg.submit(
                            Box::new(move |_| {
                                c.fetch_add(1, Ordering::Relaxed);
                            }),
                            t % 2 == 0,
                        );
                    }
                });
            }
        });
        // Every submitted item must eventually run (drain responsibility
        // hand-off must not strand work).
        let deadline = Instant::now() + Duration::from_secs(2);
        while count.load(Ordering::Relaxed) < 1600 && Instant::now() < deadline {
            pg.submit(Box::new(|_| {}), true); // nudge a drain
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(count.load(Ordering::Relaxed) >= 1600);
    }
}
