//! The object storage daemon.
//!
//! One `Osd` owns a filestore (RAID-0 flash), a journal (NVRAM region), a
//! logger, PG structures and the op pipeline threads. The pipeline follows
//! Figure 2(b) of the paper, with every §3 optimization switchable through
//! [`OsdTuning`]:
//!
//! ```text
//! client ──▶ messenger dispatch ──▶ PG queue ──▶ OP_WQ worker (PG lock)
//!                                                │  pg-log append
//!                                                │  replicate ▶ replicas
//!                                                ▼  journal submit
//!                               journal writer ▶ commit ▶ finisher
//!             community: finisher takes PG lock, queues filestore (may
//!                        block on throttle), handles acks via PG queue
//!             afceph:    OP-lock bookkeeping + dedicated batching
//!                        completion worker; acks fast-pathed
//! ```

pub mod ack;
pub mod pg;
pub mod trace;
pub mod trim;

pub use trace::StageSample;

use crate::messages::{ClientOp, ClientReply, ObjectOp, OpOutcome, OsdMsg, RepOp, RepOpReply};
use crate::monitor::SharedMap;
use crate::tuning::OsdTuning;
use ack::OrderedAcker;
use afc_common::lockdep::{classes, TrackedCondvar, TrackedMutex, TrackedRwLock};
use afc_common::metrics::{Counter as MetricCounter, Metrics};
use afc_common::{AfcError, ClientId, ObjectId, OpId, OsdId, PgId, Result};
use afc_device::BlockDev;
use afc_filestore::throttle::OwnedPermit;
use afc_filestore::{
    FileStore, FileStoreConfig, FileStoreStats, Throttle, Transaction, TxOp, TxnProfile,
};
use afc_journal::{Journal, JournalConfig, JournalStats};
use afc_logging::{Level, Logger};
use afc_messenger::{Addr, Dispatcher, Messenger, Network};
use bytes::Bytes;
use pg::{Pg, PgState};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use trace::{StageHists, StageRecorder, TraceTimes};
use trim::TrimTracker;

/// Parameters for spawning an OSD.
pub struct OsdParams {
    /// OSD id.
    pub id: OsdId,
    /// Tuning vector.
    pub tuning: OsdTuning,
    /// Data device (the OSD's RAID-0 flash set).
    pub data_dev: Arc<dyn BlockDev>,
    /// Journal device (NVRAM; may be shared across a node's OSDs).
    pub journal_dev: Arc<dyn BlockDev>,
    /// Journal ring capacity for this OSD (2 GiB in the paper's testbed).
    pub journal_capacity: u64,
    /// Shared, monitor-updated cluster map.
    pub map: SharedMap,
    /// The fabric.
    pub net: Arc<Network<OsdMsg>>,
}

/// Aggregated per-OSD statistics.
#[derive(Debug, Clone, Default)]
pub struct OsdStats {
    /// Client requests received.
    pub client_ops: u64,
    /// Writes acknowledged.
    pub writes: u64,
    /// Reads served.
    pub reads: u64,
    /// Replication sub-ops received (replica role).
    pub repops: u64,
    /// Replica acks processed (primary role).
    pub repacks: u64,
    /// Contended PG-lock acquisitions.
    pub pg_lock_waits: u64,
    /// Total PG-lock wait, microseconds.
    pub pg_lock_wait_us: u64,
    /// `osd_client_message_cap` throttle blocks.
    pub client_throttle_waits: u64,
    /// Total client-throttle wait, microseconds.
    pub client_throttle_wait_us: u64,
    /// Journal statistics.
    pub journal: JournalStats,
    /// Filestore statistics.
    pub filestore: FileStoreStats,
    /// KV store statistics.
    pub kv: afc_kvstore::DbStats,
    /// Data-device statistics.
    pub device: afc_device::DevStats,
    /// Debug-log entries submitted.
    pub log_submitted: u64,
    /// Debug-log submit wait, microseconds (blocking mode).
    pub log_wait_us: u64,
    /// Filestore applies that failed (injected/device faults). The journal
    /// entry is retained for `replay_journal` to re-apply.
    pub apply_failures: u64,
    /// Replication sub-ops retransmitted after an ack timeout.
    pub rep_resends: u64,
}

struct Progress {
    local_commit: bool,
    acks: usize,
    replied: bool,
}

/// An in-flight replicated write on the primary.
struct WriteOp {
    client: ClientId,
    op_id: OpId,
    reply_to: Addr,
    pg: Arc<Pg>,
    needed_acks: usize,
    progress: TrackedMutex<Progress>,
    permit: TrackedMutex<Option<OwnedPermit>>,
    trace: Option<TrackedMutex<TraceTimes>>,
    ack_lane: Option<u64>,
}

/// Primary-side record of one outstanding `Replicate`, kept until its
/// `RepAck` arrives. Carries everything needed to retransmit on timeout.
struct RepWait {
    op: Arc<WriteOp>,
    to: Addr,
    rep: RepOp,
    sent: Instant,
    resends: u32,
}

/// Replica-side dedup window so a retransmitted (or network-duplicated)
/// `Replicate` is re-acked, never re-journaled/re-applied. Bounded FIFO.
/// Keyed by (primary addr, rep_id): rep_ids are only unique per primary.
struct RepSeen {
    /// (primary, rep_id) → committed? (false: journal submit in flight).
    state: HashMap<(Addr, u64), bool>,
    order: VecDeque<(Addr, u64)>,
}

impl RepSeen {
    const CAP: usize = 8192;

    fn new() -> Self {
        RepSeen {
            state: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn insert(&mut self, key: (Addr, u64)) {
        self.state.insert(key, false);
        self.order.push_back(key);
        while self.order.len() > Self::CAP {
            if let Some(old) = self.order.pop_front() {
                self.state.remove(&old);
            }
        }
    }
}

enum CompletionEvent {
    PrimaryCommit {
        op: Arc<WriteOp>,
        jseq: u64,
        txn: Transaction,
        pg_seq: u64,
    },
    ReplicaCommit {
        pg: Arc<Pg>,
        jseq: u64,
        txn: Transaction,
        pg_seq: u64,
        primary: Addr,
        rep_id: u64,
    },
}

struct OpQueue {
    q: TrackedMutex<VecDeque<Arc<Pg>>>,
    cv: TrackedCondvar,
}

/// Read gate: a read must not observe the filestore before every write to
/// its object that was *ordered before it* (journal-acked but not yet
/// applied) has landed — Ceph's per-object sequencer behaviour that keeps
/// read-after-acked-write strongly consistent. Writes ordered after the
/// read do not delay it (no starvation under mixed workloads).
struct ApplyGate {
    objects: TrackedMutex<HashMap<String, (u64, u64)>>, // object → (enqueued, applied)
    cv: TrackedCondvar,
}

impl ApplyGate {
    fn new() -> Self {
        ApplyGate {
            objects: TrackedMutex::new(&classes::APPLY_GATE, HashMap::new()),
            cv: TrackedCondvar::new(),
        }
    }

    /// A write to `object` entered the pipeline.
    fn add(&self, object: &str) {
        self.objects
            .lock()
            .entry(object.to_string())
            .or_insert((0, 0))
            .0 += 1;
    }

    /// A write to `object` finished applying (no-op for untracked objects,
    /// e.g. replica-side applies that serve no reads).
    fn done(&self, object: &str) {
        let mut st = self.objects.lock();
        if let Some(e) = st.get_mut(object) {
            e.1 += 1;
            if e.1 >= e.0 {
                st.remove(object);
            }
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Current enqueue watermark for `object` (None: nothing pending).
    fn snapshot(&self, object: &str) -> Option<u64> {
        self.objects.lock().get(object).map(|e| e.0)
    }

    /// Wait until applies for `object` reach `target` (from [`Self::snapshot`]).
    fn wait_target(&self, object: &str, target: Option<u64>) {
        let Some(target) = target else { return };
        let mut st = self.objects.lock();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match st.get(object) {
                Some(&(_, applied)) if applied < target => {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        return; // fail open: a wedged apply must not hang reads
                    }
                }
                _ => return, // caught up or entry retired
            }
        }
    }

    /// Wait until every write enqueued *before now* has applied.
    fn wait_ordered(&self, object: &str) {
        self.wait_target(object, self.snapshot(object));
    }

    /// Drop all gate state and release every waiter (crash simulation:
    /// the gate is volatile bookkeeping).
    fn reset(&self) {
        self.objects.lock().clear();
        self.cv.notify_all();
    }
}

/// A read handed off to the disk-reader pool (§3.1/§4.3: with the pending
/// queue, "the read requests of other PG can be processed without delay" —
/// reads leave the PG pipeline once ordered and execute off the op worker).
struct ReadJob {
    from: Addr,
    op_id: OpId,
    obj_name: String,
    offset: u64,
    len: u32,
    permit: OwnedPermit,
    gate_target: Option<u64>,
}

struct OsdInner {
    id: OsdId,
    tuning: OsdTuning,
    logger: Arc<Logger>,
    store: Arc<FileStore>,
    journal: Arc<Journal>,
    msgr: OnceLock<Messenger<OsdMsg>>,
    map: SharedMap,
    pgs: TrackedRwLock<HashMap<PgId, Arc<Pg>>>,
    opq: OpQueue,
    client_throttle: Arc<Throttle>,
    rep_waits: TrackedMutex<HashMap<u64, RepWait>>,
    rep_seen: TrackedMutex<RepSeen>,
    next_rep_id: AtomicU64,
    trim: TrackedMutex<TrimTracker>,
    pending_apply: TrackedMutex<HashMap<u64, Transaction>>,
    apply_gate: ApplyGate,
    completion_tx: TrackedMutex<Option<crossbeam::channel::Sender<CompletionEvent>>>,
    reader_tx: TrackedMutex<Option<crossbeam::channel::Sender<ReadJob>>>,
    recorder: StageRecorder,
    acker: OrderedAcker,
    shutdown: AtomicBool,
    // counters (shared metric cells, registrable into a cluster registry)
    client_ops: MetricCounter,
    writes: MetricCounter,
    reads: MetricCounter,
    repops: MetricCounter,
    repacks: MetricCounter,
    apply_failures: MetricCounter,
    rep_resends: MetricCounter,
}

/// A running OSD daemon.
pub struct Osd {
    inner: Arc<OsdInner>,
    workers: TrackedMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Osd {
    /// Spawn an OSD: opens the filestore and journal, registers with the
    /// network, and starts the op-worker (and, in AFCeph mode, completion)
    /// threads.
    pub fn spawn(params: OsdParams) -> Result<Arc<Osd>> {
        let tuning = params.tuning.clone();
        let logger = Logger::new(tuning.logging.log_config());
        let fs_profile = if tuning.lightweight_txn {
            TxnProfile::Lightweight
        } else {
            TxnProfile::Community
        };
        let fs_cfg = FileStoreConfig {
            profile: fs_profile,
            queue_max_ops: tuning.filestore_queue_max_ops(),
            apply_threads: tuning.apply_threads,
            ..if tuning.lightweight_txn {
                FileStoreConfig::lightweight()
            } else {
                FileStoreConfig::community()
            }
        };
        let store = FileStore::new(Arc::clone(&params.data_dev), fs_cfg)?;
        let journal = Journal::new(
            Arc::clone(&params.journal_dev),
            JournalConfig {
                capacity: params.journal_capacity,
                ..JournalConfig::default()
            },
        );
        let inner = Arc::new(OsdInner {
            id: params.id,
            logger,
            store,
            journal,
            msgr: OnceLock::new(),
            map: params.map,
            pgs: TrackedRwLock::new(&classes::OSD_PG_MAP, HashMap::new()),
            opq: OpQueue {
                q: TrackedMutex::new(&classes::OP_QUEUE, VecDeque::new()),
                cv: TrackedCondvar::new(),
            },
            client_throttle: Arc::new(Throttle::new(
                "osd_client_message_cap",
                tuning.client_message_cap(),
            )),
            rep_waits: TrackedMutex::new(&classes::REP_WAITS, HashMap::new()),
            rep_seen: TrackedMutex::new(&classes::REP_SEEN, RepSeen::new()),
            next_rep_id: AtomicU64::new(1),
            trim: TrackedMutex::new(&classes::TRIM, TrimTracker::new()),
            pending_apply: TrackedMutex::new(&classes::PENDING_APPLY, HashMap::new()),
            apply_gate: ApplyGate::new(),
            completion_tx: TrackedMutex::new(&classes::OSD_CHANNEL_TX, None),
            reader_tx: TrackedMutex::new(&classes::OSD_CHANNEL_TX, None),
            recorder: StageRecorder::new(16, 4096),
            acker: OrderedAcker::new(),
            shutdown: AtomicBool::new(false),
            client_ops: MetricCounter::new(),
            writes: MetricCounter::new(),
            reads: MetricCounter::new(),
            repops: MetricCounter::new(),
            repacks: MetricCounter::new(),
            apply_failures: MetricCounter::new(),
            rep_resends: MetricCounter::new(),
            tuning,
        });
        let msgr = params.net.register(
            Addr::Osd(params.id),
            Arc::new(OsdDispatcher(Arc::clone(&inner))),
        )?;
        if inner.msgr.set(msgr).is_err() {
            return Err(AfcError::Corruption(format!(
                "messenger for {} registered twice",
                params.id
            )));
        }
        let spawn_worker = |name: String, f: Box<dyn FnOnce() + Send>| {
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(f)
                .map_err(|e| AfcError::Io(format!("spawn {name}: {e}")))
        };
        // On any spawn failure, tear down the workers already started so a
        // partially-constructed OSD never leaks threads.
        let mut workers = Vec::new();
        let result = (|| -> Result<()> {
            for i in 0..inner.tuning.op_threads.max(1) {
                let inner = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-op-{i}", params.id),
                    Box::new(move || op_worker_loop(inner)),
                )?);
            }
            if inner.tuning.pending_queue {
                let (tx, rx) = crossbeam::channel::unbounded::<ReadJob>();
                *inner.reader_tx.lock() = Some(tx);
                for i in 0..2 {
                    let rx = rx.clone();
                    let inner2 = Arc::clone(&inner);
                    workers.push(spawn_worker(
                        format!("{}-reader-{i}", params.id),
                        Box::new(move || {
                            while let Ok(job) = rx.recv() {
                                inner2.execute_read(job);
                            }
                        }),
                    )?);
                }
            }
            if inner.tuning.dedicated_completion {
                let (tx, rx) = crossbeam::channel::unbounded();
                *inner.completion_tx.lock() = Some(tx);
                let inner2 = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-completion", params.id),
                    Box::new(move || completion_worker_loop(inner2, rx)),
                )?);
            }
            // Replication retransmit ticker: sweeps rep_waits for sub-ops
            // whose ack is overdue (lost Replicate or RepAck) and resends,
            // failing the op after rep_max_resends attempts.
            {
                let inner2 = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-reptimer", params.id),
                    Box::new(move || {
                        while !inner2.shutdown.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(10));
                            inner2.resend_expired_reps();
                        }
                    }),
                )?);
            }
            Ok(())
        })();
        if let Err(e) = result {
            // ordering: cold spawn-failure path; SeqCst so the flag is ahead
            // of the cv notify and channel teardown below in every thread's
            // view (the worker loops read it Relaxed).
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.opq.cv.notify_all();
            *inner.completion_tx.lock() = None;
            *inner.reader_tx.lock() = None;
            for h in workers {
                let _ = h.join();
            }
            return Err(e);
        }
        Ok(Arc::new(Osd {
            inner,
            workers: TrackedMutex::new(&classes::OSD_WORKERS, workers),
        }))
    }

    /// This OSD's id.
    pub fn id(&self) -> OsdId {
        self.inner.id
    }

    /// The filestore (stats, direct reads in tests).
    pub fn store(&self) -> &Arc<FileStore> {
        &self.inner.store
    }

    /// The journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.inner.journal
    }

    /// The debug logger.
    pub fn logger(&self) -> &Arc<Logger> {
        &self.inner.logger
    }

    /// Collected Figure-3 stage samples.
    pub fn stage_samples(&self) -> Vec<StageSample> {
        self.inner.recorder.samples()
    }

    /// Register this OSD's instrumentation into a cluster metric
    /// registry:
    ///
    /// - op counters under `osd<N>.op.*` (plus client-throttle waits
    ///   under `osd<N>.op.client_throttle.*`),
    /// - write-path stage histograms under `osd<N>.stage.*` (fed from
    ///   the sampled stage recorder),
    /// - filestore under `osd<N>.fs.*`, its KV DB under `osd<N>.kv.*`,
    /// - the debug logger's counters as `osd<N>.log.*`,
    /// - the journal's counters under `<journal_prefix>.*` (the caller
    ///   picks the node-scoped name, e.g. `node0.journal`).
    pub fn attach_metrics(&self, m: &Metrics, journal_prefix: &str) {
        let inner = &self.inner;
        let op = format!("osd{}.op", inner.id.0);
        let fields: [(&str, &MetricCounter); 7] = [
            ("client_ops", &inner.client_ops),
            ("writes", &inner.writes),
            ("reads", &inner.reads),
            ("repops", &inner.repops),
            ("repacks", &inner.repacks),
            ("apply_failures", &inner.apply_failures),
            ("rep_resends", &inner.rep_resends),
        ];
        for (name, cell) in fields {
            m.register_counter(format!("{op}.{name}"), cell);
        }
        inner
            .client_throttle
            .register_into(m, &format!("{op}.client_throttle"));
        inner
            .recorder
            .attach_hists(StageHists::register(m, &format!("osd{}.stage", inner.id.0)));
        inner
            .store
            .register_metrics(m, &format!("osd{}.fs", inner.id.0));
        inner
            .store
            .register_kv_metrics(m, &format!("osd{}.kv", inner.id.0));
        inner
            .logger
            .attach_metrics(m, &format!("osd{}", inner.id.0));
        inner.journal.register_metrics(m, journal_prefix);
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> OsdStats {
        let inner = &self.inner;
        let (plw, plwu) = {
            let pgs = inner.pgs.read();
            pgs.values()
                .map(|p| p.lock_stats())
                .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
        };
        let (ctw, ctwu) = inner.client_throttle.wait_stats();
        OsdStats {
            client_ops: inner.client_ops.get(),
            writes: inner.writes.get(),
            reads: inner.reads.get(),
            repops: inner.repops.get(),
            repacks: inner.repacks.get(),
            pg_lock_waits: plw,
            pg_lock_wait_us: plwu,
            client_throttle_waits: ctw,
            client_throttle_wait_us: ctwu,
            journal: inner.journal.stats(),
            filestore: inner.store.stats(),
            kv: inner.store.kv_stats(),
            device: inner.store.fs().device().stats(),
            log_submitted: inner.logger.counters().get("log.submitted"),
            log_wait_us: inner.logger.counters().get("log.block_wait_us"),
            apply_failures: inner.apply_failures.get(),
            rep_resends: inner.rep_resends.get(),
        }
    }

    /// Re-apply journal entries that had not reached the filestore (crash
    /// recovery). Decodes every surviving (valid, untrimmed) journal entry
    /// plus any in-memory pending applies and re-runs them in sequence
    /// order. Safe to call repeatedly: each successful pass trims what it
    /// applied, so a second pass is a no-op.
    pub fn replay_journal(&self) -> Result<usize> {
        let entries = self.inner.journal.replay();
        // A crash loses the trim tracker; resynchronize it to the oldest
        // surviving journal sequence so post-replay trims can advance.
        if let Some(first) = entries.first() {
            let mut t = self.inner.trim.lock();
            if t.watermark() + 1 < first.seq {
                *t = TrimTracker::resume_from(first.seq - 1);
            }
        }
        let mut todo: Vec<(u64, Transaction)> = Vec::with_capacity(entries.len());
        for e in &entries {
            todo.push((e.seq, Transaction::decode(&e.payload)?));
        }
        {
            let p = self.inner.pending_apply.lock();
            for (s, t) in p.iter() {
                if !todo.iter().any(|(s2, _)| s2 == s) {
                    todo.push((*s, t.clone()));
                }
            }
        }
        todo.sort_by_key(|(s, _)| *s);
        let n = todo.len();
        for (seq, txn) in todo {
            self.inner.store.apply_sync(txn)?;
            self.inner.on_applied(seq);
        }
        Ok(n)
    }

    /// Simulate a process crash + restart of this OSD's storage stack:
    /// volatile state (pending-apply bookkeeping, read gates, unsynced
    /// filestore KV records, metadata cache) is lost; the NVRAM journal
    /// ring and applied object data survive. Call [`Self::replay_journal`]
    /// afterwards, exactly as OSD init does after a real crash.
    pub fn simulate_crash(&self) -> Result<usize> {
        self.inner.pending_apply.lock().clear();
        self.inner.apply_gate.reset();
        self.inner.store.crash_volatile()
    }

    /// Drain in-flight work (test/bench helper): waits until the filestore
    /// queue empties and the journal has committed everything submitted.
    pub fn quiesce(&self) {
        self.inner.journal.quiesce();
        self.inner.store.wait_idle();
    }

    /// Stop the op/completion threads. The OSD stops consuming its queue;
    /// the network endpoint should be shut down by the cluster first.
    /// Idempotent: later calls find the worker list already drained.
    pub fn shutdown(&self) {
        // ordering: cold shutdown path; SeqCst so the flag is ahead of the
        // cv notify and channel teardown below in every thread's view (the
        // worker loops read it Relaxed).
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.opq.cv.notify_all();
        *self.inner.completion_tx.lock() = None;
        *self.inner.reader_tx.lock() = None;
        self.inner.client_throttle.close();
        // Fail writes still waiting on replica acks (e.g. acks lost to
        // injected faults) so nothing blocks on them across shutdown, and
        // release any readers parked on their apply gates.
        let stranded: Vec<Arc<WriteOp>> = {
            let mut w = self.inner.rep_waits.lock();
            w.drain().map(|(_, rw)| rw.op).collect()
        };
        for op in stranded {
            self.inner
                .fail_op(&op, AfcError::ShutDown("osd stopping".into()));
        }
        self.inner.apply_gate.reset();
        // Take the handles out first: joining while holding the workers
        // lock would block concurrent shutdown() callers on a lock held
        // across thread exit instead of on join itself.
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

struct OsdDispatcher(Arc<OsdInner>);

impl Dispatcher<OsdMsg> for OsdDispatcher {
    fn dispatch(&self, from: Addr, msg: OsdMsg) {
        let inner = &self.0;
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match msg {
            OsdMsg::Request(op) => inner.handle_request(from, op),
            OsdMsg::Replicate(rep) => inner.handle_repop(from, rep),
            OsdMsg::RepAck(ack) => inner.handle_repack(ack),
            OsdMsg::Reply(_) => {
                inner
                    .logger
                    .log(Level::Error, "osd", "unexpected client reply at OSD");
            }
        }
    }
}

fn op_worker_loop(inner: Arc<OsdInner>) {
    let blocking = !inner.tuning.pending_queue;
    loop {
        let pg = {
            let mut q = inner.opq.q.lock();
            loop {
                if let Some(pg) = q.pop_front() {
                    break pg;
                }
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                inner.opq.cv.wait(&mut q);
            }
        };
        pg.drain(blocking);
    }
}

fn completion_worker_loop(inner: Arc<OsdInner>, rx: crossbeam::channel::Receiver<CompletionEvent>) {
    while let Ok(first) = rx.recv() {
        // Batch everything immediately available (§3.1: "Multiple
        // completion per PG can be processed at once").
        let mut batch = vec![first];
        while batch.len() < 128 {
            match rx.try_recv() {
                Ok(e) => batch.push(e),
                Err(_) => break,
            }
        }
        // Pass 1: filestore hand-off, acks and replies — no PG lock (the
        // §3.1 point: completion no longer serializes on PG locks, and a
        // full filestore throttle cannot wedge readers holding them).
        let mut by_pg: HashMap<PgId, (Arc<Pg>, u64)> = HashMap::new();
        for ev in &batch {
            let (pg, seq) = match ev {
                CompletionEvent::PrimaryCommit { op, pg_seq, .. } => (Arc::clone(&op.pg), *pg_seq),
                CompletionEvent::ReplicaCommit { pg, pg_seq, .. } => (Arc::clone(pg), *pg_seq),
            };
            let e = by_pg.entry(pg.id()).or_insert((pg, 0));
            e.1 = e.1.max(seq);
        }
        for ev in batch {
            match ev {
                CompletionEvent::PrimaryCommit { op, jseq, txn, .. } => {
                    inner.enqueue_filestore(jseq, txn);
                    if let Some(t) = &op.trace {
                        t.lock().handled = Some(Instant::now());
                    }
                    {
                        let mut p = op.progress.lock();
                        p.local_commit = true;
                    }
                    inner.maybe_reply(&op);
                }
                CompletionEvent::ReplicaCommit {
                    jseq,
                    txn,
                    primary,
                    rep_id,
                    ..
                } => {
                    inner.enqueue_filestore(jseq, txn);
                    inner.mark_rep_done(primary, rep_id);
                    inner.send(
                        primary,
                        OsdMsg::RepAck(RepOpReply {
                            rep_id,
                            from: inner.id,
                        }),
                    );
                }
            }
        }
        // Pass 2: batched PG bookkeeping, one lock acquisition per PG.
        for (_, (pg, max_seq)) in by_pg {
            let mut st = pg.lock_measured();
            st.last_committed = st.last_committed.max(max_seq);
        }
    }
}

impl OsdInner {
    fn msgr(&self) -> &Messenger<OsdMsg> {
        self.msgr.get().expect("messenger registered at spawn")
    }

    fn send(&self, to: Addr, msg: OsdMsg) {
        let bytes = msg.wire_bytes();
        if let Err(e) = self.msgr().send(to, msg, bytes) {
            self.logger
                .logf(Level::Error, "osd", || format!("send to {to} failed: {e}"));
        }
    }

    fn log(&self, msg: &'static str) {
        self.logger.log(Level::Trace, "osd", msg);
    }

    /// Model the per-op allocator churn (§3.2): real transient allocations.
    fn alloc_overhead(&self) {
        let n = self.tuning.allocator.allocs_per_op();
        for i in 0..n {
            let mut v: Vec<u8> = Vec::with_capacity(64 + (i & 7) * 16);
            v.push(i as u8);
            std::hint::black_box(&v);
        }
    }

    fn pg(&self, id: PgId) -> Arc<Pg> {
        if let Some(pg) = self.pgs.read().get(&id) {
            return Arc::clone(pg);
        }
        let mut w = self.pgs.write();
        Arc::clone(w.entry(id).or_insert_with(|| Pg::new(id)))
    }

    fn queue_pg(&self, pg: Arc<Pg>, work: pg::PgWork) {
        pg.queue(work);
        let mut q = self.opq.q.lock();
        q.push_back(pg);
        drop(q);
        self.opq.cv.notify_one();
    }

    // ---------------------------------------------------------------- //
    // Client requests
    // ---------------------------------------------------------------- //

    fn handle_request(self: &Arc<Self>, from: Addr, op: ClientOp) {
        self.client_ops.inc();
        self.log("ms_fast_dispatch client op");
        // osd_client_message_cap: blocks this client's connection thread
        // when the OSD has too many undispatched messages (§3.2).
        let permit = match self.client_throttle.acquire_owned(1) {
            Ok(p) => p,
            Err(_) => return,
        };
        // Primary check against the current map.
        let map = self.map.read().clone();
        let primary = map.pg_primary(op.pg).ok();
        if primary != Some(self.id) {
            self.send(
                from,
                OsdMsg::Reply(ClientReply {
                    op_id: op.op_id,
                    result: Err(AfcError::InvalidArgument(format!(
                        "misdirected op for pg {}",
                        op.pg
                    ))),
                }),
            );
            return;
        }
        let pg = self.pg(op.pg);
        let inner = Arc::clone(self);
        match op.op {
            ObjectOp::Write { offset, data } => {
                let trace = self
                    .recorder
                    .should_trace()
                    .then(|| TrackedMutex::new(&classes::OP_TRACE, TraceTimes::start()));
                let acting = map.pg_acting(op.pg).unwrap_or_default();
                let needed_acks = acting.len().saturating_sub(1);
                // §3.1: ordered acks when enabled OSD-wide or requested by
                // the client ("sends client sequential acks if a client
                // wants to receive ordered acks as requested").
                let ack_lane = (self.tuning.ordered_acks || op.ordered_ack)
                    .then(|| self.acker.assign(op.client, op.pg));
                let wop = Arc::new(WriteOp {
                    client: op.client,
                    op_id: op.op_id,
                    reply_to: from,
                    pg: Arc::clone(&pg),
                    needed_acks,
                    progress: TrackedMutex::new(
                        &classes::OP_PROGRESS,
                        Progress {
                            local_commit: false,
                            acks: 0,
                            replied: false,
                        },
                    ),
                    permit: TrackedMutex::new(&classes::OP_PERMIT, Some(permit)),
                    trace,
                    ack_lane,
                });
                let object = op.object;
                let replicas: Vec<OsdId> = acting.into_iter().skip(1).collect();
                let pgc = Arc::clone(&pg);
                if let Some(t) = &wop.trace {
                    t.lock().queued = Some(Instant::now());
                }
                self.queue_pg(
                    pg,
                    Box::new(move |st| {
                        if let Some(t) = &wop.trace {
                            t.lock().dequeue = Some(Instant::now());
                        }
                        inner.process_write(st, &pgc, wop.clone(), object, offset, data, &replicas);
                    }),
                );
            }
            ObjectOp::Delete => {
                let acting = map.pg_acting(op.pg).unwrap_or_default();
                let needed_acks = acting.len().saturating_sub(1);
                let wop = Arc::new(WriteOp {
                    client: op.client,
                    op_id: op.op_id,
                    reply_to: from,
                    pg: Arc::clone(&pg),
                    needed_acks,
                    progress: TrackedMutex::new(
                        &classes::OP_PROGRESS,
                        Progress {
                            local_commit: false,
                            acks: 0,
                            replied: false,
                        },
                    ),
                    permit: TrackedMutex::new(&classes::OP_PERMIT, Some(permit)),
                    trace: None,
                    ack_lane: None,
                });
                let object = op.object;
                let replicas: Vec<OsdId> = acting.into_iter().skip(1).collect();
                let pgc = Arc::clone(&pg);
                if let Some(t) = &wop.trace {
                    t.lock().queued = Some(Instant::now());
                }
                self.queue_pg(
                    pg,
                    Box::new(move |st| {
                        inner.process_delete(st, &pgc, wop.clone(), object, &replicas);
                    }),
                );
            }
            ObjectOp::Read { offset, len } => {
                let object = op.object;
                let (client, op_id) = (op.client, op.op_id);
                self.queue_pg(
                    pg,
                    Box::new(move |_st| {
                        inner.process_read(from, client, op_id, object, offset, len, permit);
                    }),
                );
            }
            ObjectOp::Stat => {
                let object = op.object;
                let op_id = op.op_id;
                self.queue_pg(
                    pg,
                    Box::new(move |_st| {
                        let obj_name = object.to_string();
                        inner.apply_gate.wait_ordered(&obj_name);
                        let result = inner.store.stat(&obj_name).map(|m| OpOutcome::Size(m.size));
                        inner.send(from, OsdMsg::Reply(ClientReply { op_id, result }));
                        drop(permit);
                    }),
                );
            }
        }
    }

    /// The write path under the PG lock: log, metadata read (community),
    /// PG-log append, replication, journal submit.
    #[allow(clippy::too_many_arguments)]
    fn process_write(
        self: &Arc<Self>,
        st: &mut PgState,
        pg: &Arc<Pg>,
        op: Arc<WriteOp>,
        object: ObjectId,
        offset: u64,
        data: Bytes,
        replicas: &[OsdId],
    ) {
        self.log("do_op: write enter");
        self.log("get object context");
        self.alloc_overhead();
        let obj_name = object.to_string();
        // Object-context metadata: community reads it back from storage
        // (device read under the PG lock — Figure 3's large stage (2));
        // the LWT profile serves it from the write-through cache.
        if self.tuning.lightweight_txn {
            let _ = self.store.stat(&obj_name);
        } else {
            let _ = self.store.getattr(&obj_name, "_");
        }
        st.next_pg_seq += 1;
        st.info_version += 1;
        let pg_seq = st.next_pg_seq;
        self.log("append pg log");
        let txn = build_write_txn(pg.id(), &obj_name, offset, &data, pg_seq);
        // Later reads of this object must wait for the apply (gate is
        // released in on_applied).
        self.apply_gate.add(&obj_name);
        // Replicate before journaling (splay replication, Figure 2). Each
        // sub-op is remembered with its wire form so the retransmit ticker
        // can resend it if the ack never arrives.
        for r in replicas.iter() {
            let rep_id = self.next_rep_id.fetch_add(1, Ordering::Relaxed);
            self.log("send repop");
            let rep = RepOp {
                rep_id,
                pg: pg.id(),
                object: object.clone(),
                op: ObjectOp::Write {
                    offset,
                    data: data.clone(),
                },
                pg_seq,
            };
            self.track_rep(rep_id, &op, Addr::Osd(*r), rep.clone());
            self.send(Addr::Osd(*r), OsdMsg::Replicate(rep));
        }
        if let Some(t) = &op.trace {
            t.lock().jsubmit = Some(Instant::now());
        }
        self.log("journal submit");
        self.log("waiting for subops");
        let inner = Arc::clone(self);
        let pgc = Arc::clone(pg);
        // The journal carries the real transaction encoding: replay after a
        // crash decodes and re-applies exactly what was acknowledged.
        let payload = txn.encode();
        let opc = Arc::clone(&op);
        let res = self.journal.submit(
            payload,
            Box::new(move |jseq| {
                if let Some(t) = &opc.trace {
                    t.lock().jcommit = Some(Instant::now());
                }
                inner.on_journal_commit_primary(pgc, opc, jseq, txn, pg_seq);
            }),
        );
        if let Err(e) = res {
            self.apply_gate.done(&obj_name);
            self.fail_op(&op, e);
        }
        self.writes.inc();
    }

    fn process_delete(
        self: &Arc<Self>,
        st: &mut PgState,
        pg: &Arc<Pg>,
        op: Arc<WriteOp>,
        object: ObjectId,
        replicas: &[OsdId],
    ) {
        self.alloc_overhead();
        let obj_name = object.to_string();
        st.next_pg_seq += 1;
        let pg_seq = st.next_pg_seq;
        let mut txn = Transaction::new();
        txn.push(TxOp::Remove {
            object: obj_name.clone(),
        });
        txn.push(pg_log_op(pg.id(), pg_seq, &obj_name));
        self.apply_gate.add(&obj_name);
        for r in replicas {
            let rep_id = self.next_rep_id.fetch_add(1, Ordering::Relaxed);
            let rep = RepOp {
                rep_id,
                pg: pg.id(),
                object: object.clone(),
                op: ObjectOp::Delete,
                pg_seq,
            };
            self.track_rep(rep_id, &op, Addr::Osd(*r), rep.clone());
            self.send(Addr::Osd(*r), OsdMsg::Replicate(rep));
        }
        let inner = Arc::clone(self);
        let pgc = Arc::clone(pg);
        let opc = Arc::clone(&op);
        let payload = txn.encode();
        let res = self.journal.submit(
            payload,
            Box::new(move |jseq| {
                inner.on_journal_commit_primary(pgc, opc, jseq, txn, pg_seq);
            }),
        );
        if let Err(e) = res {
            self.apply_gate.done(&obj_name);
            self.fail_op(&op, e);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_read(
        self: &Arc<Self>,
        from: Addr,
        _client: ClientId,
        op_id: OpId,
        object: ObjectId,
        offset: u64,
        len: u32,
        permit: OwnedPermit,
    ) {
        self.log("do_op: read");
        self.alloc_overhead();
        self.reads.inc();
        let obj_name = object.to_string();
        let gate_target = self.apply_gate.snapshot(&obj_name);
        let job = ReadJob {
            from,
            op_id,
            obj_name,
            offset,
            len,
            permit,
            gate_target,
        };
        if self.tuning.pending_queue {
            // §3.1: ordered here (gate target captured under PG order),
            // executed on the disk-reader pool so the PG lock and the op
            // worker are released immediately.
            let tx = self.reader_tx.lock().clone();
            if let Some(tx) = tx {
                if tx.send(job).is_ok() {
                    return;
                }
                return; // shutting down
            }
            return;
        }
        // Community: the device read happens right here, holding the PG
        // lock for its whole duration (the behaviour the pending queue
        // fixes: other requests to this PG — and this op worker — stall).
        self.execute_read(job);
    }

    /// Complete a read: wait for ordered applies, hit the filestore, reply.
    fn execute_read(self: &Arc<Self>, job: ReadJob) {
        self.apply_gate.wait_target(&job.obj_name, job.gate_target);
        let result = self
            .store
            .read(&job.obj_name, job.offset, job.len as usize)
            .map(|v| OpOutcome::Data(Bytes::from(v)));
        self.log("read reply");
        self.send(
            job.from,
            OsdMsg::Reply(ClientReply {
                op_id: job.op_id,
                result,
            }),
        );
        drop(job.permit);
    }

    // ---------------------------------------------------------------- //
    // Journal completion (the "commit worker"/finisher path)
    // ---------------------------------------------------------------- //

    fn on_journal_commit_primary(
        self: &Arc<Self>,
        pg: Arc<Pg>,
        op: Arc<WriteOp>,
        jseq: u64,
        txn: Transaction,
        pg_seq: u64,
    ) {
        if self.tuning.dedicated_completion {
            // AFCeph: OP-lock-only bookkeeping here; PG-lock work is
            // deferred to the batching completion worker.
            let tx = self.completion_tx.lock().clone();
            if let Some(tx) = tx {
                let _ = tx.send(CompletionEvent::PrimaryCommit {
                    op,
                    jseq,
                    txn,
                    pg_seq,
                });
            }
            return;
        }
        // Community: the single journal finisher queues the filestore
        // transaction — when the filestore throttle is full this blocks
        // the finisher, serializing every completion behind it (Figure 3
        // stage (5), Figure 4's collapse) — and then re-acquires the PG
        // lock for completion bookkeeping, contending with op workers.
        self.enqueue_filestore(jseq, txn);
        let mut st = pg.lock_measured();
        self.log("journal commit -> pg backend");
        st.last_committed = st.last_committed.max(pg_seq);
        drop(st);
        if let Some(t) = &op.trace {
            t.lock().handled = Some(Instant::now());
        }
        {
            let mut p = op.progress.lock();
            p.local_commit = true;
        }
        self.maybe_reply(&op);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_journal_commit_replica(
        self: &Arc<Self>,
        pg: Arc<Pg>,
        jseq: u64,
        txn: Transaction,
        pg_seq: u64,
        primary: Addr,
        rep_id: u64,
    ) {
        if self.tuning.dedicated_completion {
            let tx = self.completion_tx.lock().clone();
            if let Some(tx) = tx {
                let _ = tx.send(CompletionEvent::ReplicaCommit {
                    pg,
                    jseq,
                    txn,
                    pg_seq,
                    primary,
                    rep_id,
                });
            }
            return;
        }
        self.enqueue_filestore(jseq, txn);
        let mut st = pg.lock_measured();
        st.last_committed = st.last_committed.max(pg_seq);
        drop(st);
        self.log("replica commit ack");
        self.mark_rep_done(primary, rep_id);
        self.send(
            primary,
            OsdMsg::RepAck(RepOpReply {
                rep_id,
                from: self.id,
            }),
        );
    }

    /// Flip a replica-side rep_id to "committed" so retransmits re-ack.
    fn mark_rep_done(&self, primary: Addr, rep_id: u64) {
        self.rep_seen.lock().state.insert((primary, rep_id), true);
    }

    /// Remember an outstanding replication sub-op for ack tracking and
    /// timeout-driven retransmission.
    fn track_rep(&self, rep_id: u64, op: &Arc<WriteOp>, to: Addr, rep: RepOp) {
        self.rep_waits.lock().insert(
            rep_id,
            RepWait {
                op: Arc::clone(op),
                to,
                rep,
                sent: Instant::now(),
                resends: 0,
            },
        );
    }

    /// Retransmit sub-ops whose ack is overdue; give up (typed failure to
    /// the client) after `rep_max_resends` attempts. Runs on the reptimer
    /// thread every few milliseconds; sends happen outside the lock.
    fn resend_expired_reps(&self) {
        let timeout = Duration::from_millis(self.tuning.rep_resend_after_ms.max(1));
        let now = Instant::now();
        let mut resend: Vec<(Addr, RepOp)> = Vec::new();
        let mut gave_up: Vec<Arc<WriteOp>> = Vec::new();
        {
            let mut waits = self.rep_waits.lock();
            let mut dead: Vec<u64> = Vec::new();
            for (id, w) in waits.iter_mut() {
                if now.duration_since(w.sent) < timeout {
                    continue;
                }
                if w.resends >= self.tuning.rep_max_resends {
                    dead.push(*id);
                } else {
                    w.resends += 1;
                    w.sent = now;
                    resend.push((w.to, w.rep.clone()));
                }
            }
            for id in dead {
                if let Some(w) = waits.remove(&id) {
                    gave_up.push(w.op);
                }
            }
        }
        for (to, rep) in resend {
            self.rep_resends.inc();
            self.log("resend repop");
            self.send(to, OsdMsg::Replicate(rep));
        }
        for op in gave_up {
            self.fail_op(
                &op,
                AfcError::Timeout("replica ack timeout (resends exhausted)".into()),
            );
        }
    }

    fn enqueue_filestore(self: &Arc<Self>, jseq: u64, txn: Transaction) {
        self.pending_apply.lock().insert(jseq, txn.clone());
        let inner = Arc::clone(self);
        let res = self.store.queue_transaction(
            txn,
            Box::new(move |r| match r {
                Ok(()) => inner.on_applied(jseq),
                Err(e) => {
                    inner
                        .logger
                        .logf(Level::Error, "osd", || format!("apply failed: {e}"));
                    inner.apply_failures.inc();
                    inner.on_apply_failed(jseq);
                }
            }),
        );
        if let Err(e) = res {
            self.logger
                .logf(Level::Error, "osd", || format!("apply enqueue failed: {e}"));
            self.apply_failures.inc();
            self.on_apply_failed(jseq);
        }
    }

    /// A filestore apply failed. Keep the txn in `pending_apply` (journal
    /// replay after a crash/recover re-applies it) and don't trim, but
    /// release the apply gate fail-open so readers of the object aren't
    /// wedged behind a txn that will never complete on this incarnation.
    fn on_apply_failed(&self, jseq: u64) {
        let obj = self
            .pending_apply
            .lock()
            .get(&jseq)
            .and_then(|t| t.ops().first().map(|o| o.object().to_string()));
        if let Some(obj) = obj {
            self.apply_gate.done(&obj);
        }
    }

    fn on_applied(&self, jseq: u64) {
        self.log("filestore applied");
        let txn = self.pending_apply.lock().remove(&jseq);
        if let Some(txn) = txn {
            if let Some(op) = txn.ops().first() {
                self.apply_gate.done(op.object());
            }
        }
        let watermark = self.trim.lock().mark(jseq);
        if let Some(w) = watermark {
            self.journal.trim_through(w);
        }
    }

    // ---------------------------------------------------------------- //
    // Replica side
    // ---------------------------------------------------------------- //

    fn handle_repop(self: &Arc<Self>, from: Addr, rep: RepOp) {
        self.repops.inc();
        self.log("handle repop");
        // Retransmit/duplicate dedup: a rep_id we already committed gets a
        // fresh ack (the original was lost); one still in flight is
        // ignored (its commit will ack); only new ids are journaled.
        {
            let key = (from, rep.rep_id);
            let mut seen = self.rep_seen.lock();
            match seen.state.get(&key) {
                Some(true) => {
                    drop(seen);
                    self.log("re-ack duplicate repop");
                    self.send(
                        from,
                        OsdMsg::RepAck(RepOpReply {
                            rep_id: rep.rep_id,
                            from: self.id,
                        }),
                    );
                    return;
                }
                Some(false) => return,
                None => seen.insert(key),
            }
        }
        let pg = self.pg(rep.pg);
        let inner = Arc::clone(self);
        let pgc = Arc::clone(&pg);
        self.queue_pg(
            pg,
            Box::new(move |st| {
                inner.alloc_overhead();
                st.next_pg_seq = st.next_pg_seq.max(rep.pg_seq);
                let obj_name = rep.object.to_string();
                let txn = match &rep.op {
                    ObjectOp::Write { offset, data } => {
                        build_write_txn(pgc.id(), &obj_name, *offset, data, rep.pg_seq)
                    }
                    ObjectOp::Delete => {
                        let mut t = Transaction::new();
                        t.push(TxOp::Remove {
                            object: obj_name.clone(),
                        });
                        t.push(pg_log_op(pgc.id(), rep.pg_seq, &obj_name));
                        t
                    }
                    _ => return,
                };
                let inner2 = Arc::clone(&inner);
                let pgc2 = Arc::clone(&pgc);
                let payload = txn.encode();
                let pg_seq = rep.pg_seq;
                let rep_id = rep.rep_id;
                let _ = inner.journal.submit(
                    payload,
                    Box::new(move |jseq| {
                        inner2.on_journal_commit_replica(pgc2, jseq, txn, pg_seq, from, rep_id);
                    }),
                );
            }),
        );
    }

    // ---------------------------------------------------------------- //
    // Replica acks back at the primary
    // ---------------------------------------------------------------- //

    fn handle_repack(self: &Arc<Self>, ack: RepOpReply) {
        self.repacks.inc();
        let Some(wait) = self.rep_waits.lock().remove(&ack.rep_id) else {
            return; // duplicate ack (retransmit raced the original)
        };
        let op = wait.op;
        if self.tuning.fast_ack {
            // §3.1: "ack messages are processed right away without
            // enqueueing them to the PG queue."
            if let Some(t) = &op.trace {
                t.lock().replicas = Some(Instant::now());
            }
            {
                let mut p = op.progress.lock();
                p.acks += 1;
            }
            self.maybe_reply(&op);
        } else {
            // Community: the ack competes with data ops for the PG queue
            // and the PG lock.
            let inner = Arc::clone(self);
            let pg = Arc::clone(&op.pg);
            self.queue_pg(
                pg,
                Box::new(move |_st| {
                    inner.log("repop reply via op_wq");
                    if let Some(t) = &op.trace {
                        t.lock().replicas = Some(Instant::now());
                    }
                    {
                        let mut p = op.progress.lock();
                        p.acks += 1;
                    }
                    inner.maybe_reply(&op);
                }),
            );
        }
    }

    fn maybe_reply(&self, op: &Arc<WriteOp>) {
        let ready = {
            let mut p = op.progress.lock();
            if p.replied || !p.local_commit || p.acks < op.needed_acks {
                false
            } else {
                p.replied = true;
                true
            }
        };
        self.log("op commit ready");
        if !ready {
            return;
        }
        self.log("send client reply");
        if let Some(t) = &op.trace {
            let mut tt = t.lock();
            tt.reply = Some(Instant::now());
            self.recorder.finish(&tt);
        }
        let reply = ClientReply {
            op_id: op.op_id,
            result: Ok(OpOutcome::Done),
        };
        if let Some(lane) = op.ack_lane {
            // Ordered acks: hold back until every earlier op on this
            // (client, pg) lane has been released.
            for (to, r) in self
                .acker
                .release(op.client, op.pg.id(), lane, op.reply_to, reply)
            {
                self.send(to, OsdMsg::Reply(r));
            }
        } else {
            self.send(op.reply_to, OsdMsg::Reply(reply));
        }
        *op.permit.lock() = None; // release osd_client_message_cap
    }

    fn fail_op(&self, op: &Arc<WriteOp>, err: AfcError) {
        let already = {
            let mut p = op.progress.lock();
            std::mem::replace(&mut p.replied, true)
        };
        if already {
            return;
        }
        self.send(
            op.reply_to,
            OsdMsg::Reply(ClientReply {
                op_id: op.op_id,
                result: Err(err),
            }),
        );
        *op.permit.lock() = None;
    }
}

/// Build the filestore transaction for a replicated object write — data,
/// alloc hint, object metadata attrs, and the PG-log omap append (Figure 7).
fn build_write_txn(pg: PgId, object: &str, offset: u64, data: &Bytes, pg_seq: u64) -> Transaction {
    let mut txn = Transaction::new();
    txn.push(TxOp::Touch {
        object: object.to_string(),
    });
    txn.push(TxOp::SetAllocHint {
        object: object.to_string(),
    });
    txn.push(TxOp::Write {
        object: object.to_string(),
        offset,
        data: data.clone(),
    });
    txn.push(TxOp::SetAttrs {
        object: object.to_string(),
        attrs: vec![("snapset".to_string(), Bytes::from_static(b"{}"))],
    });
    txn.push(pg_log_op(pg, pg_seq, object));
    txn
}

/// The PG-log entry (omap insert on the PG's meta object): entry + info.
fn pg_log_op(pg: PgId, pg_seq: u64, object: &str) -> TxOp {
    let log_key = Bytes::from(format!("pglog.{pg_seq:016x}"));
    let log_val = Bytes::from(format!("op write {object} v{pg_seq}"));
    let info_val = Bytes::from(format!("last_update={pg_seq}"));
    TxOp::OmapSetKeys {
        object: format!("pgmeta_{pg}"),
        keys: vec![(log_key, log_val), (Bytes::from_static(b"info"), info_val)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_gate_orders_reads_after_prior_writes_only() {
        let g = ApplyGate::new();
        g.add("obj");
        g.add("obj");
        let target = g.snapshot("obj");
        assert_eq!(target, Some(2));
        // A write enqueued after the snapshot must not block this reader.
        g.add("obj");
        let g = std::sync::Arc::new(g);
        let g2 = std::sync::Arc::clone(&g);
        let reader = std::thread::spawn(move || {
            let t0 = Instant::now();
            g2.wait_target("obj", target);
            t0.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.done("obj");
        g.done("obj"); // applied == 2 == target → reader releases
        let waited = reader.join().unwrap();
        assert!(
            waited >= std::time::Duration::from_millis(15),
            "did not wait: {waited:?}"
        );
        assert!(
            waited < std::time::Duration::from_secs(5),
            "waited for the later write"
        );
        g.done("obj"); // third apply retires the entry
        assert_eq!(g.snapshot("obj"), None);
    }

    #[test]
    fn apply_gate_untracked_object_passes() {
        let g = ApplyGate::new();
        assert_eq!(g.snapshot("ghost"), None);
        g.wait_target("ghost", None); // returns immediately
        g.done("ghost"); // no-op
    }

    #[test]
    fn apply_gate_distinct_objects_independent() {
        let g = ApplyGate::new();
        g.add("a");
        assert_eq!(g.snapshot("b"), None);
        g.wait_target("b", g.snapshot("b")); // b is unaffected by a
        g.done("a");
        assert_eq!(g.snapshot("a"), None);
    }

    #[test]
    fn build_write_txn_shape() {
        let pg = PgId {
            pool: afc_common::PoolId(0),
            seq: 7,
        };
        let txn = build_write_txn(pg, "obj", 0, &Bytes::from(vec![0u8; 4096]), 3);
        assert_eq!(txn.len(), 5);
        assert_eq!(txn.data_bytes(), 4096);
        assert!(txn.encoded_bytes() > 4096);
        // The pg-log op targets the PG meta object.
        let has_pgmeta = txn.ops().iter().any(|o| o.object().starts_with("pgmeta_"));
        assert!(has_pgmeta);
    }
}
