//! The object storage daemon.
//!
//! One `Osd` owns a filestore (RAID-0 flash), a journal (NVRAM region), a
//! logger, PG structures and the op pipeline threads. The pipeline follows
//! Figure 2(b) of the paper, with every §3 optimization switchable through
//! [`OsdTuning`]:
//!
//! ```text
//! client ──▶ messenger dispatch ──▶ PG queue ──▶ OP_WQ worker (PG lock)
//!                                                │  pg-log append
//!                                                │  replicate ▶ replicas
//!                                                ▼  journal submit
//!                               journal writer ▶ commit ▶ finisher
//!             community: finisher takes PG lock, queues filestore (may
//!                        block on throttle), handles acks via PG queue
//!             afceph:    OP-lock bookkeeping + dedicated batching
//!                        completion worker; acks fast-pathed
//! ```

pub mod ack;
pub mod pg;
pub mod trace;
pub mod trim;

pub use trace::StageSample;

use crate::messages::{
    ClientOp, ClientReply, ObjectOp, OpOutcome, OsdMsg, PgInfoMsg, PgQueryMsg, PingMsg, PushOp,
    RepOp, RepOpReply,
};
use crate::monitor::{Monitor, SharedMap};
use crate::qos::{Deq, QosScheduler, QosTag};
use crate::tuning::OsdTuning;
use ack::{pg_shard, OrderedAcker, COMPLETION_SHARDS};
use afc_common::lockdep::{classes, TrackedCondvar, TrackedMutex, TrackedRwLock};
use afc_common::metrics::{Counter as MetricCounter, Gauge as MetricGauge, Metrics};
use afc_common::{AfcError, ClientId, ObjectId, OpId, OsdId, PgId, PoolId, Result};
use afc_crush::OsdMap;
use afc_device::BlockDev;
use afc_filestore::throttle::OwnedPermit;
use afc_filestore::{
    FileStore, FileStoreConfig, FileStoreStats, Throttle, Transaction, TxOp, TxnProfile,
};
use afc_journal::{Journal, JournalConfig, JournalStats};
use afc_logging::{Level, Logger};
use afc_messenger::{Addr, Dispatcher, Messenger, Network};
use bytes::Bytes;
use pg::{Pg, PgHealth, PgState};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use trace::{StageHists, StageRecorder, TraceTimes};
use trim::TrimTracker;

/// Parameters for spawning an OSD.
pub struct OsdParams {
    /// OSD id.
    pub id: OsdId,
    /// Tuning vector.
    pub tuning: OsdTuning,
    /// Data device (the OSD's RAID-0 flash set).
    pub data_dev: Arc<dyn BlockDev>,
    /// Journal device (NVRAM; may be shared across a node's OSDs).
    pub journal_dev: Arc<dyn BlockDev>,
    /// Journal ring capacity for this OSD (2 GiB in the paper's testbed).
    pub journal_capacity: u64,
    /// Shared, monitor-updated cluster map.
    pub map: SharedMap,
    /// The fabric.
    pub net: Arc<Network<OsdMsg>>,
    /// Monitor handle for failure reports and `pg_temp` requests. `None`
    /// disables the self-healing loop regardless of the tuning interval.
    pub monitor: Option<Arc<Monitor>>,
}

/// Aggregated per-OSD statistics.
#[derive(Debug, Clone, Default)]
pub struct OsdStats {
    /// Client requests received.
    pub client_ops: u64,
    /// Writes acknowledged.
    pub writes: u64,
    /// Reads served.
    pub reads: u64,
    /// Replication sub-ops received (replica role).
    pub repops: u64,
    /// Replica acks processed (primary role).
    pub repacks: u64,
    /// Contended PG-lock acquisitions.
    pub pg_lock_waits: u64,
    /// Total PG-lock wait, microseconds.
    pub pg_lock_wait_us: u64,
    /// `osd_client_message_cap` throttle blocks.
    pub client_throttle_waits: u64,
    /// Total client-throttle wait, microseconds.
    pub client_throttle_wait_us: u64,
    /// Journal statistics.
    pub journal: JournalStats,
    /// Filestore statistics.
    pub filestore: FileStoreStats,
    /// KV store statistics.
    pub kv: afc_kvstore::DbStats,
    /// Data-device statistics.
    pub device: afc_device::DevStats,
    /// Debug-log entries submitted.
    pub log_submitted: u64,
    /// Debug-log submit wait, microseconds (blocking mode).
    pub log_wait_us: u64,
    /// Filestore applies that failed (injected/device faults). The journal
    /// entry is retained for `replay_journal` to re-apply.
    pub apply_failures: u64,
    /// Replication sub-ops retransmitted after an ack timeout.
    pub rep_resends: u64,
}

struct Progress {
    local_commit: bool,
    acks: usize,
    replied: bool,
}

/// An in-flight replicated write on the primary.
struct WriteOp {
    client: ClientId,
    op_id: OpId,
    reply_to: Addr,
    pg: Arc<Pg>,
    needed_acks: usize,
    progress: TrackedMutex<Progress>,
    permit: TrackedMutex<Option<OwnedPermit>>,
    trace: Option<TrackedMutex<TraceTimes>>,
    ack_lane: Option<u64>,
}

/// Primary-side record of one outstanding `Replicate`, kept until its
/// `RepAck` arrives. Carries everything needed to retransmit on timeout.
struct RepWait {
    op: Arc<WriteOp>,
    to: Addr,
    rep: RepOp,
    sent: Instant,
    resends: u32,
}

/// Primary-side record of one outstanding recovery `Push`, kept until its
/// ack (a `RepAck` carrying the push id) arrives. A push whose ack is
/// overdue is not retransmitted verbatim — the object is requeued into
/// `peer_missing` so the next pump pass pushes *fresh* data (a verbatim
/// resend could overwrite a newer push on the peer).
struct PushWait {
    pg: Arc<Pg>,
    peer: OsdId,
    object: String,
    gen: u64,
    sent: Instant,
}

/// Replica-side dedup window so a retransmitted (or network-duplicated)
/// `Replicate` is re-acked, never re-journaled/re-applied. Bounded FIFO.
/// Keyed by (primary addr, rep_id): rep_ids are only unique per primary.
struct RepSeen {
    /// (primary, rep_id) → committed? (false: journal submit in flight).
    state: HashMap<(Addr, u64), bool>,
    order: VecDeque<(Addr, u64)>,
}

impl RepSeen {
    /// Per completion shard; a shard only sees its own PGs' ids, so the
    /// effective window per primary matches the pre-sharding table.
    const CAP: usize = 8192;

    fn new() -> Self {
        RepSeen {
            state: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn insert(&mut self, key: (Addr, u64)) {
        self.state.insert(key, false);
        self.order.push_back(key);
        while self.order.len() > Self::CAP {
            if let Some(old) = self.order.pop_front() {
                self.state.remove(&old);
            }
        }
    }
}

/// Bits of a rep/push id reserved for the originating PG's completion
/// shard (see [`OsdInner::alloc_rep_id`]).
const SHARD_BITS: u32 = COMPLETION_SHARDS.trailing_zeros();

/// The completion shard a rep/push id routes to. Acks carry only the id,
/// so the shard must be recoverable from it alone: [`OsdInner::alloc_rep_id`]
/// stamps the PG's shard into the low bits at allocation.
#[inline]
fn rep_shard(rep_id: u64) -> usize {
    (rep_id as usize) & (COMPLETION_SHARDS - 1)
}

enum CompletionEvent {
    PrimaryCommit {
        op: Arc<WriteOp>,
        jseq: u64,
        txn: Transaction,
        /// The txn's journal encoding, shared (refcounted) with the
        /// journal entry — retained for `pending_apply` without a deep
        /// transaction clone.
        payload: Bytes,
        pg_seq: u64,
    },
    ReplicaCommit {
        pg: Arc<Pg>,
        jseq: u64,
        txn: Transaction,
        payload: Bytes,
        pg_seq: u64,
        primary: Addr,
        rep_id: u64,
    },
}

struct OpQueue {
    q: TrackedMutex<VecDeque<Arc<Pg>>>,
    cv: TrackedCondvar,
}

/// A tagged client op parked in the QoS scheduler: the PG it targets plus
/// the pipeline closure to run once the scheduler releases it. Dropping an
/// undispatched `ClientWork` (shutdown drain) drops the closure and with
/// it every captured resource — throttle permits, trace cells — so nothing
/// leaks when queued work is abandoned.
struct ClientWork {
    pg: Arc<Pg>,
    work: pg::PgWork,
}

/// Read gate: a read must not observe the filestore before every write to
/// its object that was *ordered before it* (journal-acked but not yet
/// applied) has landed — Ceph's per-object sequencer behaviour that keeps
/// read-after-acked-write strongly consistent. Writes ordered after the
/// read do not delay it (no starvation under mixed workloads).
struct ApplyGate {
    objects: TrackedMutex<HashMap<String, (u64, u64)>>, // object → (enqueued, applied)
    cv: TrackedCondvar,
}

impl ApplyGate {
    fn new() -> Self {
        ApplyGate {
            objects: TrackedMutex::new(&classes::APPLY_GATE, HashMap::new()),
            cv: TrackedCondvar::new(),
        }
    }

    /// A write to `object` entered the pipeline.
    fn add(&self, object: &str) {
        self.objects
            .lock()
            .entry(object.to_string())
            .or_insert((0, 0))
            .0 += 1;
    }

    /// A write to `object` finished applying (no-op for untracked objects,
    /// e.g. replica-side applies that serve no reads).
    fn done(&self, object: &str) {
        let mut st = self.objects.lock();
        if let Some(e) = st.get_mut(object) {
            e.1 += 1;
            if e.1 >= e.0 {
                st.remove(object);
            }
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Current enqueue watermark for `object` (None: nothing pending).
    fn snapshot(&self, object: &str) -> Option<u64> {
        self.objects.lock().get(object).map(|e| e.0)
    }

    /// Wait until applies for `object` reach `target` (from [`Self::snapshot`]).
    fn wait_target(&self, object: &str, target: Option<u64>) {
        let Some(target) = target else { return };
        let mut st = self.objects.lock();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match st.get(object) {
                Some(&(_, applied)) if applied < target => {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        return; // fail open: a wedged apply must not hang reads
                    }
                }
                _ => return, // caught up or entry retired
            }
        }
    }

    /// Wait until every write enqueued *before now* has applied.
    fn wait_ordered(&self, object: &str) {
        self.wait_target(object, self.snapshot(object));
    }

    /// Drop all gate state and release every waiter (crash simulation:
    /// the gate is volatile bookkeeping).
    fn reset(&self) {
        self.objects.lock().clear();
        self.cv.notify_all();
    }
}

/// A read handed off to the disk-reader pool (§3.1/§4.3: with the pending
/// queue, "the read requests of other PG can be processed without delay" —
/// reads leave the PG pipeline once ordered and execute off the op worker).
struct ReadJob {
    from: Addr,
    op_id: OpId,
    obj_name: String,
    offset: u64,
    len: u32,
    permit: OwnedPermit,
    gate_target: Option<u64>,
}

struct OsdInner {
    id: OsdId,
    tuning: OsdTuning,
    logger: Arc<Logger>,
    store: Arc<FileStore>,
    journal: Arc<Journal>,
    msgr: OnceLock<Messenger<OsdMsg>>,
    map: SharedMap,
    monitor: Option<Arc<Monitor>>,
    pgs: TrackedRwLock<HashMap<PgId, Arc<Pg>>>,
    opq: OpQueue,
    /// Per-volume QoS scheduler for *client* ops (reservation-first +
    /// token-bucket limits; see `crate::qos`). Internal traffic —
    /// replication, acks, recovery, peering — bypasses it via the plain
    /// `opq`, which workers always drain first. Consulted only when
    /// `tuning.qos_enabled`.
    qos: QosScheduler<ClientWork>,
    client_throttle: Arc<Throttle>,
    /// Outstanding `Replicate` sub-ops, sharded by the rep id's embedded
    /// PG shard so acks for different PG shards never contend on one lock.
    rep_waits: Vec<TrackedMutex<HashMap<u64, RepWait>>>,
    /// Outstanding recovery pushes, sharded like `rep_waits`.
    push_waits: Vec<TrackedMutex<HashMap<u64, PushWait>>>,
    /// Replica-side dedup windows, sharded like `rep_waits`.
    rep_seen: Vec<TrackedMutex<RepSeen>>,
    /// Last heartbeat heard from each up peer (ping or pong).
    hb_peers: TrackedMutex<HashMap<OsdId, Instant>>,
    next_rep_id: AtomicU64,
    trim: TrackedMutex<TrimTracker>,
    /// Journaled-but-unapplied entries: apply-gate object → the entry's
    /// journal encoding (shared with the journal's copy, refcount only —
    /// never a deep transaction clone). Decoded only on the cold replay
    /// path.
    pending_apply: TrackedMutex<HashMap<u64, (String, Bytes)>>,
    apply_gate: ApplyGate,
    completion_tx: TrackedMutex<Option<crossbeam::channel::Sender<CompletionEvent>>>,
    reader_tx: TrackedMutex<Option<crossbeam::channel::Sender<ReadJob>>>,
    recorder: StageRecorder,
    acker: OrderedAcker,
    shutdown: AtomicBool,
    /// Process freeze (failure injection): drops every inbound message and
    /// suspends the heartbeat loop until `resume`.
    paused: AtomicBool,
    // counters (shared metric cells, registrable into a cluster registry)
    client_ops: MetricCounter,
    writes: MetricCounter,
    reads: MetricCounter,
    repops: MetricCounter,
    repacks: MetricCounter,
    apply_failures: MetricCounter,
    rep_resends: MetricCounter,
    hb_pings: MetricCounter,
    hb_reports: MetricCounter,
    peering_rounds: MetricCounter,
    peering_completed: MetricCounter,
    recovery_pushes: MetricCounter,
    recovery_push_acks: MetricCounter,
    recovery_requeues: MetricCounter,
    pgs_degraded: MetricGauge,
    pgs_recovering: MetricGauge,
    pgs_peering: MetricGauge,
}

/// A running OSD daemon.
pub struct Osd {
    inner: Arc<OsdInner>,
    workers: TrackedMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Osd {
    /// Spawn an OSD: opens the filestore and journal, registers with the
    /// network, and starts the op-worker (and, in AFCeph mode, completion)
    /// threads.
    pub fn spawn(params: OsdParams) -> Result<Arc<Osd>> {
        let tuning = params.tuning.clone();
        let logger = Logger::new(tuning.logging.log_config());
        let fs_profile = if tuning.lightweight_txn {
            TxnProfile::Lightweight
        } else {
            TxnProfile::Community
        };
        let fs_cfg = FileStoreConfig {
            profile: fs_profile,
            queue_max_ops: tuning.filestore_queue_max_ops(),
            apply_threads: tuning.apply_threads,
            ..if tuning.lightweight_txn {
                FileStoreConfig::lightweight()
            } else {
                FileStoreConfig::community()
            }
        };
        let store = FileStore::new(Arc::clone(&params.data_dev), fs_cfg)?;
        let journal = Journal::new(
            Arc::clone(&params.journal_dev),
            JournalConfig {
                capacity: params.journal_capacity,
                batch_max_ops: tuning.journal_batch_max_ops,
                batch_max_bytes: tuning.journal_batch_max_bytes,
                batch_max_wait: Duration::from_micros(tuning.journal_batch_max_wait_us),
                ..JournalConfig::default()
            },
        );
        let inner = Arc::new(OsdInner {
            id: params.id,
            logger,
            store,
            journal,
            msgr: OnceLock::new(),
            map: params.map,
            monitor: params.monitor,
            pgs: TrackedRwLock::new(&classes::OSD_PG_MAP, HashMap::new()),
            opq: OpQueue {
                q: TrackedMutex::new(&classes::OP_QUEUE, VecDeque::new()),
                cv: TrackedCondvar::new(),
            },
            qos: QosScheduler::new(),
            client_throttle: Arc::new(Throttle::new(
                "osd_client_message_cap",
                tuning.client_message_cap(),
            )),
            rep_waits: (0..COMPLETION_SHARDS)
                .map(|_| TrackedMutex::new(&classes::REP_WAITS, HashMap::new()))
                .collect(),
            push_waits: (0..COMPLETION_SHARDS)
                .map(|_| TrackedMutex::new(&classes::PUSH_WAITS, HashMap::new()))
                .collect(),
            rep_seen: (0..COMPLETION_SHARDS)
                .map(|_| TrackedMutex::new(&classes::REP_SEEN, RepSeen::new()))
                .collect(),
            hb_peers: TrackedMutex::new(&classes::HB_PEERS, HashMap::new()),
            next_rep_id: AtomicU64::new(1),
            trim: TrackedMutex::new(&classes::TRIM, TrimTracker::new()),
            pending_apply: TrackedMutex::new(&classes::PENDING_APPLY, HashMap::new()),
            apply_gate: ApplyGate::new(),
            completion_tx: TrackedMutex::new(&classes::OSD_CHANNEL_TX, None),
            reader_tx: TrackedMutex::new(&classes::OSD_CHANNEL_TX, None),
            recorder: StageRecorder::new(16, 4096),
            acker: OrderedAcker::new(),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            client_ops: MetricCounter::new(),
            writes: MetricCounter::new(),
            reads: MetricCounter::new(),
            repops: MetricCounter::new(),
            repacks: MetricCounter::new(),
            apply_failures: MetricCounter::new(),
            rep_resends: MetricCounter::new(),
            hb_pings: MetricCounter::new(),
            hb_reports: MetricCounter::new(),
            peering_rounds: MetricCounter::new(),
            peering_completed: MetricCounter::new(),
            recovery_pushes: MetricCounter::new(),
            recovery_push_acks: MetricCounter::new(),
            recovery_requeues: MetricCounter::new(),
            pgs_degraded: MetricGauge::new(),
            pgs_recovering: MetricGauge::new(),
            pgs_peering: MetricGauge::new(),
            tuning,
        });
        let msgr = params.net.register(
            Addr::Osd(params.id),
            Arc::new(OsdDispatcher(Arc::clone(&inner))),
        )?;
        if inner.msgr.set(msgr).is_err() {
            return Err(AfcError::Corruption(format!(
                "messenger for {} registered twice",
                params.id
            )));
        }
        let spawn_worker = |name: String, f: Box<dyn FnOnce() + Send>| {
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(f)
                .map_err(|e| AfcError::Io(format!("spawn {name}: {e}")))
        };
        // On any spawn failure, tear down the workers already started so a
        // partially-constructed OSD never leaks threads.
        let mut workers = Vec::new();
        let result = (|| -> Result<()> {
            for i in 0..inner.tuning.op_threads.max(1) {
                let inner = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-op-{i}", params.id),
                    Box::new(move || op_worker_loop(inner)),
                )?);
            }
            if inner.tuning.pending_queue {
                let (tx, rx) = crossbeam::channel::unbounded::<ReadJob>();
                *inner.reader_tx.lock() = Some(tx);
                for i in 0..2 {
                    let rx = rx.clone();
                    let inner2 = Arc::clone(&inner);
                    workers.push(spawn_worker(
                        format!("{}-reader-{i}", params.id),
                        Box::new(move || {
                            while let Ok(job) = rx.recv() {
                                inner2.execute_read(job);
                            }
                        }),
                    )?);
                }
            }
            if inner.tuning.dedicated_completion {
                let (tx, rx) = crossbeam::channel::unbounded();
                *inner.completion_tx.lock() = Some(tx);
                let inner2 = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-completion", params.id),
                    Box::new(move || completion_worker_loop(inner2, rx)),
                )?);
            }
            // Replication retransmit ticker: sweeps rep_waits for sub-ops
            // whose ack is overdue (lost Replicate or RepAck) and resends,
            // failing the op after rep_max_resends attempts. Also sweeps
            // push_waits, requeueing overdue recovery pushes.
            {
                let inner2 = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-reptimer", params.id),
                    Box::new(move || {
                        while !inner2.shutdown.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(10));
                            inner2.resend_expired_reps();
                            inner2.requeue_expired_pushes();
                        }
                    }),
                )?);
            }
            // Heartbeat / self-healing ticker (opt-in): pings peers,
            // reports silent ones to the monitor, and pumps the peering
            // and recovery state machines on every map-epoch change.
            if inner.tuning.heartbeat_interval_ms > 0 && inner.monitor.is_some() {
                let interval = Duration::from_millis(inner.tuning.heartbeat_interval_ms);
                let inner2 = Arc::clone(&inner);
                workers.push(spawn_worker(
                    format!("{}-hb", params.id),
                    Box::new(move || {
                        while !inner2.shutdown.load(Ordering::Relaxed) {
                            std::thread::sleep(interval);
                            if inner2.paused.load(Ordering::Relaxed)
                                || inner2.shutdown.load(Ordering::Relaxed)
                            {
                                continue;
                            }
                            inner2.heartbeat_tick();
                        }
                    }),
                )?);
            }
            Ok(())
        })();
        if let Err(e) = result {
            // ordering: cold spawn-failure path; SeqCst so the flag is ahead
            // of the cv notify and channel teardown below in every thread's
            // view (the worker loops read it Relaxed).
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.opq.cv.notify_all();
            *inner.completion_tx.lock() = None;
            *inner.reader_tx.lock() = None;
            drop(inner.qos.clear());
            for h in workers {
                let _ = h.join();
            }
            return Err(e);
        }
        Ok(Arc::new(Osd {
            inner,
            workers: TrackedMutex::new(&classes::OSD_WORKERS, workers),
        }))
    }

    /// This OSD's id.
    pub fn id(&self) -> OsdId {
        self.inner.id
    }

    /// The filestore (stats, direct reads in tests).
    pub fn store(&self) -> &Arc<FileStore> {
        &self.inner.store
    }

    /// The journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.inner.journal
    }

    /// The debug logger.
    pub fn logger(&self) -> &Arc<Logger> {
        &self.inner.logger
    }

    /// Collected Figure-3 stage samples.
    pub fn stage_samples(&self) -> Vec<StageSample> {
        self.inner.recorder.samples()
    }

    /// Register this OSD's instrumentation into a cluster metric
    /// registry:
    ///
    /// - op counters under `osd<N>.op.*` (plus client-throttle waits
    ///   under `osd<N>.op.client_throttle.*`),
    /// - write-path stage histograms under `osd<N>.stage.*` (fed from
    ///   the sampled stage recorder),
    /// - filestore under `osd<N>.fs.*`, its KV DB under `osd<N>.kv.*`,
    /// - the debug logger's counters as `osd<N>.log.*`,
    /// - the journal's counters under `<journal_prefix>.*` (the caller
    ///   picks the node-scoped name, e.g. `node0.journal`).
    pub fn attach_metrics(&self, m: &Metrics, journal_prefix: &str) {
        let inner = &self.inner;
        let op = format!("osd{}.op", inner.id.0);
        let fields: [(&str, &MetricCounter); 7] = [
            ("client_ops", &inner.client_ops),
            ("writes", &inner.writes),
            ("reads", &inner.reads),
            ("repops", &inner.repops),
            ("repacks", &inner.repacks),
            ("apply_failures", &inner.apply_failures),
            ("rep_resends", &inner.rep_resends),
        ];
        for (name, cell) in fields {
            m.register_counter(format!("{op}.{name}"), cell);
        }
        let hb = format!("osd{}.hb", inner.id.0);
        m.register_counter(format!("{hb}.pings"), &inner.hb_pings);
        m.register_counter(format!("{hb}.reports"), &inner.hb_reports);
        let peering = format!("osd{}.peering", inner.id.0);
        m.register_counter(format!("{peering}.rounds"), &inner.peering_rounds);
        m.register_counter(format!("{peering}.completed"), &inner.peering_completed);
        m.register_gauge(format!("{peering}.pgs_peering"), &inner.pgs_peering);
        let rec = format!("osd{}.recovery", inner.id.0);
        m.register_counter(format!("{rec}.pushes"), &inner.recovery_pushes);
        m.register_counter(format!("{rec}.push_acks"), &inner.recovery_push_acks);
        m.register_counter(format!("{rec}.requeues"), &inner.recovery_requeues);
        m.register_gauge(format!("{rec}.pgs_degraded"), &inner.pgs_degraded);
        m.register_gauge(format!("{rec}.pgs_recovering"), &inner.pgs_recovering);
        let qos = format!("osd{}.qos", inner.id.0);
        m.attach_set(&qos, inner.qos.counters());
        m.attach_hist_set(&qos, inner.qos.hists());
        inner
            .client_throttle
            .register_into(m, &format!("{op}.client_throttle"));
        inner
            .recorder
            .attach_hists(StageHists::register(m, &format!("osd{}.stage", inner.id.0)));
        inner
            .store
            .register_metrics(m, &format!("osd{}.fs", inner.id.0));
        inner
            .store
            .register_kv_metrics(m, &format!("osd{}.kv", inner.id.0));
        inner
            .logger
            .attach_metrics(m, &format!("osd{}", inner.id.0));
        inner.journal.register_metrics(m, journal_prefix);
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> OsdStats {
        let inner = &self.inner;
        let (plw, plwu) = {
            let pgs = inner.pgs.read();
            pgs.values()
                .map(|p| p.lock_stats())
                .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
        };
        let (ctw, ctwu) = inner.client_throttle.wait_stats();
        OsdStats {
            client_ops: inner.client_ops.get(),
            writes: inner.writes.get(),
            reads: inner.reads.get(),
            repops: inner.repops.get(),
            repacks: inner.repacks.get(),
            pg_lock_waits: plw,
            pg_lock_wait_us: plwu,
            client_throttle_waits: ctw,
            client_throttle_wait_us: ctwu,
            journal: inner.journal.stats(),
            filestore: inner.store.stats(),
            kv: inner.store.kv_stats(),
            device: inner.store.fs().device().stats(),
            log_submitted: inner.logger.counters().get("log.submitted"),
            log_wait_us: inner.logger.counters().get("log.block_wait_us"),
            apply_failures: inner.apply_failures.get(),
            rep_resends: inner.rep_resends.get(),
        }
    }

    /// Re-apply journal entries that had not reached the filestore (crash
    /// recovery). Decodes every surviving (valid, untrimmed) journal entry
    /// plus any in-memory pending applies and re-runs them in sequence
    /// order. Safe to call repeatedly: each successful pass trims what it
    /// applied, so a second pass is a no-op.
    pub fn replay_journal(&self) -> Result<usize> {
        let entries = self.inner.journal.replay();
        // A crash loses the trim tracker; resynchronize it to the oldest
        // surviving journal sequence so post-replay trims can advance.
        if let Some(first) = entries.first() {
            let mut t = self.inner.trim.lock();
            if t.watermark() + 1 < first.seq {
                *t = TrimTracker::resume_from(first.seq - 1);
            }
        }
        let mut todo: Vec<(u64, Transaction)> = Vec::with_capacity(entries.len());
        for e in &entries {
            todo.push((e.seq, Transaction::decode_shared(&e.payload)?));
        }
        {
            let p = self.inner.pending_apply.lock();
            for (s, (_, payload)) in p.iter() {
                if !todo.iter().any(|(s2, _)| s2 == s) {
                    todo.push((*s, Transaction::decode_shared(payload)?));
                }
            }
        }
        todo.sort_by_key(|(s, _)| *s);
        let n = todo.len();
        for (seq, txn) in todo {
            self.inner.store.apply_sync(txn)?;
            self.inner.on_applied(seq);
        }
        Ok(n)
    }

    /// Simulate a process crash + restart of this OSD's storage stack:
    /// volatile state (pending-apply bookkeeping, read gates, unsynced
    /// filestore KV records, metadata cache) is lost; the NVRAM journal
    /// ring and applied object data survive. Call [`Self::replay_journal`]
    /// afterwards, exactly as OSD init does after a real crash.
    pub fn simulate_crash(&self) -> Result<usize> {
        self.inner.pending_apply.lock().clear();
        self.inner.apply_gate.reset();
        self.inner.store.crash_volatile()
    }

    /// Simulate a process freeze: every inbound message is dropped and the
    /// heartbeat loop stops, so peers stop hearing from this OSD and (with
    /// failure detection on) report it down. Storage state is untouched.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::Relaxed);
    }

    /// Whether this OSD is currently paused.
    pub fn is_paused(&self) -> bool {
        self.inner.paused.load(Ordering::Relaxed)
    }

    /// Unfreeze a paused OSD. Local PGs are fenced into `Peering` *before*
    /// dispatch resumes, so a formerly-primary OSD cannot serve stale data
    /// in the window before its first post-resume peering round completes.
    pub fn resume(&self) {
        let pgs: Vec<Arc<Pg>> = self.inner.pgs.read().values().cloned().collect();
        for pg in pgs {
            let mut st = pg.lock_measured();
            st.health = PgHealth::Peering;
            st.peering = None;
            st.acting.clear(); // force a fresh round on the next tick
        }
        // Restart every peer's grace window from scratch.
        self.inner.hb_peers.lock().clear();
        self.inner.paused.store(false, Ordering::Relaxed);
    }

    /// Drain in-flight work (test/bench helper): waits until the filestore
    /// queue empties and the journal has committed everything submitted.
    pub fn quiesce(&self) {
        self.inner.journal.quiesce();
        self.inner.store.wait_idle();
    }

    /// Stop the op/completion threads. The OSD stops consuming its queue;
    /// the network endpoint should be shut down by the cluster first.
    /// Idempotent: later calls find the worker list already drained.
    pub fn shutdown(&self) {
        // ordering: cold shutdown path; SeqCst so the flag is ahead of the
        // cv notify and channel teardown below in every thread's view (the
        // worker loops read it Relaxed).
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.opq.cv.notify_all();
        *self.inner.completion_tx.lock() = None;
        *self.inner.reader_tx.lock() = None;
        // Abandon undispatched QoS-queued client ops: dropping the work
        // closures releases their captured throttle permits.
        drop(self.inner.qos.clear());
        self.inner.client_throttle.close();
        // Fail writes still waiting on replica acks (e.g. acks lost to
        // injected faults) so nothing blocks on them across shutdown, and
        // release any readers parked on their apply gates.
        let stranded: Vec<Arc<WriteOp>> = self
            .inner
            .rep_waits
            .iter()
            .flat_map(|shard| {
                let mut w = shard.lock();
                w.drain().map(|(_, rw)| rw.op).collect::<Vec<_>>()
            })
            .collect();
        for op in stranded {
            self.inner
                .fail_op(&op, AfcError::ShutDown("osd stopping".into()));
        }
        for shard in &self.inner.push_waits {
            shard.lock().clear();
        }
        self.inner.apply_gate.reset();
        // Take the handles out first: joining while holding the workers
        // lock would block concurrent shutdown() callers on a lock held
        // across thread exit instead of on join itself.
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

struct OsdDispatcher(Arc<OsdInner>);

impl Dispatcher<OsdMsg> for OsdDispatcher {
    fn dispatch(&self, from: Addr, msg: OsdMsg) {
        let inner = &self.0;
        if inner.shutdown.load(Ordering::Relaxed) || inner.paused.load(Ordering::Relaxed) {
            return;
        }
        match msg {
            OsdMsg::Request(op) => inner.handle_request(from, op),
            OsdMsg::Replicate(rep) => inner.handle_repop(from, rep),
            OsdMsg::RepAck(ack) => inner.handle_repack(ack),
            OsdMsg::Ping(p) => inner.handle_ping(from, p),
            OsdMsg::Pong(p) => inner.note_peer_alive(p.from),
            OsdMsg::PgQuery(q) => inner.handle_pgquery(from, q),
            OsdMsg::PgInfo(i) => inner.handle_pginfo(i),
            OsdMsg::Push(push) => inner.handle_push(from, push),
            OsdMsg::Reply(_) => {
                inner
                    .logger
                    .log(Level::Error, "osd", "unexpected client reply at OSD");
            }
        }
    }
}

fn op_worker_loop(inner: Arc<OsdInner>) {
    let blocking = !inner.tuning.pending_queue;
    let qos_on = inner.tuning.qos_enabled;
    loop {
        let pg = {
            let mut q = inner.opq.q.lock();
            loop {
                // Internal traffic (replication, acks, recovery, peering)
                // always dispatches first and is never rate-limited:
                // shaping it would stall the very pipelines client QoS
                // depends on.
                if let Some(pg) = q.pop_front() {
                    break pg;
                }
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if qos_on {
                    // Lock order: OP_QUEUE (held) → OSD_QOS inside
                    // dequeue — ranks 100 → 102.
                    match inner.qos.dequeue(Instant::now()) {
                        Deq::Ready(cw) => {
                            // Admit into the PG pending FIFO *before*
                            // releasing the op-queue lock (OP_QUEUE 100 →
                            // PG_PENDING 300). Every QoS dequeue happens
                            // under `opq.q`, so admitting under the same
                            // lock makes scheduler pop order and PG FIFO
                            // order one atomic step — admission after the
                            // unlock would let two workers race
                            // `Pg::queue` and invert same-volume op
                            // order, which the read gate and ordered-ack
                            // machinery assume cannot happen.
                            let ClientWork { pg, work } = cw;
                            pg.queue(work);
                            break pg;
                        }
                        Deq::Wait(deadline) => {
                            // Every backlogged volume is at its IOPS
                            // limit: sleep until the earliest token (or
                            // an enqueue/shutdown notify) instead of
                            // spinning.
                            let _ = inner.opq.cv.wait_until(&mut q, deadline);
                            continue;
                        }
                        Deq::Empty => {}
                    }
                }
                inner.opq.cv.wait(&mut q);
            }
        };
        pg.drain(blocking);
    }
}

fn completion_worker_loop(inner: Arc<OsdInner>, rx: crossbeam::channel::Receiver<CompletionEvent>) {
    while let Ok(first) = rx.recv() {
        // Batch everything immediately available (§3.1: "Multiple
        // completion per PG can be processed at once").
        let mut batch = vec![first];
        while batch.len() < 128 {
            match rx.try_recv() {
                Ok(e) => batch.push(e),
                Err(_) => break,
            }
        }
        // Pass 1: filestore hand-off, acks and replies — no PG lock (the
        // §3.1 point: completion no longer serializes on PG locks, and a
        // full filestore throttle cannot wedge readers holding them).
        let mut by_pg: HashMap<PgId, (Arc<Pg>, u64)> = HashMap::new();
        for ev in &batch {
            let (pg, seq) = match ev {
                CompletionEvent::PrimaryCommit { op, pg_seq, .. } => (Arc::clone(&op.pg), *pg_seq),
                CompletionEvent::ReplicaCommit { pg, pg_seq, .. } => (Arc::clone(pg), *pg_seq),
            };
            let e = by_pg.entry(pg.id()).or_insert((pg, 0));
            e.1 = e.1.max(seq);
        }
        for ev in batch {
            match ev {
                CompletionEvent::PrimaryCommit {
                    op,
                    jseq,
                    txn,
                    payload,
                    ..
                } => {
                    inner.enqueue_filestore(jseq, txn, payload);
                    if let Some(t) = &op.trace {
                        t.lock().handled = Some(Instant::now());
                    }
                    {
                        let mut p = op.progress.lock();
                        p.local_commit = true;
                    }
                    inner.maybe_reply(&op);
                }
                CompletionEvent::ReplicaCommit {
                    jseq,
                    txn,
                    payload,
                    primary,
                    rep_id,
                    ..
                } => {
                    inner.enqueue_filestore(jseq, txn, payload);
                    inner.mark_rep_done(primary, rep_id);
                    inner.send(
                        primary,
                        OsdMsg::RepAck(RepOpReply {
                            rep_id,
                            from: inner.id,
                        }),
                    );
                }
            }
        }
        // Pass 2: batched PG bookkeeping, one lock acquisition per PG.
        for (_, (pg, max_seq)) in by_pg {
            let mut st = pg.lock_measured();
            st.last_committed = st.last_committed.max(max_seq);
        }
    }
}

impl OsdInner {
    fn msgr(&self) -> &Messenger<OsdMsg> {
        self.msgr.get().expect("messenger registered at spawn")
    }

    fn send(&self, to: Addr, msg: OsdMsg) {
        let bytes = msg.wire_bytes();
        if let Err(e) = self.msgr().send(to, msg, bytes) {
            self.logger
                .logf(Level::Error, "osd", || format!("send to {to} failed: {e}"));
        }
    }

    fn log(&self, msg: &'static str) {
        self.logger.log(Level::Trace, "osd", msg);
    }

    /// Model the per-op allocator churn (§3.2): real transient allocations.
    fn alloc_overhead(&self) {
        let n = self.tuning.allocator.allocs_per_op();
        for i in 0..n {
            let mut v: Vec<u8> = Vec::with_capacity(64 + (i & 7) * 16);
            v.push(i as u8);
            std::hint::black_box(&v);
        }
    }

    fn pg(&self, id: PgId) -> Arc<Pg> {
        if let Some(pg) = self.pgs.read().get(&id) {
            return Arc::clone(pg);
        }
        let mut w = self.pgs.write();
        Arc::clone(w.entry(id).or_insert_with(|| Pg::new(id)))
    }

    /// Enqueue *internal* work (replication, acks, recovery) on the plain
    /// op queue. Client ops must go through [`Self::queue_client`] so the
    /// QoS scheduler sees them — the analyze `qos-tag` rule enforces this.
    fn queue_pg(&self, pg: Arc<Pg>, work: pg::PgWork) {
        pg.queue(work);
        let mut q = self.opq.q.lock();
        q.push_back(pg);
        drop(q);
        self.opq.cv.notify_one();
    }

    /// Route a tagged client op to the op workers: through the per-volume
    /// QoS scheduler when enabled, else straight onto the plain queue.
    fn queue_client(&self, qos: &QosTag, pg: Arc<Pg>, work: pg::PgWork) {
        if !self.tuning.qos_enabled {
            // qos-ok: QoS disabled by tuning — legacy arrival-order path.
            self.queue_pg(pg, work);
            return;
        }
        self.qos
            .enqueue(qos, ClientWork { pg, work }, Instant::now());
        // Serialize against a worker's empty-check: workers inspect the
        // scheduler while holding `opq.q` and release it only inside
        // `cv.wait`, so acquiring the queue lock here (even empty-handed)
        // guarantees our notify lands after their wait began — no lost
        // wakeup.
        drop(self.opq.q.lock());
        self.opq.cv.notify_one();
    }

    // ---------------------------------------------------------------- //
    // Client requests
    // ---------------------------------------------------------------- //

    fn handle_request(self: &Arc<Self>, from: Addr, op: ClientOp) {
        self.client_ops.inc();
        self.log("ms_fast_dispatch client op");
        // osd_client_message_cap: blocks this client's connection thread
        // when the OSD has too many undispatched messages (§3.2).
        let permit = match self.client_throttle.acquire_owned(1) {
            Ok(p) => p,
            Err(_) => return,
        };
        // Primary check against the current map: a stale client (or a map
        // that moved underneath it) gets a typed reject so it refreshes
        // its snapshot and re-targets instead of hammering us.
        let map = self.map.read().clone();
        let primary = map.pg_primary(op.pg).ok();
        if primary != Some(self.id) {
            self.send(
                from,
                OsdMsg::Reply(ClientReply {
                    op_id: op.op_id,
                    result: Err(AfcError::NotPrimary(format!(
                        "{} is not primary for pg {} at epoch {}",
                        self.id,
                        op.pg,
                        map.epoch().0
                    ))),
                }),
            );
            return;
        }
        // Down-but-placed peers: every write they miss is journaled into
        // the PG's `peer_missing` ledger for later recovery pushes.
        let acting = map.pg_acting(op.pg).unwrap_or_default();
        let absent: Vec<OsdId> = map
            .pg_placed(op.pg)
            .unwrap_or_default()
            .into_iter()
            .filter(|o| !acting.contains(o))
            .collect();
        let pg = self.pg(op.pg);
        let inner = Arc::clone(self);
        let qos = op.qos;
        match op.op {
            ObjectOp::Write { offset, data } => {
                let trace = self
                    .recorder
                    .should_trace()
                    .then(|| TrackedMutex::new(&classes::OP_TRACE, TraceTimes::start()));
                let needed_acks = acting.len().saturating_sub(1);
                // §3.1: ordered acks when enabled OSD-wide or requested by
                // the client ("sends client sequential acks if a client
                // wants to receive ordered acks as requested").
                let ack_lane = (self.tuning.ordered_acks || op.ordered_ack)
                    .then(|| self.acker.assign(op.client, op.pg));
                let wop = Arc::new(WriteOp {
                    client: op.client,
                    op_id: op.op_id,
                    reply_to: from,
                    pg: Arc::clone(&pg),
                    needed_acks,
                    progress: TrackedMutex::new(
                        &classes::OP_PROGRESS,
                        Progress {
                            local_commit: false,
                            acks: 0,
                            replied: false,
                        },
                    ),
                    permit: TrackedMutex::new(&classes::OP_PERMIT, Some(permit)),
                    trace,
                    ack_lane,
                });
                let object = op.object;
                let replicas: Vec<OsdId> = acting.iter().copied().skip(1).collect();
                let pgc = Arc::clone(&pg);
                if let Some(t) = &wop.trace {
                    t.lock().queued = Some(Instant::now());
                }
                self.queue_client(
                    &qos,
                    pg,
                    Box::new(move |st| {
                        if let Some(t) = &wop.trace {
                            t.lock().dequeue = Some(Instant::now());
                        }
                        if !inner.pg_ready(st, &acting) {
                            inner.fail_op(
                                &wop,
                                AfcError::WrongEpoch(format!("pg {} is peering", pgc.id())),
                            );
                            return;
                        }
                        inner.process_write(
                            st,
                            &pgc,
                            wop.clone(),
                            object,
                            offset,
                            data,
                            &replicas,
                            &absent,
                        );
                    }),
                );
            }
            ObjectOp::Delete => {
                let needed_acks = acting.len().saturating_sub(1);
                let wop = Arc::new(WriteOp {
                    client: op.client,
                    op_id: op.op_id,
                    reply_to: from,
                    pg: Arc::clone(&pg),
                    needed_acks,
                    progress: TrackedMutex::new(
                        &classes::OP_PROGRESS,
                        Progress {
                            local_commit: false,
                            acks: 0,
                            replied: false,
                        },
                    ),
                    permit: TrackedMutex::new(&classes::OP_PERMIT, Some(permit)),
                    trace: None,
                    ack_lane: None,
                });
                let object = op.object;
                let replicas: Vec<OsdId> = acting.iter().copied().skip(1).collect();
                let pgc = Arc::clone(&pg);
                if let Some(t) = &wop.trace {
                    t.lock().queued = Some(Instant::now());
                }
                self.queue_client(
                    &qos,
                    pg,
                    Box::new(move |st| {
                        if !inner.pg_ready(st, &acting) {
                            inner.fail_op(
                                &wop,
                                AfcError::WrongEpoch(format!("pg {} is peering", pgc.id())),
                            );
                            return;
                        }
                        inner.process_delete(st, &pgc, wop.clone(), object, &replicas, &absent);
                    }),
                );
            }
            ObjectOp::Read { offset, len } => {
                let object = op.object;
                let (client, op_id) = (op.client, op.op_id);
                let pgid = op.pg;
                self.queue_client(
                    &qos,
                    pg,
                    Box::new(move |st| {
                        if !inner.pg_ready(st, &acting) {
                            inner.reject_peering(from, op_id, pgid);
                            drop(permit);
                            return;
                        }
                        inner.process_read(from, client, op_id, object, offset, len, permit);
                    }),
                );
            }
            ObjectOp::Stat => {
                let object = op.object;
                let op_id = op.op_id;
                let pgid = op.pg;
                self.queue_client(
                    &qos,
                    pg,
                    Box::new(move |st| {
                        if !inner.pg_ready(st, &acting) {
                            inner.reject_peering(from, op_id, pgid);
                            drop(permit);
                            return;
                        }
                        let obj_name = object.to_string();
                        inner.apply_gate.wait_ordered(&obj_name);
                        let result = inner.store.stat(&obj_name).map(|m| OpOutcome::Size(m.size));
                        inner.send(from, OsdMsg::Reply(ClientReply { op_id, result }));
                        drop(permit);
                    }),
                );
            }
        }
    }

    /// Whether the self-healing loop (heartbeats → peering → recovery)
    /// is active on this OSD.
    fn healing_enabled(&self) -> bool {
        self.tuning.heartbeat_interval_ms > 0 && self.monitor.is_some()
    }

    /// Whether a client op may be served right now. Two fences:
    /// - a PG mid-peering never serves (its log position is unsettled);
    /// - with healing on, `st.acting` must match the acting set the op was
    ///   admitted under — between a map epoch bump and this PG's next
    ///   peering tick the two diverge, and serving in that gap could hand
    ///   out stale (or absent) data from a just-promoted primary.
    ///
    /// Rejected ops go back typed (`WrongEpoch`) and the client retries
    /// against the refreshed map once peering settles.
    fn pg_ready(&self, st: &PgState, acting: &[OsdId]) -> bool {
        st.health != PgHealth::Peering && (!self.healing_enabled() || st.acting == acting)
    }

    /// Typed reject for read-side ops that arrive while the PG is peering.
    fn reject_peering(&self, from: Addr, op_id: OpId, pg: PgId) {
        self.send(
            from,
            OsdMsg::Reply(ClientReply {
                op_id,
                result: Err(AfcError::WrongEpoch(format!("pg {pg} is peering"))),
            }),
        );
    }

    /// The write path under the PG lock: log, metadata read (community),
    /// PG-log append, replication, journal submit.
    #[allow(clippy::too_many_arguments)]
    fn process_write(
        self: &Arc<Self>,
        st: &mut PgState,
        pg: &Arc<Pg>,
        op: Arc<WriteOp>,
        object: ObjectId,
        offset: u64,
        data: Bytes,
        replicas: &[OsdId],
        absent: &[OsdId],
    ) {
        self.log("do_op: write enter");
        self.alloc_overhead();
        let obj_name = object.to_string();
        st.next_pg_seq += 1;
        st.info_version += 1;
        let pg_seq = st.next_pg_seq;
        self.record_degraded_write(st, absent, &obj_name);
        // Replicate FIRST (splay replication, Figure 2) — before the
        // metadata read, txn build and journal submit, so each replica's
        // journal round trip overlaps the primary's own pipeline instead
        // of queueing behind it. The payload `Bytes` is refcount-shared
        // with the client decode, never copied. Each sub-op is remembered
        // with its wire form so the retransmit ticker can resend it if
        // the ack never arrives.
        let mut skipped = 0usize;
        for r in replicas.iter() {
            if self.defer_to_recovery(st, *r, &obj_name) {
                // The peer's copy of this object is stale/absent: a partial
                // write on that base would corrupt it. Leave the object in
                // `peer_missing`; the recovery pump pushes the full,
                // up-to-date copy instead. Count the ack as satisfied.
                skipped += 1;
                continue;
            }
            let rep_id = self.alloc_rep_id(pg.id());
            self.log("send repop");
            let rep = RepOp {
                rep_id,
                pg: pg.id(),
                object: object.clone(),
                op: ObjectOp::Write {
                    offset,
                    // zero-copy-ok: Bytes refcount bump into the wire message
                    data: data.clone(),
                },
                pg_seq,
            };
            self.track_rep(rep_id, &op, Addr::Osd(*r), rep.clone());
            self.send(Addr::Osd(*r), OsdMsg::Replicate(rep));
        }
        if skipped > 0 {
            op.progress.lock().acks += skipped;
        }
        self.log("get object context");
        // Object-context metadata: community reads it back from storage
        // (device read under the PG lock — Figure 3's large stage (2));
        // the LWT profile serves it from the write-through cache.
        if self.tuning.lightweight_txn {
            let _ = self.store.stat(&obj_name);
        } else {
            let _ = self.store.getattr(&obj_name, "_");
        }
        self.log("append pg log");
        let txn = build_write_txn(pg.id(), &obj_name, offset, &data, pg_seq);
        // Later reads of this object must wait for the apply (gate is
        // released in on_applied).
        self.apply_gate.add(&obj_name);
        if let Some(t) = &op.trace {
            t.lock().jsubmit = Some(Instant::now());
        }
        self.log("journal submit");
        self.log("waiting for subops");
        let inner = Arc::clone(self);
        let pgc = Arc::clone(pg);
        // The journal carries the real transaction encoding: replay after a
        // crash decodes and re-applies exactly what was acknowledged. The
        // same `Bytes` (refcount-shared) later backs `pending_apply`.
        let payload = txn.encode();
        // zero-copy-ok: Bytes refcount bump shared with the journal record
        let payload2 = payload.clone();
        let opc = Arc::clone(&op);
        let res = self.journal.submit(
            payload,
            Box::new(move |jseq| {
                if let Some(t) = &opc.trace {
                    t.lock().jcommit = Some(Instant::now());
                }
                inner.on_journal_commit_primary(pgc, opc, jseq, txn, payload2, pg_seq);
            }),
        );
        if let Err(e) = res {
            self.apply_gate.done(&obj_name);
            self.fail_op(&op, e);
        }
        self.writes.inc();
    }

    #[allow(clippy::too_many_arguments)]
    fn process_delete(
        self: &Arc<Self>,
        st: &mut PgState,
        pg: &Arc<Pg>,
        op: Arc<WriteOp>,
        object: ObjectId,
        replicas: &[OsdId],
        absent: &[OsdId],
    ) {
        self.alloc_overhead();
        let obj_name = object.to_string();
        st.next_pg_seq += 1;
        let pg_seq = st.next_pg_seq;
        let mut txn = Transaction::new();
        txn.push(TxOp::Remove {
            object: obj_name.clone(),
        });
        txn.push(pg_log_op(pg.id(), pg_seq, &obj_name));
        self.apply_gate.add(&obj_name);
        self.record_degraded_write(st, absent, &obj_name);
        let mut skipped = 0usize;
        for r in replicas {
            if self.defer_to_recovery(st, *r, &obj_name) {
                // The peer may not even hold the object (`Remove` on a
                // missing object errors); the recovery pump propagates the
                // deletion as a data-less push instead.
                skipped += 1;
                continue;
            }
            let rep_id = self.alloc_rep_id(pg.id());
            let rep = RepOp {
                rep_id,
                pg: pg.id(),
                object: object.clone(),
                op: ObjectOp::Delete,
                pg_seq,
            };
            self.track_rep(rep_id, &op, Addr::Osd(*r), rep.clone());
            self.send(Addr::Osd(*r), OsdMsg::Replicate(rep));
        }
        if skipped > 0 {
            op.progress.lock().acks += skipped;
        }
        let inner = Arc::clone(self);
        let pgc = Arc::clone(pg);
        let opc = Arc::clone(&op);
        let payload = txn.encode();
        // zero-copy-ok: Bytes refcount bump shared with the journal record
        let payload2 = payload.clone();
        let res = self.journal.submit(
            payload,
            Box::new(move |jseq| {
                inner.on_journal_commit_primary(pgc, opc, jseq, txn, payload2, pg_seq);
            }),
        );
        if let Err(e) = res {
            self.apply_gate.done(&obj_name);
            self.fail_op(&op, e);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_read(
        self: &Arc<Self>,
        from: Addr,
        _client: ClientId,
        op_id: OpId,
        object: ObjectId,
        offset: u64,
        len: u32,
        permit: OwnedPermit,
    ) {
        self.log("do_op: read");
        self.alloc_overhead();
        self.reads.inc();
        let obj_name = object.to_string();
        let gate_target = self.apply_gate.snapshot(&obj_name);
        let job = ReadJob {
            from,
            op_id,
            obj_name,
            offset,
            len,
            permit,
            gate_target,
        };
        if self.tuning.pending_queue {
            // §3.1: ordered here (gate target captured under PG order),
            // executed on the disk-reader pool so the PG lock and the op
            // worker are released immediately.
            let tx = self.reader_tx.lock().clone();
            if let Some(tx) = tx {
                if tx.send(job).is_ok() {
                    return;
                }
                return; // shutting down
            }
            return;
        }
        // Community: the device read happens right here, holding the PG
        // lock for its whole duration (the behaviour the pending queue
        // fixes: other requests to this PG — and this op worker — stall).
        self.execute_read(job);
    }

    /// Complete a read: wait for ordered applies, hit the filestore, reply.
    fn execute_read(self: &Arc<Self>, job: ReadJob) {
        self.apply_gate.wait_target(&job.obj_name, job.gate_target);
        let result = self
            .store
            .read(&job.obj_name, job.offset, job.len as usize)
            .map(|v| OpOutcome::Data(Bytes::from(v)));
        self.log("read reply");
        self.send(
            job.from,
            OsdMsg::Reply(ClientReply {
                op_id: job.op_id,
                result,
            }),
        );
        drop(job.permit);
    }

    // ---------------------------------------------------------------- //
    // Journal completion (the "commit worker"/finisher path)
    // ---------------------------------------------------------------- //

    fn on_journal_commit_primary(
        self: &Arc<Self>,
        pg: Arc<Pg>,
        op: Arc<WriteOp>,
        jseq: u64,
        txn: Transaction,
        payload: Bytes,
        pg_seq: u64,
    ) {
        if self.tuning.dedicated_completion {
            // AFCeph: OP-lock-only bookkeeping here; PG-lock work is
            // deferred to the batching completion worker.
            let tx = self.completion_tx.lock().clone();
            if let Some(tx) = tx {
                let _ = tx.send(CompletionEvent::PrimaryCommit {
                    op,
                    jseq,
                    txn,
                    payload,
                    pg_seq,
                });
            }
            return;
        }
        // Community: the single journal finisher queues the filestore
        // transaction — when the filestore throttle is full this blocks
        // the finisher, serializing every completion behind it (Figure 3
        // stage (5), Figure 4's collapse) — and then re-acquires the PG
        // lock for completion bookkeeping, contending with op workers.
        self.enqueue_filestore(jseq, txn, payload);
        let mut st = pg.lock_measured();
        self.log("journal commit -> pg backend");
        st.last_committed = st.last_committed.max(pg_seq);
        drop(st);
        if let Some(t) = &op.trace {
            t.lock().handled = Some(Instant::now());
        }
        {
            let mut p = op.progress.lock();
            p.local_commit = true;
        }
        self.maybe_reply(&op);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_journal_commit_replica(
        self: &Arc<Self>,
        pg: Arc<Pg>,
        jseq: u64,
        txn: Transaction,
        payload: Bytes,
        pg_seq: u64,
        primary: Addr,
        rep_id: u64,
    ) {
        if self.tuning.dedicated_completion {
            let tx = self.completion_tx.lock().clone();
            if let Some(tx) = tx {
                let _ = tx.send(CompletionEvent::ReplicaCommit {
                    pg,
                    jseq,
                    txn,
                    payload,
                    pg_seq,
                    primary,
                    rep_id,
                });
            }
            return;
        }
        self.enqueue_filestore(jseq, txn, payload);
        let mut st = pg.lock_measured();
        st.last_committed = st.last_committed.max(pg_seq);
        drop(st);
        self.log("replica commit ack");
        self.mark_rep_done(primary, rep_id);
        self.send(
            primary,
            OsdMsg::RepAck(RepOpReply {
                rep_id,
                from: self.id,
            }),
        );
    }

    /// Allocate a replication/push sub-op id. The counter occupies the
    /// high bits; the low [`SHARD_BITS`] carry the PG's completion shard,
    /// so the eventual ack — which carries only the id — routes straight
    /// to the right sharded wait table.
    fn alloc_rep_id(&self, pg: PgId) -> u64 {
        (self.next_rep_id.fetch_add(1, Ordering::Relaxed) << SHARD_BITS) | pg_shard(pg) as u64
    }

    /// Flip a replica-side rep_id to "committed" so retransmits re-ack.
    fn mark_rep_done(&self, primary: Addr, rep_id: u64) {
        self.rep_seen[rep_shard(rep_id)]
            .lock()
            .state
            .insert((primary, rep_id), true);
    }

    /// Remember an outstanding replication sub-op for ack tracking and
    /// timeout-driven retransmission.
    fn track_rep(&self, rep_id: u64, op: &Arc<WriteOp>, to: Addr, rep: RepOp) {
        self.rep_waits[rep_shard(rep_id)].lock().insert(
            rep_id,
            RepWait {
                op: Arc::clone(op),
                to,
                rep,
                sent: Instant::now(),
                resends: 0,
            },
        );
    }

    /// Retransmit sub-ops whose ack is overdue; give up (typed failure to
    /// the client) after `rep_max_resends` attempts. Runs on the reptimer
    /// thread every few milliseconds; sends happen outside the lock.
    fn resend_expired_reps(&self) {
        let timeout = Duration::from_millis(self.tuning.rep_resend_after_ms.max(1));
        let now = Instant::now();
        let mut resend: Vec<(Addr, RepOp)> = Vec::new();
        let mut gave_up: Vec<Arc<WriteOp>> = Vec::new();
        // Shards are swept one at a time — never two shard locks at once.
        for shard in &self.rep_waits {
            let mut waits = shard.lock();
            let mut dead: Vec<u64> = Vec::new();
            for (id, w) in waits.iter_mut() {
                if now.duration_since(w.sent) < timeout {
                    continue;
                }
                if w.resends >= self.tuning.rep_max_resends {
                    dead.push(*id);
                } else {
                    w.resends += 1;
                    w.sent = now;
                    resend.push((w.to, w.rep.clone()));
                }
            }
            for id in dead {
                if let Some(w) = waits.remove(&id) {
                    gave_up.push(w.op);
                }
            }
        }
        for (to, rep) in resend {
            self.rep_resends.inc();
            self.log("resend repop");
            self.send(to, OsdMsg::Replicate(rep));
        }
        for op in gave_up {
            self.fail_op(
                &op,
                AfcError::Timeout("replica ack timeout (resends exhausted)".into()),
            );
        }
    }

    fn enqueue_filestore(self: &Arc<Self>, jseq: u64, txn: Transaction, payload: Bytes) {
        // `payload` is the txn's journal encoding — a refcounted slice of
        // the same buffer the journal holds, so this insert is O(1) and
        // copy-free where the old code deep-cloned the transaction.
        let gate_obj = txn
            .ops()
            .first()
            .map(|o| o.object().to_string())
            .unwrap_or_default();
        self.pending_apply.lock().insert(jseq, (gate_obj, payload));
        let inner = Arc::clone(self);
        let res = self.store.queue_transaction(
            txn,
            Box::new(move |r| match r {
                Ok(()) => inner.on_applied(jseq),
                Err(e) => {
                    inner
                        .logger
                        .logf(Level::Error, "osd", || format!("apply failed: {e}"));
                    inner.apply_failures.inc();
                    inner.on_apply_failed(jseq);
                }
            }),
        );
        if let Err(e) = res {
            self.logger
                .logf(Level::Error, "osd", || format!("apply enqueue failed: {e}"));
            self.apply_failures.inc();
            self.on_apply_failed(jseq);
        }
    }

    /// A filestore apply failed. Keep the txn in `pending_apply` (journal
    /// replay after a crash/recover re-applies it) and don't trim, but
    /// release the apply gate fail-open so readers of the object aren't
    /// wedged behind a txn that will never complete on this incarnation.
    fn on_apply_failed(&self, jseq: u64) {
        let obj = self.pending_apply.lock().get(&jseq).map(|(o, _)| o.clone());
        if let Some(obj) = obj {
            if !obj.is_empty() {
                self.apply_gate.done(&obj);
            }
        }
    }

    fn on_applied(&self, jseq: u64) {
        self.log("filestore applied");
        let entry = self.pending_apply.lock().remove(&jseq);
        if let Some((obj, _)) = entry {
            if !obj.is_empty() {
                self.apply_gate.done(&obj);
            }
        }
        let watermark = self.trim.lock().mark(jseq);
        if let Some(w) = watermark {
            self.journal.trim_through(w);
        }
    }

    // ---------------------------------------------------------------- //
    // Replica side
    // ---------------------------------------------------------------- //

    fn handle_repop(self: &Arc<Self>, from: Addr, rep: RepOp) {
        self.repops.inc();
        self.log("handle repop");
        // Retransmit/duplicate dedup: a rep_id we already committed gets a
        // fresh ack (the original was lost); one still in flight is
        // ignored (its commit will ack); only new ids are journaled.
        {
            let key = (from, rep.rep_id);
            let mut seen = self.rep_seen[rep_shard(rep.rep_id)].lock();
            match seen.state.get(&key) {
                Some(true) => {
                    drop(seen);
                    self.log("re-ack duplicate repop");
                    self.send(
                        from,
                        OsdMsg::RepAck(RepOpReply {
                            rep_id: rep.rep_id,
                            from: self.id,
                        }),
                    );
                    return;
                }
                Some(false) => return,
                None => seen.insert(key),
            }
        }
        let pg = self.pg(rep.pg);
        let inner = Arc::clone(self);
        let pgc = Arc::clone(&pg);
        if self.tuning.fast_ack {
            // §3.1 + group commit: the whole sub-op — PG bookkeeping, txn
            // build, journal commit, RepAck — runs inline on the messenger
            // dispatch thread through the journal's inline fast path,
            // cutting the PG-queue, committer and completion-worker
            // hand-offs out of the primary-observed ack round trip.
            pg.submit(
                Box::new(move |st| inner.process_repop(st, &pgc, from, rep)),
                true,
            );
            return;
        }
        // qos-ok: replica-side sub-op — internal traffic is never shaped.
        self.queue_pg(
            pg,
            Box::new(move |st| {
                inner.alloc_overhead();
                st.next_pg_seq = st.next_pg_seq.max(rep.pg_seq);
                let obj_name = rep.object.to_string();
                let txn = match &rep.op {
                    ObjectOp::Write { offset, data } => {
                        build_write_txn(pgc.id(), &obj_name, *offset, data, rep.pg_seq)
                    }
                    ObjectOp::Delete => {
                        let mut t = Transaction::new();
                        t.push(TxOp::Remove {
                            object: obj_name.clone(),
                        });
                        t.push(pg_log_op(pgc.id(), rep.pg_seq, &obj_name));
                        t
                    }
                    _ => return,
                };
                let inner2 = Arc::clone(&inner);
                let pgc2 = Arc::clone(&pgc);
                let payload = txn.encode();
                // zero-copy-ok: Bytes refcount bump shared with the journal record
                let payload2 = payload.clone();
                let pg_seq = rep.pg_seq;
                let rep_id = rep.rep_id;
                let _ = inner.journal.submit(
                    payload,
                    Box::new(move |jseq| {
                        inner2.on_journal_commit_replica(
                            pgc2, jseq, txn, payload2, pg_seq, from, rep_id,
                        );
                    }),
                );
            }),
        );
    }

    /// Fast-path replica sub-op, running under the PG lock on whichever
    /// thread drained it (normally the messenger dispatch thread). The
    /// journal commit callback runs either inline right here (idle
    /// journal) or later on the committer thread; both contexts only take
    /// locks ranked above `PG_STATE`, and neither re-locks this PG — the
    /// `last_committed` bump happens below, under the guard we already
    /// hold (`next_pg_seq` was raised first, so peering answers are
    /// identical either way).
    fn process_repop(self: &Arc<Self>, st: &mut PgState, pg: &Arc<Pg>, from: Addr, rep: RepOp) {
        self.alloc_overhead();
        st.next_pg_seq = st.next_pg_seq.max(rep.pg_seq);
        let obj_name = rep.object.to_string();
        let txn = match &rep.op {
            ObjectOp::Write { offset, data } => {
                build_write_txn(pg.id(), &obj_name, *offset, data, rep.pg_seq)
            }
            ObjectOp::Delete => {
                let mut t = Transaction::new();
                t.push(TxOp::Remove {
                    object: obj_name.clone(),
                });
                t.push(pg_log_op(pg.id(), rep.pg_seq, &obj_name));
                t
            }
            _ => return,
        };
        let payload = txn.encode();
        // zero-copy-ok: Bytes refcount bump shared with the journal record
        let payload2 = payload.clone();
        let inner = Arc::clone(self);
        let osd_id = self.id;
        let rep_id = rep.rep_id;
        let res = self.journal.submit_inline(
            payload,
            Box::new(move |jseq| {
                inner.enqueue_filestore(jseq, txn, payload2);
                inner.mark_rep_done(from, rep_id);
                inner.log("replica commit ack (inline)");
                inner.send(
                    from,
                    OsdMsg::RepAck(RepOpReply {
                        rep_id,
                        from: osd_id,
                    }),
                );
            }),
        );
        if res.is_ok() {
            st.last_committed = st.last_committed.max(rep.pg_seq);
        }
    }

    // ---------------------------------------------------------------- //
    // Replica acks back at the primary
    // ---------------------------------------------------------------- //

    fn handle_repack(self: &Arc<Self>, ack: RepOpReply) {
        self.repacks.inc();
        // The id's low bits name its completion shard: one sharded lock,
        // no scan, no contention with acks on other PG shards.
        let Some(wait) = self.rep_waits[rep_shard(ack.rep_id)]
            .lock()
            .remove(&ack.rep_id)
        else {
            // Not a replication sub-op: recovery-push acks share the id
            // space; anything left is a duplicate ack (retransmit raced
            // the original) and is dropped.
            self.handle_push_ack(ack);
            return;
        };
        let op = wait.op;
        if self.tuning.fast_ack {
            // §3.1: "ack messages are processed right away without
            // enqueueing them to the PG queue."
            if let Some(t) = &op.trace {
                t.lock().replicas = Some(Instant::now());
            }
            {
                let mut p = op.progress.lock();
                p.acks += 1;
            }
            self.maybe_reply(&op);
        } else {
            // Community: the ack competes with data ops for the PG queue
            // and the PG lock.
            let inner = Arc::clone(self);
            let pg = Arc::clone(&op.pg);
            // qos-ok: replica ack on the community path — internal traffic.
            self.queue_pg(
                pg,
                Box::new(move |_st| {
                    inner.log("repop reply via op_wq");
                    if let Some(t) = &op.trace {
                        t.lock().replicas = Some(Instant::now());
                    }
                    {
                        let mut p = op.progress.lock();
                        p.acks += 1;
                    }
                    inner.maybe_reply(&op);
                }),
            );
        }
    }

    // ---------------------------------------------------------------- //
    // Failure detection, peering and recovery (the self-healing loop)
    // ---------------------------------------------------------------- //

    /// Record a heartbeat (ping or pong) from `peer`.
    fn note_peer_alive(&self, peer: OsdId) {
        self.hb_peers.lock().insert(peer, Instant::now());
    }

    fn handle_ping(&self, from: Addr, ping: PingMsg) {
        self.note_peer_alive(ping.from);
        let epoch = self.map.read().epoch();
        self.send(
            from,
            OsdMsg::Pong(PingMsg {
                from: self.id,
                epoch,
            }),
        );
    }

    /// One heartbeat interval: reassert liveness, ping peers, report the
    /// silent ones, then pump peering/recovery against the current map.
    /// Runs on the dedicated `-hb` thread; never called on the I/O path.
    fn heartbeat_tick(self: &Arc<Self>) {
        let Some(mon) = self.monitor.clone() else {
            return;
        };
        // Rejoin: if the map thinks we are down (we were paused, or a peer
        // falsely accused us), reassert liveness — epoch bump, peers re-peer.
        {
            let map = self.map.read().clone();
            if !map.osd_status(self.id).up {
                mon.report_alive(self.id);
            }
        }
        let map = self.map.read().clone();
        let peers: Vec<OsdId> = map
            .crush()
            .osds()
            .into_iter()
            .filter(|&o| o != self.id && map.osd_status(o).up)
            .collect();
        // Suspicion sweep before this round's pings: a peer heard from
        // within the grace window is healthy; one first seen now starts
        // its window fresh (no instant accusations after our own resume).
        let grace = Duration::from_millis(self.tuning.heartbeat_grace_ms.max(1));
        let now = Instant::now();
        let mut suspects: Vec<OsdId> = Vec::new();
        {
            let mut hb = self.hb_peers.lock();
            hb.retain(|o, _| peers.contains(o));
            for &p in &peers {
                let last = *hb.entry(p).or_insert(now);
                if now.duration_since(last) >= grace {
                    suspects.push(p);
                }
            }
        }
        for &p in &peers {
            self.hb_pings.inc();
            self.send(
                Addr::Osd(p),
                OsdMsg::Ping(PingMsg {
                    from: self.id,
                    epoch: map.epoch(),
                }),
            );
        }
        for s in suspects {
            self.hb_reports.inc();
            mon.report_down(self.id, s);
        }
        mon.tick();
        // Pump against the possibly-just-bumped map.
        let map = self.map.read().clone();
        self.pump_pgs(&map, &mon);
        self.refresh_health_gauges();
    }

    /// Drive every local PG's peering and recovery state machine one step.
    fn pump_pgs(self: &Arc<Self>, map: &OsdMap, mon: &Monitor) {
        let mut by_id: BTreeMap<PgId, Arc<Pg>> = self
            .pgs
            .read()
            .iter()
            .map(|(id, pg)| (*id, Arc::clone(pg)))
            .collect();
        // A re-placement can promote this OSD into a PG it has never
        // hosted (no ops ever touched it here): the *map*, not the local
        // PG table, decides what must be peered — instantiate those on
        // demand or they would silently never peer or backfill.
        for (pool, spec) in map.pools() {
            for seq in 0..spec.pg_num {
                let id = PgId { pool, seq };
                if !by_id.contains_key(&id)
                    && map.pg_acting(id).is_ok_and(|a| a.first() == Some(&self.id))
                {
                    by_id.insert(id, self.pg(id));
                }
            }
        }
        let pgs: Vec<Arc<Pg>> = by_id.into_values().collect();
        let mut temps: Vec<(PgId, Vec<OsdId>)> = Vec::new();
        let mut clears: Vec<PgId> = Vec::new();
        for pg in pgs {
            let acting = map.pg_acting(pg.id()).unwrap_or_default();
            if acting.first() != Some(&self.id) {
                // Replica (or unplaced): primary-side bookkeeping dies
                // here; a later promotion re-peers from scratch.
                let mut st = pg.lock_measured();
                st.peering = None;
                st.health = PgHealth::Active;
                st.acting = acting;
                st.peer_missing.clear();
                st.recovering.clear();
                st.backfill.clear();
                st.want_pg_temp = None;
                st.want_clear_temp = false;
                continue;
            }
            let placed = map.pg_placed(pg.id()).unwrap_or_default();
            let mut queries: Vec<OsdId> = Vec::new();
            let mut picks: Vec<(OsdId, String, u64)> = Vec::new();
            {
                let mut st = pg.lock_measured();
                let round_current = st.peering.as_ref().is_some_and(|r| r.epoch == map.epoch());
                if round_current {
                    // Round already in flight for this epoch: re-query the
                    // laggards (tolerates dropped peering messages).
                    if let Some(round) = &st.peering {
                        queries.extend(round.awaiting.iter().copied());
                    }
                } else if st.peering.is_some() || st.acting != acting {
                    // Stale round, or the map moved this PG: (re)peer.
                    self.start_peering(map, &pg, &mut st, &acting, &mut queries);
                }
                if st.peering.is_none() {
                    self.schedule_recovery_locked(map, pg.id(), &mut st, &mut picks);
                    // pg_temp stewardship: pin ourselves while the placed
                    // primary is down or stale; hand primacy back (behind
                    // a peering fence) once it is owed nothing. A handoff
                    // temp queued by `complete_peering` takes precedence.
                    if st.want_pg_temp.is_none()
                        && placed.first() != Some(&self.id)
                        && map.pg_temp(pg.id()).is_none()
                    {
                        st.want_pg_temp = Some(acting.clone());
                    }
                    if map.pg_temp(pg.id()).is_some() {
                        if let Some(&head) = placed.first() {
                            if head == self.id {
                                // We are the placed primary again (e.g. a
                                // re-placement after a mark-out): the
                                // override is obsolete once no placed peer
                                // is owed anything; clearing it lets the
                                // next round admit new placed members for
                                // backfill.
                                if !placed.iter().any(|o| *o != self.id && st.owes_peer(*o)) {
                                    st.want_clear_temp = true;
                                }
                            } else if map.osd_status(head).up && !st.owes_peer(head) {
                                // Fence before the handoff publishes: a
                                // write racing past this point would miss
                                // `head`; fenced, it is rejected with
                                // `WrongEpoch` and retried against the
                                // post-handoff map.
                                st.health = PgHealth::Peering;
                                st.want_clear_temp = true;
                            }
                        }
                    }
                    if let Some(t) = st.want_pg_temp.take() {
                        temps.push((pg.id(), t));
                    }
                    if std::mem::take(&mut st.want_clear_temp) {
                        clears.push(pg.id());
                    } else if st.health != PgHealth::Peering {
                        self.update_health_locked(map, &placed, &mut st);
                    }
                }
            }
            for p in queries {
                self.send(
                    Addr::Osd(p),
                    OsdMsg::PgQuery(PgQueryMsg {
                        pg: pg.id(),
                        epoch: map.epoch(),
                        from: self.id,
                    }),
                );
            }
            for (peer, obj_name, gen) in picks {
                self.send_push(&pg, peer, obj_name, gen);
            }
        }
        // pg_temp changes batch into one epoch bump each; both are no-ops
        // (and free) when the batches are empty.
        mon.set_pg_temps(&temps);
        mon.clear_pg_temps(&clears);
    }

    /// Begin a peering round for the current epoch (PG lock held).
    fn start_peering(
        &self,
        map: &OsdMap,
        pg: &Arc<Pg>,
        st: &mut PgState,
        acting: &[OsdId],
        queries: &mut Vec<OsdId>,
    ) {
        let peers: BTreeSet<OsdId> = acting.iter().copied().filter(|&o| o != self.id).collect();
        self.peering_rounds.inc();
        self.log("peering: start round");
        st.health = PgHealth::Peering;
        st.peering = Some(pg::PeeringRound {
            epoch: map.epoch(),
            awaiting: peers.clone(),
            infos: BTreeMap::new(),
        });
        if peers.is_empty() {
            // Sole member: the round completes on local info alone.
            self.complete_peering(map, pg, st);
        } else {
            queries.extend(peers);
        }
    }

    /// A peer answers a `GetInfo` with its highest known PG-log sequence.
    fn handle_pgquery(self: &Arc<Self>, from: Addr, q: PgQueryMsg) {
        let pg = self.pg(q.pg);
        let last_update = {
            let st = pg.lock_measured();
            st.next_pg_seq.max(st.last_committed)
        };
        self.send(
            from,
            OsdMsg::PgInfo(PgInfoMsg {
                pg: q.pg,
                epoch: q.epoch,
                from: self.id,
                last_update,
            }),
        );
    }

    /// Collect a peering answer; the round completes when every acting
    /// peer has reported.
    fn handle_pginfo(self: &Arc<Self>, info: PgInfoMsg) {
        // Map snapshot strictly before the PG lock (lock rank order).
        let map = self.map.read().clone();
        if info.epoch != map.epoch() {
            return; // answer from a superseded round
        }
        let pg = self.pg(info.pg);
        let mut st = pg.lock_measured();
        let Some(round) = st.peering.as_mut() else {
            return;
        };
        if round.epoch != info.epoch {
            return;
        }
        round.awaiting.remove(&info.from);
        round.infos.insert(info.from, info.last_update);
        if round.awaiting.is_empty() {
            self.complete_peering(&map, &pg, &mut st);
        }
    }

    /// Close a peering round: agree on the authoritative log position,
    /// schedule backfill for stale peers, resume I/O.
    fn complete_peering(&self, map: &OsdMap, pg: &Arc<Pg>, st: &mut PgState) {
        let Some(round) = st.peering.take() else {
            return;
        };
        let acting = map.pg_acting(pg.id()).unwrap_or_default();
        let placed = map.pg_placed(pg.id()).unwrap_or_default();
        let mine = st.next_pg_seq.max(st.last_committed);
        let target = round.infos.values().copied().fold(mine, u64::max);
        if target > mine {
            // A peer holds history we lack (we were down, or we are a
            // fresh member promoted by a re-placement): hand primacy to
            // the most advanced peer via `pg_temp` and stay fenced until
            // the map reflects it — serving I/O without the data would
            // fabricate `NotFound`s for acked writes. The interim primary
            // then backfills us and hands primacy back (see `pump_pgs`).
            let best = round
                .infos
                .iter()
                .filter(|(_, lu)| **lu == target)
                .map(|(p, _)| *p)
                .min()
                .expect("target came from infos");
            let mut temp = vec![best];
            temp.extend(acting.iter().copied().filter(|o| *o != best));
            st.want_pg_temp = Some(temp);
            st.health = PgHealth::Peering;
            st.acting = acting;
            self.peering_completed.inc();
            return;
        }
        for (&peer, &lu) in &round.infos {
            if lu != target {
                // Stale (or divergent) copy: full backfill — every local
                // object is pushed, converging the peer without a per-op
                // log diff.
                st.backfill.insert(peer);
            }
        }
        // Ledgers owed to peers that left placement (marked out) are
        // dropped: CRUSH re-homed their data.
        st.peer_missing
            .retain(|o, s| !s.is_empty() && (placed.contains(o) || map.osd_status(*o).up));
        st.backfill
            .retain(|o| placed.contains(o) || map.osd_status(*o).up);
        st.acting = acting;
        self.peering_completed.inc();
        self.log("peering: round complete");
        self.update_health_locked(map, &placed, st);
    }

    /// Recompute `health` from the ledgers and the map (PG lock held).
    fn update_health_locked(&self, map: &OsdMap, placed: &[OsdId], st: &mut PgState) {
        if st.peering.is_some() {
            st.health = PgHealth::Peering;
            return;
        }
        let owes_up = !st.recovering.is_empty()
            || st.backfill.iter().any(|o| map.osd_status(*o).up)
            || st
                .peer_missing
                .iter()
                .any(|(o, s)| !s.is_empty() && map.osd_status(*o).up);
        let degraded = placed.iter().any(|o| !st.acting.contains(o));
        st.health = if owes_up {
            PgHealth::Recovering
        } else if degraded {
            PgHealth::Degraded
        } else {
            PgHealth::Active
        };
    }

    /// Journal a write the down-but-placed peers missed (PG lock held).
    fn record_degraded_write(&self, st: &mut PgState, absent: &[OsdId], obj_name: &str) {
        for &peer in absent {
            st.peer_missing
                .entry(peer)
                .or_default()
                .insert(obj_name.to_string());
        }
        if !absent.is_empty() && st.health == PgHealth::Active {
            st.health = PgHealth::Degraded;
        }
    }

    /// Whether replication of `obj_name` to `peer` must yield to recovery:
    /// the peer's base copy is stale or absent, so mirroring a partial
    /// write onto it would corrupt it — the pump pushes the full object
    /// instead. Supersedes any in-flight push so stale data cannot win.
    fn defer_to_recovery(&self, st: &mut PgState, peer: OsdId, obj_name: &str) -> bool {
        let missing = st
            .peer_missing
            .get(&peer)
            .is_some_and(|s| s.contains(obj_name));
        let key = (peer, obj_name.to_string());
        let in_flight = st.recovering.contains_key(&key);
        if !missing && !in_flight && !st.backfill.contains(&peer) {
            return false;
        }
        st.recovering.remove(&key);
        st.peer_missing
            .entry(peer)
            .or_default()
            .insert(obj_name.to_string());
        true
    }

    /// Move up to `recovery_max_inflight` owed objects into `recovering`
    /// (PG lock held); the caller performs the reads and sends after
    /// releasing the lock. Backfill peers get the PG's whole object list
    /// enumerated into their ledger first.
    fn schedule_recovery_locked(
        &self,
        map: &OsdMap,
        pg_id: PgId,
        st: &mut PgState,
        picks: &mut Vec<(OsdId, String, u64)>,
    ) {
        if !st.backfill.is_empty() {
            let objects: Vec<String> = self
                .store
                .list_objects()
                .into_iter()
                .filter(|name| {
                    parse_object_name(name).and_then(|obj| map.object_pg(&obj).ok()) == Some(pg_id)
                })
                .collect();
            let peers: Vec<OsdId> = st.backfill.iter().copied().collect();
            for p in peers {
                st.backfill.remove(&p);
                let set = st.peer_missing.entry(p).or_default();
                for o in &objects {
                    set.insert(o.clone());
                }
            }
        }
        let max = self.tuning.recovery_max_inflight.max(1);
        if st.recovering.len() >= max {
            return;
        }
        let budget = max - st.recovering.len();
        let mut chosen: Vec<(OsdId, String)> = Vec::new();
        'outer: for (&peer, objs) in st.peer_missing.iter() {
            if !map.osd_status(peer).up {
                continue; // unreachable peer: its ledger waits
            }
            for o in objs.iter() {
                if st.recovering.contains_key(&(peer, o.clone())) {
                    continue;
                }
                chosen.push((peer, o.clone()));
                if chosen.len() >= budget {
                    break 'outer;
                }
            }
        }
        for (peer, obj) in chosen {
            if let Some(s) = st.peer_missing.get_mut(&peer) {
                s.remove(&obj);
            }
            st.push_gen += 1;
            let gen = st.push_gen;
            st.recovering.insert((peer, obj.clone()), gen);
            picks.push((peer, obj, gen));
        }
    }

    /// Read the authoritative copy of one owed object and push it. The
    /// read happens off the PG lock; the send re-validates the pick's
    /// generation under the lock, so a push superseded by a concurrent
    /// write is dropped (the pump re-pushes fresh data later).
    fn send_push(self: &Arc<Self>, pg: &Arc<Pg>, peer: OsdId, obj_name: String, gen: u64) {
        // Every acked write must be in the pushed bytes.
        self.apply_gate.wait_ordered(&obj_name);
        let data = match self.store.stat(&obj_name) {
            Ok(m) => self
                .store
                .read(&obj_name, 0, m.size as usize)
                .ok()
                .map(Bytes::from),
            Err(_) => None, // deleted (or never created): propagate absence
        };
        let Some(object) = parse_object_name(&obj_name) else {
            return;
        };
        let st = pg.lock_measured();
        if st.recovering.get(&(peer, obj_name.clone())) != Some(&gen) {
            return; // superseded; the pump will push fresh data
        }
        let push_id = self.alloc_rep_id(pg.id());
        let push = PushOp {
            push_id,
            pg: pg.id(),
            object,
            data,
            pg_seq: st.next_pg_seq,
        };
        // PG_STATE → PUSH_WAITS ranks upward; holding the PG lock through
        // the send keeps the ack from racing this bookkeeping.
        self.push_waits[rep_shard(push_id)].lock().insert(
            push_id,
            PushWait {
                pg: Arc::clone(pg),
                peer,
                object: obj_name,
                gen,
                sent: Instant::now(),
            },
        );
        self.recovery_pushes.inc();
        self.log("send recovery push");
        self.send(Addr::Osd(peer), OsdMsg::Push(push));
        drop(st);
    }

    /// Replica side of a recovery push: install the full copy (or the
    /// deletion) through the normal journal → filestore pipeline and ack
    /// with the shared `RepAck` message.
    fn handle_push(self: &Arc<Self>, from: Addr, push: PushOp) {
        self.log("handle recovery push");
        // Same dedup window as Replicate: push ids share the id space.
        {
            let key = (from, push.push_id);
            let mut seen = self.rep_seen[rep_shard(push.push_id)].lock();
            match seen.state.get(&key) {
                Some(true) => {
                    drop(seen);
                    self.send(
                        from,
                        OsdMsg::RepAck(RepOpReply {
                            rep_id: push.push_id,
                            from: self.id,
                        }),
                    );
                    return;
                }
                Some(false) => return,
                None => seen.insert(key),
            }
        }
        let pg = self.pg(push.pg);
        let inner = Arc::clone(self);
        let pgc = Arc::clone(&pg);
        // qos-ok: recovery push install — internal traffic is never shaped.
        self.queue_pg(
            pg,
            Box::new(move |st| {
                st.next_pg_seq = st.next_pg_seq.max(push.pg_seq);
                let obj_name = push.object.to_string();
                let txn = match &push.data {
                    Some(data) => {
                        // Full-object overwrite: truncate-then-write
                        // installs exactly the primary's copy regardless
                        // of the local state.
                        let mut t = Transaction::new();
                        t.push(TxOp::Touch {
                            object: obj_name.clone(),
                        });
                        t.push(TxOp::Truncate {
                            object: obj_name.clone(),
                            size: 0,
                        });
                        t.push(TxOp::Write {
                            object: obj_name.clone(),
                            offset: 0,
                            // zero-copy-ok: Bytes refcount bump into the txn
                            data: data.clone(),
                        });
                        t.push(pg_log_op(pgc.id(), push.pg_seq, &obj_name));
                        t
                    }
                    None => {
                        if inner.store.stat(&obj_name).is_err() {
                            // Nothing to delete locally: ack right away.
                            inner.mark_rep_done(from, push.push_id);
                            inner.send(
                                from,
                                OsdMsg::RepAck(RepOpReply {
                                    rep_id: push.push_id,
                                    from: inner.id,
                                }),
                            );
                            return;
                        }
                        let mut t = Transaction::new();
                        t.push(TxOp::Remove {
                            object: obj_name.clone(),
                        });
                        t.push(pg_log_op(pgc.id(), push.pg_seq, &obj_name));
                        t
                    }
                };
                let inner2 = Arc::clone(&inner);
                let pgc2 = Arc::clone(&pgc);
                let payload = txn.encode();
                // zero-copy-ok: Bytes refcount bump shared with the journal record
                let payload2 = payload.clone();
                let pg_seq = push.pg_seq;
                let push_id = push.push_id;
                let _ = inner.journal.submit(
                    payload,
                    Box::new(move |jseq| {
                        inner2.on_journal_commit_replica(
                            pgc2, jseq, txn, payload2, pg_seq, from, push_id,
                        );
                    }),
                );
            }),
        );
    }

    /// Primary side of a push ack: retire the in-flight entry unless a
    /// newer generation superseded it.
    fn handle_push_ack(&self, ack: RepOpReply) {
        // The push_waits guard drops before the PG lock (sequential, not
        // nested: the ranks would invert the declared order otherwise).
        let Some(pw) = self.push_waits[rep_shard(ack.rep_id)]
            .lock()
            .remove(&ack.rep_id)
        else {
            return;
        };
        self.recovery_push_acks.inc();
        let mut st = pw.pg.lock_measured();
        let key = (pw.peer, pw.object);
        if st.recovering.get(&key) == Some(&pw.gen) {
            st.recovering.remove(&key);
        }
    }

    /// Requeue pushes whose ack is overdue (lost push or lost ack, or the
    /// peer died again). A verbatim resend could overwrite a newer push on
    /// the peer, so the object goes back into `peer_missing` and the pump
    /// pushes fresh bytes instead.
    fn requeue_expired_pushes(&self) {
        let timeout = Duration::from_millis(self.tuning.rep_resend_after_ms.max(1) * 4);
        let now = Instant::now();
        let mut expired: Vec<PushWait> = Vec::new();
        for shard in &self.push_waits {
            let mut waits = shard.lock();
            let ids: Vec<u64> = waits
                .iter()
                .filter(|(_, w)| now.duration_since(w.sent) >= timeout)
                .map(|(id, _)| *id)
                .collect();
            expired.extend(ids.into_iter().filter_map(|id| waits.remove(&id)));
        }
        for pw in expired {
            self.recovery_requeues.inc();
            let mut st = pw.pg.lock_measured();
            let key = (pw.peer, pw.object.clone());
            if st.recovering.get(&key) == Some(&pw.gen) {
                st.recovering.remove(&key);
                st.peer_missing
                    .entry(pw.peer)
                    .or_default()
                    .insert(pw.object);
            }
        }
    }

    /// Refresh the per-OSD PG-health gauges (heartbeat thread).
    fn refresh_health_gauges(&self) {
        let pgs: Vec<Arc<Pg>> = self.pgs.read().values().cloned().collect();
        let (mut deg, mut rec, mut peering) = (0i64, 0i64, 0i64);
        for pg in pgs {
            match pg.lock_measured().health {
                PgHealth::Degraded => deg += 1,
                PgHealth::Recovering => rec += 1,
                PgHealth::Peering => peering += 1,
                PgHealth::Active => {}
            }
        }
        self.pgs_degraded.set(deg);
        self.pgs_recovering.set(rec);
        self.pgs_peering.set(peering);
    }

    fn maybe_reply(&self, op: &Arc<WriteOp>) {
        let ready = {
            let mut p = op.progress.lock();
            if p.replied || !p.local_commit || p.acks < op.needed_acks {
                false
            } else {
                p.replied = true;
                true
            }
        };
        self.log("op commit ready");
        if !ready {
            return;
        }
        self.log("send client reply");
        if let Some(t) = &op.trace {
            let mut tt = t.lock();
            tt.reply = Some(Instant::now());
            self.recorder.finish(&tt);
        }
        let reply = ClientReply {
            op_id: op.op_id,
            result: Ok(OpOutcome::Done),
        };
        if let Some(lane) = op.ack_lane {
            // Ordered acks: hold back until every earlier op on this
            // (client, pg) lane has been released.
            for (to, r) in self
                .acker
                .release(op.client, op.pg.id(), lane, op.reply_to, reply)
            {
                self.send(to, OsdMsg::Reply(r));
            }
        } else {
            self.send(op.reply_to, OsdMsg::Reply(reply));
        }
        *op.permit.lock() = None; // release osd_client_message_cap
    }

    fn fail_op(&self, op: &Arc<WriteOp>, err: AfcError) {
        let already = {
            let mut p = op.progress.lock();
            std::mem::replace(&mut p.replied, true)
        };
        if already {
            return;
        }
        self.send(
            op.reply_to,
            OsdMsg::Reply(ClientReply {
                op_id: op.op_id,
                result: Err(err),
            }),
        );
        *op.permit.lock() = None;
    }
}

/// Build the filestore transaction for a replicated object write — data,
/// alloc hint, object metadata attrs, and the PG-log omap append (Figure 7).
fn build_write_txn(pg: PgId, object: &str, offset: u64, data: &Bytes, pg_seq: u64) -> Transaction {
    let mut txn = Transaction::new();
    txn.push(TxOp::Touch {
        object: object.to_string(),
    });
    txn.push(TxOp::SetAllocHint {
        object: object.to_string(),
    });
    txn.push(TxOp::Write {
        object: object.to_string(),
        offset,
        // zero-copy-ok: Bytes refcount bump into the txn
        data: data.clone(),
    });
    txn.push(TxOp::SetAttrs {
        object: object.to_string(),
        attrs: vec![("snapset".to_string(), Bytes::from_static(b"{}"))],
    });
    txn.push(pg_log_op(pg, pg_seq, object));
    txn
}

/// Recover an [`ObjectId`] from its store name (`pool<N>/<name>`). PG meta
/// objects (`pgmeta_*`) and any other non-object files yield `None`, so
/// backfill enumeration skips them.
fn parse_object_name(name: &str) -> Option<ObjectId> {
    let (pool, obj) = name.split_once('/')?;
    let n: u32 = pool.strip_prefix("pool")?.parse().ok()?;
    Some(ObjectId::new(PoolId(n), obj))
}

/// The PG-log entry (omap insert on the PG's meta object): entry + info.
fn pg_log_op(pg: PgId, pg_seq: u64, object: &str) -> TxOp {
    let log_key = Bytes::from(format!("pglog.{pg_seq:016x}"));
    let log_val = Bytes::from(format!("op write {object} v{pg_seq}"));
    let info_val = Bytes::from(format!("last_update={pg_seq}"));
    TxOp::OmapSetKeys {
        object: format!("pgmeta_{pg}"),
        keys: vec![(log_key, log_val), (Bytes::from_static(b"info"), info_val)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_gate_orders_reads_after_prior_writes_only() {
        let g = ApplyGate::new();
        g.add("obj");
        g.add("obj");
        let target = g.snapshot("obj");
        assert_eq!(target, Some(2));
        // A write enqueued after the snapshot must not block this reader.
        g.add("obj");
        let g = std::sync::Arc::new(g);
        let g2 = std::sync::Arc::clone(&g);
        let reader = std::thread::spawn(move || {
            let t0 = Instant::now();
            g2.wait_target("obj", target);
            t0.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.done("obj");
        g.done("obj"); // applied == 2 == target → reader releases
        let waited = reader.join().unwrap();
        assert!(
            waited >= std::time::Duration::from_millis(15),
            "did not wait: {waited:?}"
        );
        assert!(
            waited < std::time::Duration::from_secs(5),
            "waited for the later write"
        );
        g.done("obj"); // third apply retires the entry
        assert_eq!(g.snapshot("obj"), None);
    }

    #[test]
    fn apply_gate_untracked_object_passes() {
        let g = ApplyGate::new();
        assert_eq!(g.snapshot("ghost"), None);
        g.wait_target("ghost", None); // returns immediately
        g.done("ghost"); // no-op
    }

    #[test]
    fn apply_gate_distinct_objects_independent() {
        let g = ApplyGate::new();
        g.add("a");
        assert_eq!(g.snapshot("b"), None);
        g.wait_target("b", g.snapshot("b")); // b is unaffected by a
        g.done("a");
        assert_eq!(g.snapshot("a"), None);
    }

    #[test]
    fn build_write_txn_shape() {
        let pg = PgId {
            pool: afc_common::PoolId(0),
            seq: 7,
        };
        let txn = build_write_txn(pg, "obj", 0, &Bytes::from(vec![0u8; 4096]), 3);
        assert_eq!(txn.len(), 5);
        assert_eq!(txn.data_bytes(), 4096);
        assert!(txn.encoded_bytes() > 4096);
        // The pg-log op targets the PG meta object.
        let has_pgmeta = txn.ops().iter().any(|o| o.object().starts_with("pgmeta_"));
        assert!(has_pgmeta);
    }
}
