//! The (single, simplified) monitor: authority over the cluster map.
//!
//! Real Ceph runs a Paxos quorum of monitors; map-change consensus is not
//! what the paper evaluates, so here one monitor owns the versioned
//! [`OsdMap`] and every OSD/client shares a handle to it. Updates bump the
//! epoch and are immediately visible (the shared `RwLock` stands in for map
//! gossip).

use afc_common::lockdep::{classes, TrackedRwLock};
use afc_common::{Epoch, OsdId};
use afc_crush::{CrushMap, OsdMap};
use std::sync::Arc;

/// The shared, lock-order-tracked handle to the current cluster map.
pub type SharedMap = Arc<TrackedRwLock<Arc<OsdMap>>>;

/// The cluster-map authority.
pub struct Monitor {
    map: SharedMap,
}

impl Monitor {
    /// Create a monitor with an initial CRUSH hierarchy.
    pub fn new(crush: CrushMap) -> Self {
        Monitor {
            map: Arc::new(TrackedRwLock::new(
                &classes::OSD_MAP,
                Arc::new(OsdMap::new(crush)),
            )),
        }
    }

    /// The shared map handle given to OSDs and clients.
    pub fn shared_map(&self) -> SharedMap {
        Arc::clone(&self.map)
    }

    /// Snapshot of the current map.
    pub fn map(&self) -> Arc<OsdMap> {
        self.map.read().clone()
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.map.read().epoch()
    }

    /// Apply a mutation to the map (pool creation, OSD status, CRUSH
    /// change); publishes the new version atomically.
    pub fn update<R>(&self, f: impl FnOnce(&mut OsdMap) -> R) -> R {
        let mut guard = self.map.write();
        let mut next = (**guard).clone();
        let r = f(&mut next);
        *guard = Arc::new(next);
        r
    }

    /// Mark an OSD down (failure detection shortcut for tests).
    pub fn mark_down(&self, osd: OsdId) {
        self.update(|m| m.set_up(osd, false));
    }

    /// Mark an OSD up again.
    pub fn mark_up(&self, osd: OsdId) {
        self.update(|m| m.set_up(osd, true));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::PoolId;
    use afc_crush::osdmap::PoolSpec;

    #[test]
    fn updates_bump_epoch_and_publish() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        let e0 = mon.epoch();
        mon.update(|m| {
            m.add_pool(
                PoolId(0),
                PoolSpec {
                    pg_num: 32,
                    size: 2,
                },
            )
            .unwrap()
        });
        assert!(mon.epoch() > e0);
        let shared = mon.shared_map();
        assert_eq!(shared.read().pool(PoolId(0)).unwrap().pg_num, 32);
    }

    #[test]
    fn mark_down_up_cycle() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        mon.mark_down(OsdId(1));
        assert!(!mon.map().osd_status(OsdId(1)).up);
        mon.mark_up(OsdId(1));
        assert!(mon.map().osd_status(OsdId(1)).up);
    }

    #[test]
    fn shared_handle_sees_updates() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        let shared = mon.shared_map();
        let before = shared.read().epoch();
        mon.mark_down(OsdId(0));
        assert!(shared.read().epoch() > before);
    }
}
