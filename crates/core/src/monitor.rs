//! The (single, simplified) monitor: authority over the cluster map.
//!
//! Real Ceph runs a Paxos quorum of monitors; map-change consensus is not
//! what the paper evaluates, so here one monitor owns the versioned
//! [`OsdMap`] and every OSD/client shares a handle to it. Updates bump the
//! epoch and are immediately visible (the shared `RwLock` stands in for map
//! gossip).
//!
//! # Failure detection
//!
//! OSDs heartbeat each other and report silent peers via
//! [`Monitor::report_down`]. Once [`FailureConfig::min_reporters`]
//! distinct OSDs have accused the same peer, the monitor marks it *down*
//! (epoch bump — survivors promote and run degraded). If the OSD stays
//! down past [`FailureConfig::mark_out_after`], the periodic
//! [`Monitor::tick`] marks it *out*: CRUSH re-descends and the data is
//! backfilled onto a replacement. A returning OSD calls
//! [`Monitor::report_alive`] to clear the accusations and rejoin.

use afc_common::lockdep::{classes, TrackedMutex, TrackedRwLock};
use afc_common::{Epoch, OsdId, PgId};
use afc_crush::{CrushMap, OsdMap};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared, lock-order-tracked handle to the current cluster map.
pub type SharedMap = Arc<TrackedRwLock<Arc<OsdMap>>>;

/// Failure-detection policy knobs.
#[derive(Debug, Clone)]
pub struct FailureConfig {
    /// Distinct reporters required before an accused OSD is marked down
    /// (Ceph's `mon_osd_min_down_reporters`; 1 suits small test clusters).
    pub min_reporters: usize,
    /// How long an OSD may stay down before [`Monitor::tick`] marks it
    /// out of placement. `None` disables auto-out (the default: tests and
    /// benches decide explicitly).
    pub mark_out_after: Option<Duration>,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            min_reporters: 1,
            mark_out_after: None,
        }
    }
}

/// Failure-report accounting (guarded by `MON_FAIL`, which ranks below
/// the map lock so accusations can publish a new map while held).
#[derive(Default)]
struct FailState {
    cfg: FailureConfig,
    /// target → set of accusing OSDs.
    reporters: BTreeMap<OsdId, BTreeSet<OsdId>>,
    /// When each currently-down OSD was marked down.
    down_since: BTreeMap<OsdId, Instant>,
}

/// The cluster-map authority.
pub struct Monitor {
    map: SharedMap,
    fail: TrackedMutex<FailState>,
}

impl Monitor {
    /// Create a monitor with an initial CRUSH hierarchy.
    pub fn new(crush: CrushMap) -> Self {
        Monitor {
            map: Arc::new(TrackedRwLock::new(
                &classes::OSD_MAP,
                Arc::new(OsdMap::new(crush)),
            )),
            fail: TrackedMutex::new(&classes::MON_FAIL, FailState::default()),
        }
    }

    /// The shared map handle given to OSDs and clients.
    pub fn shared_map(&self) -> SharedMap {
        Arc::clone(&self.map)
    }

    /// Snapshot of the current map.
    pub fn map(&self) -> Arc<OsdMap> {
        self.map.read().clone()
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.map.read().epoch()
    }

    /// Apply a mutation to the map (pool creation, OSD status, CRUSH
    /// change); publishes the new version atomically.
    pub fn update<R>(&self, f: impl FnOnce(&mut OsdMap) -> R) -> R {
        let mut guard = self.map.write();
        let mut next = (**guard).clone();
        let r = f(&mut next);
        *guard = Arc::new(next);
        r
    }

    /// Install the failure-detection policy (cluster build time).
    pub fn set_failure_config(&self, cfg: FailureConfig) {
        self.fail.lock().cfg = cfg;
    }

    /// An OSD accuses `target` of missing heartbeats. Marks the target
    /// down (and starts its mark-out clock) once enough distinct
    /// reporters agree. Returns `true` if this call transitioned the
    /// target to down.
    pub fn report_down(&self, reporter: OsdId, target: OsdId) -> bool {
        if reporter == target {
            return false;
        }
        let mut fail = self.fail.lock();
        let n = {
            let set = fail.reporters.entry(target).or_default();
            set.insert(reporter);
            set.len()
        };
        if n < fail.cfg.min_reporters {
            return false;
        }
        let transitioned = self.update(|m| {
            let was_up = m.osd_status(target).up;
            m.set_up(target, false);
            was_up
        });
        if transitioned {
            fail.down_since.insert(target, Instant::now());
        }
        transitioned
    }

    /// A (re)started OSD asserts it is alive: clears any accusations and
    /// marks it up (epoch bump → peers re-peer and recover it).
    pub fn report_alive(&self, osd: OsdId) {
        let mut fail = self.fail.lock();
        fail.reporters.remove(&osd);
        fail.down_since.remove(&osd);
        self.update(|m| m.set_up(osd, true));
    }

    /// Periodic sweep (driven by OSD heartbeat tickers): marks OSDs that
    /// have been down longer than `mark_out_after` out of placement so
    /// CRUSH re-descends and backfill rebuilds redundancy elsewhere.
    pub fn tick(&self) {
        let mut fail = self.fail.lock();
        let Some(grace) = fail.cfg.mark_out_after else {
            return;
        };
        let overdue: Vec<OsdId> = fail
            .down_since
            .iter()
            .filter(|(_, since)| since.elapsed() >= grace)
            .map(|(o, _)| *o)
            .collect();
        if overdue.is_empty() {
            return;
        }
        for o in &overdue {
            fail.down_since.remove(o);
        }
        self.update(|m| {
            for o in &overdue {
                m.set_in(*o, false);
            }
        });
    }

    /// Install a batch of `pg_temp` overrides in one epoch bump.
    pub fn set_pg_temps(&self, temps: &[(PgId, Vec<OsdId>)]) {
        if temps.is_empty() {
            return;
        }
        self.update(|m| m.set_pg_temps(temps));
    }

    /// Clear a batch of `pg_temp` overrides in one epoch bump.
    pub fn clear_pg_temps(&self, pgs: &[PgId]) {
        if pgs.is_empty() {
            return;
        }
        self.update(|m| m.clear_pg_temps(pgs));
    }

    /// Mark an OSD down (failure detection shortcut for tests).
    pub fn mark_down(&self, osd: OsdId) {
        self.fail.lock().down_since.insert(osd, Instant::now());
        self.update(|m| m.set_up(osd, false));
    }

    /// Mark an OSD up again.
    pub fn mark_up(&self, osd: OsdId) {
        self.report_alive(osd);
    }

    /// Bring an out OSD back into placement.
    pub fn mark_in(&self, osd: OsdId) {
        self.update(|m| m.set_in(osd, true));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_common::PoolId;
    use afc_crush::osdmap::PoolSpec;

    #[test]
    fn updates_bump_epoch_and_publish() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        let e0 = mon.epoch();
        mon.update(|m| {
            m.add_pool(
                PoolId(0),
                PoolSpec {
                    pg_num: 32,
                    size: 2,
                },
            )
            .unwrap()
        });
        assert!(mon.epoch() > e0);
        let shared = mon.shared_map();
        assert_eq!(shared.read().pool(PoolId(0)).unwrap().pg_num, 32);
    }

    #[test]
    fn mark_down_up_cycle() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        mon.mark_down(OsdId(1));
        assert!(!mon.map().osd_status(OsdId(1)).up);
        mon.mark_up(OsdId(1));
        assert!(mon.map().osd_status(OsdId(1)).up);
    }

    #[test]
    fn shared_handle_sees_updates() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        let shared = mon.shared_map();
        let before = shared.read().epoch();
        mon.mark_down(OsdId(0));
        assert!(shared.read().epoch() > before);
    }

    #[test]
    fn report_down_needs_quorum_of_reporters() {
        let mon = Monitor::new(CrushMap::uniform(3, 1));
        mon.set_failure_config(FailureConfig {
            min_reporters: 2,
            mark_out_after: None,
        });
        assert!(!mon.report_down(OsdId(1), OsdId(0)));
        assert!(mon.map().osd_status(OsdId(0)).up, "one accuser is gossip");
        assert!(mon.report_down(OsdId(2), OsdId(0)));
        assert!(!mon.map().osd_status(OsdId(0)).up);
        // Further accusations are no-ops (idempotent map, no epoch bump).
        let e = mon.epoch();
        assert!(!mon.report_down(OsdId(1), OsdId(0)));
        assert_eq!(mon.epoch(), e);
        // Self-accusation never counts.
        assert!(!mon.report_down(OsdId(1), OsdId(1)));
        assert!(mon.map().osd_status(OsdId(1)).up);
    }

    #[test]
    fn report_alive_clears_accusations() {
        let mon = Monitor::new(CrushMap::uniform(2, 1));
        assert!(mon.report_down(OsdId(1), OsdId(0)));
        mon.report_alive(OsdId(0));
        assert!(mon.map().osd_status(OsdId(0)).up);
        // Accusation ledger was reset: the next report needs to re-reach
        // the threshold from scratch (min_reporters = 1 → it does).
        assert!(mon.report_down(OsdId(1), OsdId(0)));
    }

    #[test]
    fn tick_marks_overdue_osds_out() {
        let mon = Monitor::new(CrushMap::uniform(3, 1));
        mon.set_failure_config(FailureConfig {
            min_reporters: 1,
            mark_out_after: Some(Duration::ZERO),
        });
        mon.report_down(OsdId(2), OsdId(0));
        assert!(mon.map().osd_status(OsdId(0)).in_cluster);
        mon.tick();
        assert!(!mon.map().osd_status(OsdId(0)).in_cluster, "not marked out");
        // Without mark_out_after, tick never touches membership.
        mon.set_failure_config(FailureConfig {
            min_reporters: 1,
            mark_out_after: None,
        });
        mon.report_down(OsdId(2), OsdId(1));
        mon.tick();
        assert!(mon.map().osd_status(OsdId(1)).in_cluster);
        mon.mark_in(OsdId(0));
        assert!(mon.map().osd_status(OsdId(0)).in_cluster);
    }

    #[test]
    fn pg_temp_batches_bump_epoch_once() {
        let mon = Monitor::new(CrushMap::uniform(2, 2));
        mon.update(|m| {
            m.add_pool(PoolId(0), PoolSpec { pg_num: 8, size: 2 })
                .unwrap()
        });
        let pg = |seq| PgId {
            pool: PoolId(0),
            seq,
        };
        let e0 = mon.epoch();
        mon.set_pg_temps(&[
            (pg(0), vec![OsdId(1), OsdId(0)]),
            (pg(1), vec![OsdId(2), OsdId(3)]),
        ]);
        assert_eq!(mon.epoch().0, e0.0 + 1, "batch must be one epoch bump");
        assert_eq!(
            mon.map().pg_acting(pg(0)).unwrap(),
            vec![OsdId(1), OsdId(0)]
        );
        let e1 = mon.epoch();
        mon.clear_pg_temps(&[pg(0), pg(1)]);
        assert_eq!(mon.epoch().0, e1.0 + 1);
        mon.set_pg_temps(&[]);
        mon.clear_pg_temps(&[]);
        assert_eq!(mon.epoch().0, e1.0 + 1, "empty batches are free");
    }
}
