//! Cluster assembly: nodes × OSDs over an in-process fabric.
//!
//! [`ClusterBuilder`] reproduces the paper's testbed shape: N server nodes,
//! each with one NVRAM card shared by its OSDs (journals) and a RAID-0 set
//! of SATA SSDs per OSD (filestore), replicated pools over an in-process
//! network with optional Nagle behaviour.

use crate::client::rados::RadosClient;
use crate::client::rbd::RbdImage;
use crate::messages::OsdMsg;
use crate::monitor::{FailureConfig, Monitor};
use crate::osd::{Osd, OsdParams, OsdStats};
use crate::qos::QosSpec;
use crate::tuning::OsdTuning;
use afc_common::metrics::{Metrics, MetricsSnapshot};
use afc_common::{
    AfcError, ClientId, FaultPlan, FaultRegistry, NodeId, ObjectId, OsdId, PgId, PoolId, Result,
    VolumeId, GIB, KIB,
};
use afc_crush::osdmap::PoolSpec;
use afc_crush::CrushMap;
use afc_device::{BlockDev, Nvram, NvramConfig, Raid0, Ssd, SsdConfig};
use afc_messenger::{MessengerMode, NetConfig, Network};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-OSD device provisioning.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// SSDs striped per OSD (the paper's nodes used 2–3; default 3).
    pub ssds_per_osd: usize,
    /// SSD model config.
    pub ssd: SsdConfig,
    /// NVRAM card per node.
    pub nvram: NvramConfig,
    /// Journal ring bytes per OSD (2 GiB in the paper).
    pub journal_capacity: u64,
    /// RAID-0 stripe unit.
    pub stripe: u64,
}

impl DeviceProfile {
    /// Clean-state flash (Figure 9's conditions).
    pub fn clean() -> Self {
        DeviceProfile {
            ssds_per_osd: 3,
            ssd: SsdConfig::sata3(),
            nvram: NvramConfig::pmc_8g(),
            journal_capacity: 2 * GIB,
            stripe: 64 * KIB,
        }
    }

    /// Sustained-state flash (Figures 10/11's conditions).
    pub fn sustained() -> Self {
        DeviceProfile {
            ssd: SsdConfig::sata3_sustained(),
            ..Self::clean()
        }
    }

    /// Shrink the journal (forces the Figure 10 journal-full fluctuation
    /// at bench scale).
    #[must_use]
    pub fn with_journal_capacity(mut self, bytes: u64) -> Self {
        self.journal_capacity = bytes;
        self
    }
}

/// Result of a deep scrub pass.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// PGs in the scanned pool.
    pub pgs_checked: u64,
    /// Data objects compared across their acting sets.
    pub objects_checked: u64,
    /// `(pg, object)` pairs whose replicas disagree (or are missing).
    pub inconsistent: Vec<(PgId, String)>,
}

impl ScrubReport {
    /// True when every object's replicas agree.
    pub fn is_clean(&self) -> bool {
        self.inconsistent.is_empty()
    }
}

/// Builder for [`Cluster`].
pub struct ClusterBuilder {
    nodes: u32,
    osds_per_node: u32,
    replication: usize,
    pg_num: u32,
    tuning: OsdTuning,
    devices: DeviceProfile,
    hop_latency: Duration,
    msgr_cpu: Duration,
    msgr_mode: MessengerMode,
    seed: u64,
    faults: Option<FaultPlan>,
    failure: Option<FailureConfig>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            nodes: 4,
            osds_per_node: 4,
            replication: 2,
            pg_num: 128,
            tuning: OsdTuning::community(),
            devices: DeviceProfile::clean(),
            hop_latency: Duration::from_micros(80),
            msgr_cpu: Duration::ZERO,
            msgr_mode: MessengerMode::Simple,
            seed: 0xafc_5eed,
            faults: None,
            failure: None,
        }
    }
}

impl ClusterBuilder {
    /// Number of server nodes.
    #[must_use]
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// OSD daemons per node (4 in the paper).
    #[must_use]
    pub fn osds_per_node(mut self, n: u32) -> Self {
        self.osds_per_node = n;
        self
    }

    /// Replication factor (2 in the paper).
    #[must_use]
    pub fn replication(mut self, n: usize) -> Self {
        self.replication = n;
        self
    }

    /// PGs in the RBD pool.
    #[must_use]
    pub fn pg_num(mut self, n: u32) -> Self {
        self.pg_num = n;
        self
    }

    /// Tuning vector for every OSD.
    #[must_use]
    pub fn tuning(mut self, t: OsdTuning) -> Self {
        self.tuning = t;
        self
    }

    /// Device provisioning.
    #[must_use]
    pub fn devices(mut self, d: DeviceProfile) -> Self {
        self.devices = d;
        self
    }

    /// One-way network latency.
    #[must_use]
    pub fn hop_latency(mut self, d: Duration) -> Self {
        self.hop_latency = d;
        self
    }

    /// Per-message messenger CPU work (the Figure 12 scalability ceiling).
    #[must_use]
    pub fn messenger_cpu(mut self, d: Duration) -> Self {
        self.msgr_cpu = d;
        self
    }

    /// Receive-side threading model: `Simple` (thread per connection, the
    /// paper's testbed) or `Async` (fixed pool — Ceph's later fix for the
    /// §4.5 scalability ceiling).
    #[must_use]
    pub fn messenger_mode(mut self, m: MessengerMode) -> Self {
        self.msgr_mode = m;
        self
    }

    /// Deterministic seed for device jitter streams.
    #[must_use]
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Install a deterministic fault-injection plan. Sites the cluster
    /// wires up:
    /// - `net.request` / `net.reply` / `net.replicate` / `net.repack`
    ///   (messenger, per message class),
    /// - `osd{id}.data.{read,write}` (every SSD member under that OSD's
    ///   RAID-0),
    /// - `node{n}.journal.{read,write}` (the node's shared NVRAM card),
    /// - `osd{id}.fs.{apply,mid_apply}` (filestore apply path).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Failure-detection policy (reporter quorum, auto mark-out). Only
    /// meaningful together with [`OsdTuning::with_heartbeats`].
    #[must_use]
    pub fn failure_config(mut self, cfg: FailureConfig) -> Self {
        self.failure = Some(cfg);
        self
    }

    /// Assemble and start the cluster.
    pub fn build(self) -> Result<Cluster> {
        if self.nodes == 0 || self.osds_per_node == 0 {
            return Err(AfcError::InvalidArgument(
                "cluster needs nodes and OSDs".into(),
            ));
        }
        if self.replication == 0 || self.replication > self.nodes as usize {
            return Err(AfcError::InvalidArgument(format!(
                "replication {} impossible with {} nodes (host failure domain)",
                self.replication, self.nodes
            )));
        }
        let net = Network::new(NetConfig {
            hop_latency: self.hop_latency,
            nagle: self.tuning.nagle,
            cpu_per_msg: self.msgr_cpu,
            mode: self.msgr_mode,
            ..NetConfig::default()
        });
        let faults = self
            .faults
            .as_ref()
            .map(|p| Arc::new(FaultRegistry::from_plan(p)));
        if let Some(reg) = &faults {
            net.attach_faults(Arc::clone(reg), |_from, _to, msg: &OsdMsg| {
                Some(
                    match msg {
                        OsdMsg::Request(_) => "net.request",
                        OsdMsg::Reply(_) => "net.reply",
                        OsdMsg::Replicate(_) => "net.replicate",
                        OsdMsg::RepAck(_) => "net.repack",
                        OsdMsg::Ping(_) | OsdMsg::Pong(_) => "net.heartbeat",
                        OsdMsg::PgQuery(_) | OsdMsg::PgInfo(_) => "net.peering",
                        OsdMsg::Push(_) => "net.push",
                    }
                    .to_string(),
                )
            });
        }
        let metrics = Arc::new(Metrics::new());
        net.attach_metrics(&metrics);
        let crush = CrushMap::uniform(self.nodes, self.osds_per_node);
        let monitor = Arc::new(Monitor::new(crush));
        if let Some(cfg) = self.failure {
            monitor.set_failure_config(cfg);
        }
        let pool = PoolId(0);
        monitor.update(|m| {
            m.add_pool(
                pool,
                PoolSpec {
                    pg_num: self.pg_num,
                    size: self.replication,
                },
            )
        })?;
        let mut osds = Vec::new();
        for node in 0..self.nodes {
            // One NVRAM card per node, shared by its OSDs' journals.
            let nvram = Arc::new(Nvram::new(self.devices.nvram.clone()));
            if let Some(reg) = &faults {
                nvram
                    .faults()
                    .attach(Arc::clone(reg), format!("node{node}.journal"));
            }
            // The card's device-level counters; ring-level journal stats
            // land under `node{n}.journal.*` via each OSD's journal.
            nvram.register_metrics(&metrics, &format!("node{node}.journal.dev"));
            for o in 0..self.osds_per_node {
                let id = OsdId(node * self.osds_per_node + o);
                let members: Vec<Arc<dyn BlockDev>> = (0..self.devices.ssds_per_osd.max(1))
                    .map(|d| {
                        let seed = self.seed ^ ((id.0 as u64) << 16) ^ d as u64;
                        // The tuning profile decides write placement: afceph
                        // separates streams into per-group FTL allocation,
                        // community keeps the mixed-stream behaviour.
                        let ssd = Ssd::new(
                            self.devices
                                .ssd
                                .clone()
                                .with_seed(seed)
                                .with_streams(self.tuning.streams_enabled),
                        );
                        if let Some(reg) = &faults {
                            // Attach to every member: RAID-0 fans a request
                            // out, so any member can surface the fault.
                            ssd.faults()
                                .attach(Arc::clone(reg), format!("osd{}.data", id.0));
                        }
                        // Every member registers under the OSD's data site;
                        // snapshots sum them (the RAID-0 aggregate view).
                        ssd.register_metrics(&metrics, &format!("osd{}.data", id.0));
                        Arc::new(ssd) as Arc<dyn BlockDev>
                    })
                    .collect();
                let data_dev: Arc<dyn BlockDev> =
                    Arc::new(Raid0::new(members, self.devices.stripe)?);
                let journal_capacity = self
                    .devices
                    .journal_capacity
                    .min(self.devices.nvram.capacity / self.osds_per_node as u64);
                let osd = Osd::spawn(OsdParams {
                    id,
                    tuning: self.tuning.clone(),
                    data_dev,
                    journal_dev: Arc::clone(&nvram) as Arc<dyn BlockDev>,
                    journal_capacity,
                    map: monitor.shared_map(),
                    net: Arc::clone(&net),
                    monitor: Some(Arc::clone(&monitor)),
                })?;
                if let Some(reg) = &faults {
                    osd.store()
                        .attach_faults(Arc::clone(reg), format!("osd{}.fs", id.0));
                }
                osd.attach_metrics(&metrics, &format!("node{node}.journal"));
                osds.push(osd);
            }
        }
        Ok(Cluster {
            net,
            monitor,
            osds,
            pool,
            tuning: self.tuning,
            faults,
            metrics,
            next_client: AtomicU64::new(1),
            next_volume: AtomicU64::new(1),
            stopped: AtomicBool::new(false),
        })
    }
}

/// A running storage cluster.
pub struct Cluster {
    net: Arc<Network<OsdMsg>>,
    monitor: Arc<Monitor>,
    osds: Vec<Arc<Osd>>,
    pool: PoolId,
    tuning: OsdTuning,
    faults: Option<Arc<FaultRegistry>>,
    metrics: Arc<Metrics>,
    next_client: AtomicU64,
    next_volume: AtomicU64,
    stopped: AtomicBool,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Connect a new client session.
    pub fn client(&self) -> Result<Arc<RadosClient>> {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        RadosClient::connect(&self.net, self.monitor.shared_map(), id, self.pool)
    }

    /// Convenience: connect a client and open an image handle on it.
    pub fn create_image(&self, name: &str, size: u64) -> Result<RbdImage> {
        let client = self.client()?;
        RbdImage::new(client, name, size)
    }

    /// Connect a client session bound to a fresh QoS volume under `spec`
    /// (SolidFire-style min/max/burst IOPS). Every op the session issues
    /// carries the volume tag; OSDs schedule it in the per-volume QoS
    /// scheduler when [`OsdTuning::qos_enabled`] is set. Volume ids are
    /// cluster-allocated starting at 1 (volume 0 is the shared
    /// best-effort volume untagged clients bill to).
    pub fn open_volume(&self, spec: QosSpec) -> Result<Arc<RadosClient>> {
        let client = self.client()?;
        let vid = VolumeId(self.next_volume.fetch_add(1, Ordering::Relaxed));
        client.open_volume(vid, spec);
        Ok(client)
    }

    /// The monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The OSDs.
    pub fn osds(&self) -> &[Arc<Osd>] {
        &self.osds
    }

    /// An OSD by id.
    pub fn osd(&self, id: OsdId) -> Option<&Arc<Osd>> {
        self.osds.iter().find(|o| o.id() == id)
    }

    /// The network fabric (counters).
    pub fn network(&self) -> &Arc<Network<OsdMsg>> {
        &self.net
    }

    /// The RBD pool.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// The tuning the cluster was built with.
    pub fn tuning(&self) -> &OsdTuning {
        &self.tuning
    }

    /// The fault registry, when the cluster was built with a fault plan.
    /// Tests use it to install/clear faults mid-run and to read hit
    /// counters.
    pub fn fault_registry(&self) -> Option<&Arc<FaultRegistry>> {
        self.faults.as_ref()
    }

    /// Node hosting an OSD.
    pub fn node_of(&self, osd: OsdId) -> Option<NodeId> {
        self.monitor.map().crush().host_of(osd)
    }

    /// Per-OSD statistics.
    pub fn osd_stats(&self) -> Vec<(OsdId, OsdStats)> {
        self.osds.iter().map(|o| (o.id(), o.stats())).collect()
    }

    /// The cluster-wide metric registry. Every subsystem registers into
    /// it at build time: device counters (`osdN.data.*`,
    /// `nodeN.journal.dev.*`), journal rings (`nodeN.journal.*`),
    /// filestore (`osdN.fs.*`), KV DBs (`osdN.kv.*`), per-OSD op counters
    /// (`osdN.op.*`), write-path stage histograms (`osdN.stage.*`),
    /// loggers (`osdN.log.*`) and the fabric (`net.*`).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Point-in-time snapshot of every metric in the cluster, as a
    /// stable sorted tree (see [`MetricsSnapshot`]); use
    /// [`MetricsSnapshot::to_prometheus`] for a text export.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Drain in-flight work across the cluster (benchmark epilogue).
    pub fn quiesce(&self) {
        for o in &self.osds {
            o.quiesce();
        }
    }

    /// Deep scrub: verify replica consistency for every PG — each data
    /// object's bytes on the primary are compared against every up
    /// replica. Ceph runs this continuously in the background; here it is
    /// an on-demand pass (quiesce first for a stable view). Returns the
    /// report; inconsistencies indicate a replication bug or injected
    /// corruption.
    pub fn deep_scrub(&self) -> Result<ScrubReport> {
        let map = self.monitor.map();
        let mut report = ScrubReport::default();
        // Gather every data object on any OSD (pgmeta objects are per-OSD
        // bookkeeping and intentionally excluded).
        let mut objects: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for osd in &self.osds {
            for name in osd.store().list_objects() {
                if !name.starts_with("pgmeta_") {
                    objects.insert(name);
                }
            }
        }
        for name in objects {
            // Object names are "<pool>/<name>"; recover the ObjectId.
            let Some((pool_s, obj_name)) = name.split_once('/') else {
                continue;
            };
            let Ok(pool_n) = pool_s.trim_start_matches("pool").parse::<u32>() else {
                continue;
            };
            let obj = ObjectId::new(PoolId(pool_n), obj_name);
            let Ok((pg, acting)) = map.object_placement(&obj) else {
                continue;
            };
            report.objects_checked += 1;
            let mut copies = Vec::new();
            for osd_id in &acting {
                let Some(osd) = self.osd(*osd_id) else {
                    continue;
                };
                let hash = match osd.store().fs().stat(&name) {
                    Ok(size) => match osd.store().read(&name, 0, size as usize) {
                        Ok(data) => afc_common::rng::hash_bytes(&data),
                        Err(_) => u64::MAX, // unreadable copy
                    },
                    Err(_) => u64::MAX, // missing copy
                };
                copies.push((*osd_id, hash));
            }
            if copies.windows(2).any(|w| w[0].1 != w[1].1) {
                report.inconsistent.push((pg, name));
            }
        }
        report.pgs_checked = map.pool(self.pool)?.pg_num as u64;
        Ok(report)
    }

    /// Stop everything: fabric first (no new messages), then OSD threads.
    pub fn shutdown(&self) {
        // ordering: idempotence latch on a cold path; SeqCst so concurrent
        // shutdown() calls (explicit + Drop) agree on a single winner.
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.net.shutdown();
        for o in &self.osds {
            o.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
