//! Golden-diagnostic test: run the full `analyze` pass — the exact code
//! path behind `cargo xtask analyze --json` — over the checked-in
//! fixture mini-workspace (`tests/fixtures/mini`) and assert the output
//! byte-for-byte against `expected.json`.
//!
//! The fixture plants one violation per cross-file rule:
//!
//! - a lock-order inversion (`SECOND` held while `FIRST` is acquired),
//! - a misnamed fault site (`Mini.Data`),
//! - an unjustified `Ordering::SeqCst`,
//! - a `thread::sleep` in the OSD op path.

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

#[test]
fn mini_workspace_produces_exact_diagnostics() {
    let root = fixture_root();
    let report = analyze::analyze(&root).expect("analysis runs");

    assert_eq!(report.files_scanned, 4);
    assert_eq!(report.suppressed, 0);
    assert!(!report.is_clean());

    // One finding per new cross-file rule, nothing else.
    let got: Vec<(&str, &str, u32, u32)> = report
        .diags
        .iter()
        .map(|d| (d.file.as_str(), d.rule, d.line, d.col))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/core/src/cluster.rs", "site-names", 5, 21),
            ("crates/core/src/flags.rs", "atomic-ordering", 12, 18),
            ("crates/core/src/osd/engine.rs", "lock-order", 22, 22),
            ("crates/core/src/osd/engine.rs", "hot-path-blocking", 28, 22),
        ]
    );

    // Messages name the offending classes/sites precisely.
    assert!(report.diags[0].msg.contains("`Mini.Data`"));
    assert!(report.diags[1].msg.contains("`Ordering::SeqCst` on `seq`"));
    assert!(report.diags[2]
        .msg
        .contains("acquiring `FIRST` (rank 10) while holding `SECOND` (rank 20"));
    assert!(report.diags[3].msg.contains("thread::sleep"));

    // Byte-exact machine output (what `xtask analyze --json` prints).
    let expected = std::fs::read_to_string(root.join("expected.json")).expect("golden file");
    assert_eq!(analyze::to_json(&report), expected);
}

#[test]
fn mini_workspace_diagnostics_render_with_spans_and_help() {
    let report = analyze::analyze(&fixture_root()).expect("analysis runs");
    let rendered: Vec<String> = report.diags.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered[2],
        "crates/core/src/osd/engine.rs:22:22: error [lock-order] acquiring `FIRST` \
         (rank 10) while holding `SECOND` (rank 20, guard `b`) contradicts \
         lockdep::DECLARED_ORDER\n    help: acquire `FIRST` before `SECOND`, or drop `b` first"
    );
}
