//! Mini lockdep hierarchy for the analyzer's golden test. Same shape as
//! the real `afc_common::lockdep`, two classes.

pub struct LockClass {
    pub name: &'static str,
    pub rank: u32,
    pub no_block_while_held: bool,
}

pub const UNRANKED: u32 = 0;

pub mod classes {
    use super::LockClass;

    /// Outer lock of the mini engine.
    pub static FIRST: LockClass = LockClass {
        name: "mini.first",
        rank: 10,
        no_block_while_held: true,
    };
    /// Inner lock of the mini engine.
    pub static SECOND: LockClass = LockClass {
        name: "mini.second",
        rank: 20,
        no_block_while_held: true,
    };
}

pub static DECLARED_ORDER: &[&LockClass] = &[&classes::FIRST, &classes::SECOND];
