//! Deliberately unjustified `SeqCst`: expected to produce exactly one
//! atomic-ordering diagnostic.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    seq: AtomicU64,
}

impl Flags {
    pub fn bump(&self) {
        self.seq.store(1, Ordering::SeqCst);
    }
}
