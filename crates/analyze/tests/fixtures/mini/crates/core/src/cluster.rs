//! Deliberately misnamed fault site: expected to produce exactly one
//! site-names diagnostic (convention violation).

pub fn wire(reg: &FaultRegistry, dev: &Dev) {
    dev.attach(reg, "Mini.Data".to_string());
}
