//! Deliberately buggy op-path code: one lock-order inversion and one
//! blocking sleep, each expected to produce exactly one diagnostic.

use crate::lockdep::{classes, TrackedMutex};

pub struct Engine {
    lo: TrackedMutex<u32>,
    hi: TrackedMutex<u32>,
}

impl Engine {
    pub fn new() -> Self {
        Self {
            lo: TrackedMutex::new(&classes::FIRST, 0),
            hi: TrackedMutex::new(&classes::SECOND, 0),
        }
    }

    /// Takes `SECOND` then `FIRST`: contradicts DECLARED_ORDER.
    pub fn inverted(&self) -> u32 {
        let b = self.hi.lock();
        let a = self.lo.lock();
        *a + *b
    }

    /// Sleeps on the op path outside a sanctioned worker loop.
    pub fn stalls(&self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
