//! Workspace file collection and the item/block scanner.
//!
//! Each [`SourceFile`] carries the comment-free token stream plus the
//! structural facts every rule needs: which tokens sit inside
//! `#[cfg(test)]` / `#[test]` regions, and the span of every `fn` body.

use crate::lexer::{lex, Kind, Tok};
use std::path::Path;

/// Directories (workspace-relative prefixes) never scanned.
pub const SKIP_PREFIXES: &[&str] = &[
    "vendor", // offline stand-in crates, not ours to police
    "target",
    "crates/xtask",   // thin CLI over this crate
    "crates/analyze", // the engine itself (rule pattern literals would self-match)
    "bench_results",
];

/// Path substrings marking non-production sources (integration tests,
/// benches, examples, binaries) exempt from the production-only rules.
pub const NON_PROD_MARKERS: &[&str] = &["/tests/", "/benches/", "/examples/", "/bin/"];

/// Span of one `fn` body in code-token indices (`open..=close` braces).
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Code-token index of the opening `{`.
    pub open: usize,
    /// Code-token index of the matching `}`.
    pub close: usize,
}

/// One scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw text, for justification-comment lookups.
    pub text: String,
    /// Comment-free token stream.
    pub toks: Vec<Tok>,
    /// Per-token: inside a `#[cfg(test)]` module or `#[test]` function.
    pub test_mask: Vec<bool>,
    /// Every function body, in source order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// Whole file is non-production (tests/benches/examples/bin path).
    pub non_prod: bool,
}

impl SourceFile {
    pub fn parse(path: String, text: String) -> SourceFile {
        let toks: Vec<Tok> = lex(&text)
            .into_iter()
            .filter(|t| !matches!(t.kind, Kind::LineComment | Kind::BlockComment))
            .collect();
        let test_mask = test_mask(&toks);
        let fns = fn_spans(&toks);
        let non_prod = is_non_prod(&path);
        SourceFile {
            path,
            text,
            toks,
            test_mask,
            fns,
            non_prod,
        }
    }

    /// True if code-token `i` is test-only (file-level or region-level).
    pub fn is_test(&self, i: usize) -> bool {
        self.non_prod || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The innermost function body containing code-token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.open <= i && i <= f.close)
            .max_by_key(|f| f.open)
    }

    /// True when the raw source line `line` (1-based) or the line above
    /// it carries a `//` comment containing `marker` — the justification
    /// escape hatch for the ordering/blocking rules.
    pub fn line_justified(&self, line: u32, marker: &str) -> bool {
        let line = line as usize;
        let has_marker = |l: &str| match l.find("//") {
            Some(i) => l[i..].contains(marker),
            None => false,
        };
        let lines: Vec<&str> = self.text.lines().collect();
        // A trailing comment justifies its own line…
        if lines
            .get(line.saturating_sub(1))
            .copied()
            .is_some_and(has_marker)
        {
            return true;
        }
        // …and a contiguous block of whole-line comments justifies the
        // line directly below it (justifications are often multi-line).
        let mut i = line.saturating_sub(1);
        while i >= 1 {
            let prev = lines[i - 1];
            if !prev.trim_start().starts_with("//") {
                return false;
            }
            if has_marker(prev) {
                return true;
            }
            i -= 1;
        }
        false
    }
}

pub fn is_non_prod(path: &str) -> bool {
    NON_PROD_MARKERS
        .iter()
        .any(|m| format!("/{path}").contains(m))
}

/// Collect every workspace `.rs` file under `root`, sorted by path.
pub fn collect(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut rels = Vec::new();
    walk(root, root, &mut rels)?;
    rels.sort();
    let mut files = Vec::new();
    for rel in rels {
        let text =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        files.push(SourceFile::parse(rel, text));
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                || rel.starts_with('.')
            {
                continue;
            }
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Index of the `}` matching the `{` at `open` (falls back to the last
/// token on unbalanced input).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Mark tokens inside `#[cfg(test)] mod … { … }` blocks and `#[test]`
/// function bodies.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match_bracket(toks, i + 1);
            let is_cfg_test = toks[i + 2..attr_end]
                .windows(4)
                .any(|w| w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test"));
            let is_test_attr = attr_end == i + 3 && toks[i + 2].is_ident("test");
            if is_cfg_test || is_test_attr {
                // Skip any further stacked attributes, then mark the next
                // item's brace block.
                let mut j = attr_end + 1;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = match_bracket(toks, j + 1) + 1;
                }
                if let Some(open) = toks[j..]
                    .iter()
                    .position(|t| t.is_punct('{') || t.is_punct(';'))
                    .map(|p| j + p)
                {
                    if toks[open].is_punct('{') {
                        let close = match_brace(toks, open);
                        for m in &mut mask[i..=close] {
                            *m = true;
                        }
                        i = close + 1;
                        continue;
                    }
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Every `fn name … { body }` span. Bodyless signatures (`fn f();`) are
/// skipped; the scan is resilient to generics and where-clauses because
/// neither may contain a `{` or `;` before the body.
fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if let Some(open) = open {
            out.push(FnSpan {
                name: name_tok.text.clone(),
                open,
                close: match_brace(toks, open),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/x.rs".into(), src.into())
    }

    #[test]
    fn fn_spans_cover_nested_braces() {
        let f = sf("fn a() { if x { y(); } }\nfn b<T: Ord>(t: T) -> bool { t == t }\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "a");
        assert_eq!(f.fns[1].name, "b");
        let lock = f.toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(f.enclosing_fn(lock).unwrap().name, "a");
    }

    #[test]
    fn cfg_test_mod_and_test_attr_are_masked() {
        let f = sf(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { sleep(); }\n}\n\
             #[test]\nfn unit() { sleep(); }\nfn prod2() {}\n",
        );
        let idx = |name: &str, nth: usize| {
            f.toks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_ident(name))
                .nth(nth)
                .unwrap()
                .0
        };
        assert!(!f.is_test(idx("prod", 0)));
        assert!(f.is_test(idx("sleep", 0)));
        assert!(f.is_test(idx("sleep", 1)));
        assert!(!f.is_test(idx("prod2", 0)));
    }

    #[test]
    fn stacked_attributes_after_cfg_test_are_handled() {
        let f = sf("#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn after() {}\n");
        let t = f.toks.iter().position(|t| t.is_ident("t")).unwrap();
        let after = f.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(f.is_test(t));
        assert!(!f.is_test(after));
    }

    #[test]
    fn non_prod_paths_are_whole_file_test() {
        let f = SourceFile::parse("crates/core/tests/x.rs".into(), "fn t() {}".into());
        assert!(f.is_test(0));
    }

    #[test]
    fn justification_comment_same_or_previous_line() {
        let f = sf("fn a() {\n    // ordering: handshake with release store\n    x.load(A);\n    y.load(B); // ordering: see above\n    z.load(C);\n}\n");
        assert!(f.line_justified(3, "ordering:"));
        assert!(f.line_justified(4, "ordering:"));
        assert!(!f.line_justified(5, "ordering:"));
    }

    #[test]
    fn justification_block_may_span_multiple_comment_lines() {
        let f = sf("fn a() {\n    // ordering: the flag must be ahead of\n    // the teardown below in every view\n    x.store(1, S);\n    y.store(2, S);\n}\n");
        assert!(f.line_justified(4, "ordering:"));
        // The code line in between breaks the block.
        assert!(!f.line_justified(5, "ordering:"));
    }
}
