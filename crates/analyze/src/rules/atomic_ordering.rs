//! `atomic-ordering`: memory-ordering hygiene over every atomic op in
//! the audited hot-path crates (see [`crate::model::ATOMIC_SCOPES`]).
//!
//! Two checks:
//!
//! - **Unjustified `SeqCst`.** Sequential consistency is almost never
//!   what the hot path wants (it serializes on a global order even on
//!   x86 where Acquire/Release loads and stores are free). Every
//!   `Ordering::SeqCst` use must carry an adjacent `// ordering:`
//!   comment saying why the total order is required.
//! - **Unpaired Acquire/Release.** A `Release` store publishes writes
//!   only if some load of the same field observes it with `Acquire` (or
//!   stronger); an `Acquire` load synchronizes only against a `Release`
//!   store. A field with one side and not the other is either a bug or
//!   needs a `// ordering:` justification (e.g. deliberately Relaxed
//!   readers on an advisory flag). Pairing is cross-file on the field
//!   name, so a store in one crate pairs with a load in another.

use crate::model::{AtomicKind, AtomicUse};
use crate::{Diag, Severity, Workspace};

fn has(u: &AtomicUse, names: &[&str]) -> bool {
    u.orderings.iter().any(|o| names.contains(&o.as_str()))
}

/// The op can act as the acquire (reading) side of a pairing.
fn acquire_side(u: &AtomicUse) -> bool {
    matches!(u.kind, AtomicKind::Load | AtomicKind::Rmw) && has(u, &["Acquire", "AcqRel", "SeqCst"])
}

/// The op can act as the release (publishing) side of a pairing.
fn release_side(u: &AtomicUse) -> bool {
    matches!(u.kind, AtomicKind::Store | AtomicKind::Rmw)
        && has(u, &["Release", "AcqRel", "SeqCst"])
}

pub fn check(ws: &Workspace, out: &mut Vec<Diag>) {
    let atomics = &ws.model.atomics;

    for u in atomics {
        if has(u, &["SeqCst"]) && !u.justified {
            out.push(Diag {
                file: u.file.clone(),
                line: u.line,
                col: u.col,
                rule: "atomic-ordering",
                severity: Severity::Error,
                msg: format!(
                    "`Ordering::SeqCst` on `{}` without an `// ordering:` justification",
                    u.field
                ),
                suggestion: Some(
                    "relax to Acquire/Release/Relaxed, or add a `// ordering:` comment \
                     explaining why a single total order is required"
                        .into(),
                ),
            });
        }
    }

    // Cross-file pairing by field name.
    for u in atomics {
        if u.justified {
            continue;
        }
        let paired =
            |pred: fn(&AtomicUse) -> bool| atomics.iter().any(|v| v.field == u.field && pred(v));
        if release_side(u) && !has(u, &["SeqCst"]) && !paired(acquire_side) {
            out.push(Diag {
                file: u.file.clone(),
                line: u.line,
                col: u.col,
                rule: "atomic-ordering",
                severity: Severity::Error,
                msg: format!(
                    "`Release` ordering on `{}` has no matching `Acquire` load of that field in the audited crates",
                    u.field
                ),
                suggestion: Some(
                    "upgrade a reader to Ordering::Acquire, or add a `// ordering:` comment \
                     if Relaxed readers are intended"
                        .into(),
                ),
            });
        }
        if acquire_side(u) && !has(u, &["SeqCst"]) && !paired(release_side) {
            out.push(Diag {
                file: u.file.clone(),
                line: u.line,
                col: u.col,
                rule: "atomic-ordering",
                severity: Severity::Error,
                msg: format!(
                    "`Acquire` ordering on `{}` has no matching `Release` store of that field in the audited crates",
                    u.field
                ),
                suggestion: Some(
                    "publish the field with Ordering::Release, or add a `// ordering:` comment \
                     if there is nothing to synchronize with"
                        .into(),
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::source::SourceFile;

    fn run(srcs: &[(&str, &str)]) -> Vec<Diag> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse((*p).into(), (*s).into()))
            .collect();
        let model = model::build(&files);
        let ws = crate::Workspace { files, model };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn unjustified_seqcst_is_flagged() {
        let v = run(&[(
            "crates/core/src/x.rs",
            "fn f(&self) { self.seq.store(1, Ordering::SeqCst); }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("SeqCst"));
    }

    #[test]
    fn justified_seqcst_is_clean() {
        let v = run(&[(
            "crates/core/src/x.rs",
            "fn f(&self) {\n    // ordering: ticket counter needs a single total order\n    self.seq.store(1, Ordering::SeqCst);\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn paired_acquire_release_across_files_is_clean() {
        let v = run(&[
            (
                "crates/core/src/a.rs",
                "fn publish(&self) { self.ready.store(true, Ordering::Release); }\n",
            ),
            (
                "crates/journal/src/b.rs",
                "fn observe(&self) -> bool { self.ready.load(Ordering::Acquire) }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn release_store_with_only_relaxed_loads_is_flagged() {
        let v = run(&[(
            "crates/core/src/a.rs",
            "fn f(&self) {\n    self.armed.store(true, Ordering::Release);\n    let _x = self.armed.load(Ordering::Relaxed);\n}\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("no matching `Acquire` load"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unpaired_acquire_load_is_flagged() {
        let v = run(&[(
            "crates/core/src/a.rs",
            "fn f(&self) { let _x = self.flag.load(Ordering::Acquire); }\n",
        )]);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("no matching `Release` store"));
    }

    #[test]
    fn justification_silences_unpaired_release() {
        let v = run(&[(
            "crates/core/src/a.rs",
            "fn f(&self) {\n    // ordering: advisory flag, Relaxed readers are fine\n    self.armed.store(true, Ordering::Release);\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rmw_counts_as_both_sides() {
        let v = run(&[(
            "crates/core/src/a.rs",
            "fn f(&self) { self.n.fetch_add(1, Ordering::AcqRel); }\n",
        )]);
        // AcqRel RMW pairs with itself (other threads' RMWs of the field).
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn seqcst_pairs_with_release_store() {
        // A justified SeqCst load counts as the acquire side for pairing.
        let v = run(&[(
            "crates/core/src/a.rs",
            "fn f(&self) {\n    self.gate.store(true, Ordering::Release);\n    // ordering: gate readers need the global order with seq\n    let _g = self.gate.load(Ordering::SeqCst);\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn relaxed_everywhere_is_clean() {
        let v = run(&[(
            "crates/core/src/a.rs",
            "fn f(&self) { self.hits.fetch_add(1, Ordering::Relaxed); let _h = self.hits.load(Ordering::Relaxed); }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_and_out_of_scope_files_are_exempt() {
        let v = run(&[
            (
                "crates/bench/src/a.rs",
                "fn f(&self) { self.x.store(1, Ordering::SeqCst); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { X.store(1, Ordering::SeqCst); }\n}\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }
}
