//! The four path-scoped hygiene rules ported from the original
//! `crates/xtask/src/lint.rs` line-grep linter onto the token stream:
//! `no-std-sync`, `no-unwrap-on-sync`, `no-println-in-lib`,
//! `no-discarded-io`. Being token-based, comments and string literals
//! can no longer trigger them, and every finding carries a column.

use crate::lexer::Kind;
use crate::source::SourceFile;
use crate::{Diag, Severity};

/// The one file allowed to use `std::sync` lock primitives.
const STD_SYNC_EXEMPT: &[&str] = &["crates/common/src/lockdep.rs"];

/// Crates whose non-test sources must not unwrap lock/channel results.
const UNWRAP_SCOPES: &[&str] = &[
    "crates/core/src",
    "crates/journal/src",
    "crates/filestore/src",
    "crates/kvstore/src",
];

/// Receiver methods that make a same-line `.unwrap()`/`.expect()` a
/// lock/channel unwrap.
const SYNC_RESULT_METHODS: &[&str] = &["lock", "try_lock", "recv", "try_recv", "send", "join"];

/// Crates exempt from the println rule: the bench harness prints result
/// tables by design.
const PRINTLN_EXEMPT: &[&str] = &["crates/bench"];

/// Crates whose non-test sources must not discard fallible I/O results
/// with `let _ =`.
const DISCARD_IO_SCOPES: &[&str] = &[
    "crates/journal/src",
    "crates/filestore/src",
    "crates/device/src",
];

/// Methods whose discarded `Result` is an I/O result. Channel sends,
/// thread joins and OnceLock sets stay legal to discard.
const IO_METHODS: &[&str] = &[
    "submit",
    "submit_and_wait",
    "queue_transaction",
    "apply_sync",
    "read",
    "write",
    "write_at",
    "sync",
    "flush",
    "setxattr",
    "getxattr",
    "omap_set",
    "truncate",
];

// ---------------------------------------------------------------- //
// no-std-sync
// ---------------------------------------------------------------- //

pub fn check_std_sync(f: &SourceFile, out: &mut Vec<Diag>) {
    if STD_SYNC_EXEMPT.contains(&f.path.as_str()) {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        // std :: sync :: {Mutex | RwLock | Condvar} — fully qualified or
        // imported; `use std::sync::{…}` grouped imports land here too
        // because the banned ident still follows the `sync ::` path.
        if !t[i].is_ident("std") {
            continue;
        }
        if !(t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("sync")))
        {
            continue;
        }
        // Scan the rest of the path / import group on this statement.
        let mut j = i + 4;
        let mut hit = None;
        let mut depth = 0i64;
        while let Some(x) = t.get(j) {
            if x.is_punct(';') || (depth == 0 && (x.is_punct('=') || x.is_punct(')'))) {
                break;
            }
            if x.is_punct('{') {
                depth += 1;
            }
            if x.is_punct('}') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            if ["Mutex", "RwLock", "Condvar"].iter().any(|w| x.is_ident(w)) {
                hit = Some(x.text.clone());
                break;
            }
            // Stop at the end of a simple path (e.g. `std::sync::Arc`)
            // unless we are inside an import group.
            if depth == 0 && x.kind == Kind::Ident && !t.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                break;
            }
            j += 1;
        }
        if let Some(name) = hit {
            out.push(Diag {
                file: f.path.clone(),
                line: t[i].line,
                col: t[i].col,
                rule: "no-std-sync",
                severity: Severity::Error,
                msg: format!("std::sync::{name} is banned"),
                suggestion: Some(
                    "use parking_lot or afc_common::lockdep::Tracked* so lockdep sees the lock"
                        .into(),
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- //
// no-unwrap-on-sync
// ---------------------------------------------------------------- //

pub fn check_unwrap_on_sync(f: &SourceFile, out: &mut Vec<Diag>) {
    if !UNWRAP_SCOPES.iter().any(|s| f.path.starts_with(s)) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        let is_unwrap = t[i].is_ident("unwrap") || t[i].is_ident("expect");
        if !(is_unwrap
            && i >= 1
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('(')))
            || f.is_test(i)
        {
            continue;
        }
        // A sync unwrap iff an earlier token on the same line is a
        // lock/channel method call (same-line semantics kept from the
        // original linter).
        let line = t[i].line;
        let sync_before = (0..i.saturating_sub(1))
            .rev()
            .take_while(|&j| t[j].line == line)
            .any(|j| {
                t[j].kind == Kind::Ident
                    && SYNC_RESULT_METHODS.contains(&t[j].text.as_str())
                    && t[j + 1].is_punct('(')
            });
        if sync_before {
            out.push(Diag {
                file: f.path.clone(),
                line,
                col: t[i].col,
                rule: "no-unwrap-on-sync",
                severity: Severity::Error,
                msg: format!(".{}() on a lock/channel result in hot-path code", t[i].text),
                suggestion: Some(
                    "handle the error (shutdown is not exceptional); sanctioned cases go in \
                     analyze-baseline.txt"
                        .into(),
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- //
// no-println-in-lib
// ---------------------------------------------------------------- //

pub fn check_println(f: &SourceFile, out: &mut Vec<Diag>) {
    if !f.path.starts_with("crates/")
        || PRINTLN_EXEMPT.iter().any(|p| f.path.starts_with(p))
        || f.non_prod
    {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        if (t[i].is_ident("println") || t[i].is_ident("eprintln"))
            && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
            && !f.is_test(i)
        {
            out.push(Diag {
                file: f.path.clone(),
                line: t[i].line,
                col: t[i].col,
                rule: "no-println-in-lib",
                severity: Severity::Error,
                msg: format!("{}! in library code", t[i].text),
                suggestion: Some("log through afc_logging or return an error".into()),
            });
        }
    }
}

// ---------------------------------------------------------------- //
// no-discarded-io
// ---------------------------------------------------------------- //

pub fn check_discarded_io(f: &SourceFile, out: &mut Vec<Diag>) {
    if !DISCARD_IO_SCOPES.iter().any(|s| f.path.starts_with(s)) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        if !(t[i].is_ident("let")
            && t.get(i + 1).is_some_and(|x| x.is_ident("_"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('=')))
            || f.is_test(i)
        {
            continue;
        }
        // Scan the statement (to `;`) for an I/O method call; a `?`
        // anywhere in it propagates the error, which is fine.
        let mut j = i + 3;
        let mut io_call: Option<String> = None;
        let mut propagated = false;
        while let Some(x) = t.get(j) {
            if x.is_punct(';') {
                break;
            }
            if x.is_punct('?') {
                propagated = true;
            }
            if x.kind == Kind::Ident
                && IO_METHODS.contains(&x.text.as_str())
                && t[j - 1].is_punct('.')
                && t.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                io_call.get_or_insert_with(|| x.text.clone());
            }
            j += 1;
        }
        if let (Some(call), false) = (io_call, propagated) {
            out.push(Diag {
                file: f.path.clone(),
                line: t[i].line,
                col: t[i].col,
                rule: "no-discarded-io",
                severity: Severity::Error,
                msg: format!("`let _ =` discards the Result of .{call}(…)"),
                suggestion: Some(
                    "handle or propagate it — swallowed I/O errors defeat the \
                     torn-write/fault-injection contract"
                        .into(),
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(rule: fn(&SourceFile, &mut Vec<Diag>), path: &str, src: &str) -> Vec<Diag> {
        let f = SourceFile::parse(path.into(), src.into());
        let mut out = Vec::new();
        rule(&f, &mut out);
        out
    }

    // -------- no-std-sync (migrated fixtures) -------- //

    #[test]
    fn std_sync_mutex_is_flagged() {
        let src = "use std::sync::Mutex;\nstatic S: Mutex<u32> = Mutex::new(0);\n";
        let v = run(check_std_sync, "crates/core/src/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-std-sync");
        assert_eq!((v[0].line, v[0].col), (1, 5));
    }

    #[test]
    fn std_sync_fully_qualified_is_flagged_anywhere() {
        let src = "fn f() { let m = std::sync::RwLock::new(5); }\n";
        assert_eq!(
            run(check_std_sync, "crates/device/src/lib.rs", src).len(),
            1
        );
    }

    #[test]
    fn std_sync_grouped_import_is_flagged() {
        let src = "use std::sync::{atomic::AtomicU64, Condvar};\n";
        assert_eq!(run(check_std_sync, "crates/core/src/foo.rs", src).len(), 1);
    }

    #[test]
    fn std_sync_atomics_arc_and_mpsc_are_fine() {
        let src = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\nuse std::sync::mpsc;\nfn f() { let x: std::sync::mpsc::Receiver<Mutex<u8>>; }\n";
        assert!(run(check_std_sync, "crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn lockdep_itself_may_use_std_sync() {
        let src = "use std::sync::Mutex;\n";
        assert!(run(check_std_sync, "crates/common/src/lockdep.rs", src).is_empty());
    }

    #[test]
    fn commented_and_quoted_mentions_are_not_flagged() {
        let src =
            "// std::sync::Mutex would poison here\nfn f() { let s = \"std::sync::Mutex\"; }\n";
        assert!(run(check_std_sync, "crates/core/src/foo.rs", src).is_empty());
    }

    // -------- no-unwrap-on-sync (migrated fixtures) -------- //

    #[test]
    fn unwrap_on_lock_result_is_flagged() {
        let src = "fn f(m: &M) {\n    let g = m.lock().unwrap();\n}\n";
        let v = run(check_unwrap_on_sync, "crates/core/src/osd/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap-on-sync");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_on_channel_result_is_flagged() {
        let src = "fn f(rx: Receiver<u32>) {\n    let x = rx.recv().expect(\"alive\");\n}\n";
        assert_eq!(
            run(check_unwrap_on_sync, "crates/journal/src/lib.rs", src).len(),
            1
        );
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { h.join().unwrap(); }\n}\n";
        assert!(run(check_unwrap_on_sync, "crates/filestore/src/store.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_scoped_crates_is_exempt() {
        let src = "fn f() { h.join().unwrap(); }\n";
        assert!(run(check_unwrap_on_sync, "crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_on_parse_is_not_a_sync_unwrap() {
        let src = "fn f(s: &str) -> u64 { s.parse().unwrap() }\n";
        assert!(run(check_unwrap_on_sync, "crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lock_in_comment_does_not_make_an_unwrap_sync() {
        let src = "fn f(s: &str) -> u64 { /* lock() */ s.parse().unwrap() }\n";
        assert!(run(check_unwrap_on_sync, "crates/core/src/lib.rs", src).is_empty());
    }

    // -------- no-println-in-lib (migrated fixtures) -------- //

    #[test]
    fn println_in_lib_is_flagged() {
        let src = "pub fn f() {\n    println!(\"debug\");\n}\n";
        let v = run(check_println, "crates/journal/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-println-in-lib");
    }

    #[test]
    fn eprintln_in_lib_is_flagged() {
        let src = "pub fn f() { eprintln!(\"oops\"); }\n";
        assert_eq!(run(check_println, "crates/kvstore/src/db.rs", src).len(), 1);
    }

    #[test]
    fn println_in_bench_harness_bin_and_tests_is_exempt() {
        let src = "pub fn f() { println!(\"table\"); }\n";
        assert!(run(check_println, "crates/bench/src/lib.rs", src).is_empty());
        assert!(run(check_println, "crates/core/src/bin/tool.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(run(check_println, "crates/core/src/lib.rs", test_src).is_empty());
    }

    // -------- no-discarded-io (migrated fixtures) -------- //

    #[test]
    fn discarded_journal_submit_is_flagged() {
        let src = "fn f(j: &Journal) {\n    let _ = j.submit(p, cb);\n}\n";
        let v = run(check_discarded_io, "crates/journal/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-discarded-io");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn discarded_device_write_and_queue_transaction_are_flagged() {
        let src = "fn f(d: &Ssd) { let _ = d.write(req); }\n";
        assert_eq!(
            run(check_discarded_io, "crates/device/src/ssd.rs", src).len(),
            1
        );
        let src = "fn f(fs: &FileStore) { let _ = fs.queue_transaction(txn, cb); }\n";
        assert_eq!(
            run(check_discarded_io, "crates/filestore/src/store.rs", src).len(),
            1
        );
    }

    #[test]
    fn question_mark_propagation_is_exempt() {
        let src = "fn f(fs: &SimFs) -> Result<()> {\n    let _ = fs.getxattr(o, \"_\")?;\n    Ok(())\n}\n";
        assert!(run(check_discarded_io, "crates/filestore/src/store.rs", src).is_empty());
    }

    #[test]
    fn discarded_channel_send_and_join_are_exempt() {
        let src = "fn f() {\n    let _ = tx.send(1);\n    let _ = h.join();\n    let _ = cell.set(v);\n}\n";
        assert!(run(check_discarded_io, "crates/journal/src/lib.rs", src).is_empty());
    }

    #[test]
    fn discarded_io_in_tests_and_foreign_crates_is_exempt() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = j.submit(p, cb); }\n}\n";
        assert!(run(check_discarded_io, "crates/journal/src/lib.rs", test_src).is_empty());
        let src = "fn f() { let _ = j.submit(p, cb); }\n";
        assert!(run(check_discarded_io, "crates/core/src/osd/mod.rs", src).is_empty());
        assert!(run(check_discarded_io, "crates/journal/tests/replay.rs", src).is_empty());
    }

    #[test]
    fn multiline_discard_statement_is_scanned() {
        let src = "fn f(j: &J) {\n    let _ = j\n        .submit(p, cb);\n}\n";
        assert_eq!(
            run(check_discarded_io, "crates/journal/src/lib.rs", src).len(),
            1
        );
    }
}
