//! The rule catalog. Each rule walks the token streams (and the
//! cross-file [`crate::model::Model`]) and pushes [`crate::Diag`]s.

pub mod atomic_ordering;
pub mod blocking;
pub mod hygiene;
pub mod lock_order;
pub mod pg_state;
pub mod qos_tag;
pub mod site_names;
pub mod stream_tag;
pub mod zero_copy;

use crate::{Diag, Workspace};

/// Run every rule over the workspace.
pub fn run_all(ws: &Workspace) -> Vec<Diag> {
    let mut out = Vec::new();
    for f in &ws.files {
        hygiene::check_std_sync(f, &mut out);
        hygiene::check_unwrap_on_sync(f, &mut out);
        hygiene::check_println(f, &mut out);
        hygiene::check_discarded_io(f, &mut out);
        pg_state::check(f, &mut out);
        lock_order::check(ws, f, &mut out);
        blocking::check(f, &mut out);
        zero_copy::check(f, &mut out);
        stream_tag::check(f, &mut out);
        qos_tag::check(f, &mut out);
    }
    atomic_ordering::check(ws, &mut out);
    site_names::check(ws, &mut out);
    out
}
