//! `stream-tag`: untagged device writes in the storage bottom half
//! (`crates/journal/src`, `crates/kvstore/src`, `crates/filestore/src`).
//!
//! Every producer in those crates owns a distinct write lifetime (journal
//! ring, KV WAL, compaction output, metadata, object data) and must say so:
//! device writes go through `IoReq::write_stream(.., StreamId::..)` (or a
//! struct literal with an explicit `stream:` field, which the type system
//! already enforces). The bare `IoReq::write(..)` constructor silently
//! falls through to the default cold-data stream — on a multi-stream FTL
//! that re-mixes lifetimes into shared erase blocks and quietly undoes the
//! write-amplification win the streams exist for.
//!
//! A genuinely stream-less write (a test fixture, a one-off scratch write
//! outside any modeled lifetime) carries a `// stream-ok:` comment saying
//! why the default stream is correct there.

use crate::source::SourceFile;
use crate::{Diag, Severity};

/// The stream-aware producer crates the rule polices.
const SCOPES: &[&str] = &[
    "crates/journal/src",
    "crates/kvstore/src",
    "crates/filestore/src",
];

/// Comment marker that waives a specific line.
const WAIVER: &str = "stream-ok:";

pub fn check(f: &SourceFile, out: &mut Vec<Diag>) {
    if !SCOPES.iter().any(|s| f.path.starts_with(s)) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        if f.is_test(i) {
            continue;
        }
        // `IoReq::write(` — the stream-less write constructor.
        let untagged_ctor = i >= 3
            && t[i].is_ident("write")
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t[i - 3].is_ident("IoReq")
            && t.get(i + 1).is_some_and(|x| x.is_punct('('));
        if !untagged_ctor {
            continue;
        }
        if f.line_justified(t[i].line, WAIVER) {
            continue;
        }
        out.push(Diag {
            file: f.path.clone(),
            line: t[i].line,
            col: t[i].col,
            rule: "stream-tag",
            severity: Severity::Error,
            msg: "untagged device write (`IoReq::write(..)`) in a stream-aware crate".into(),
            suggestion: Some(format!(
                "tag the producer's lifetime with \
                 `IoReq::write_stream(offset, len, StreamId::..)`; if the \
                 default cold-data stream is genuinely right here, waive \
                 with a `// {WAIVER}` comment saying why"
            )),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Diag> {
        let f = SourceFile::parse(path.into(), src.into());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn untagged_write_is_flagged() {
        let src = "fn append(&self) {\n    self.dev.submit(IoReq::write(0, 4096)).unwrap();\n}\n";
        let v = run("crates/kvstore/src/wal.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stream-tag");
        assert_eq!(v[0].severity, Severity::Error);
    }

    #[test]
    fn tagged_write_and_reads_pass() {
        let src = "fn append(&self) {\n    self.dev.submit(IoReq::write_stream(0, 4096, StreamId::KvWal)).unwrap();\n    self.dev.submit(IoReq::read(0, 4096)).unwrap();\n    self.dev.submit(IoReq::flush()).unwrap();\n}\n";
        assert!(run("crates/kvstore/src/wal.rs", src).is_empty());
    }

    #[test]
    fn waiver_comment_silences_the_line() {
        let src = "fn scratch(&self) {\n    // stream-ok: scratch-region write outside any modeled lifetime\n    self.dev.submit(IoReq::write(0, 512)).unwrap();\n}\n";
        assert!(run("crates/journal/src/lib.rs", src).is_empty());
    }

    #[test]
    fn other_scopes_and_tests_are_exempt() {
        let src = "fn f(&self) { self.dev.submit(IoReq::write(0, 512)).unwrap(); }\n";
        assert!(run("crates/device/src/raid.rs", src).is_empty());
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { dev.submit(IoReq::write(0, 512)).unwrap(); }\n}\n";
        assert!(run("crates/filestore/src/simfs.rs", test_src).is_empty());
    }
}
