//! `site-names`: cross-checks the fault/metric site-name registry.
//!
//! Site names are stringly-typed coordinates (`net.request`,
//! `osd0.data.write`, `node1.journal`) shared between three parties that
//! never meet at compile time: the production code that *attaches*
//! fault points and registers metrics, the tests that *arm* faults by
//! name, and the dashboards that read metric names. A typo in any of
//! them fails silently — the fault never fires, the metric never moves.
//! This rule makes the registry total:
//!
//! - **Convention.** Every site literal is dotted lowercase
//!   (`[a-z0-9_]` segments, `{…}` format holes allowed).
//! - **Armed sites must exist.** A `FaultSpec::new("…")` name must
//!   match an attached template (instance of the template, optionally
//!   with one trailing `.verb` segment — `check_io` semantics).
//! - **Fault sites must be armed.** A production template no test ever
//!   arms is dead fault-injection surface; it rots unverified.
//! - **Registered metrics must be recorded.** A handle registered with
//!   the metrics registry but never `inc`/`add`/`observe`d anywhere is
//!   a dashboard lie.

use crate::model::SiteLit;
use crate::{Diag, Severity, Workspace};

/// True if `name` could be produced by `template` (a format string with
/// `{…}` holes), optionally followed by one extra `.verb` segment.
pub fn template_matches(template: &str, name: &str) -> bool {
    let t_segs: Vec<&str> = template.split('.').collect();
    let n_segs: Vec<&str> = name.split('.').collect();
    let extra_verb = n_segs.len() == t_segs.len() + 1 && is_plain_segment(n_segs[n_segs.len() - 1]);
    if n_segs.len() != t_segs.len() && !extra_verb {
        return false;
    }
    t_segs
        .iter()
        .zip(&n_segs)
        .all(|(t, n)| segment_matches(t, n))
}

fn is_plain_segment(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Match one dotted segment: literal chars plus `{…}` holes, each hole
/// consuming one or more characters (backtracking, holes are rare).
fn segment_matches(pat: &str, s: &str) -> bool {
    fn go(p: &[char], s: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('{') => {
                let close = match p.iter().position(|&c| c == '}') {
                    Some(i) => i,
                    None => return false, // malformed hole: no match
                };
                let rest = &p[close + 1..];
                // A hole eats 1..=len chars.
                (1..=s.len()).any(|k| go(rest, &s[k..]))
            }
            Some(&c) => s.first() == Some(&c) && go(&p[1..], &s[1..]),
        }
    }
    go(
        &pat.chars().collect::<Vec<_>>(),
        &s.chars().collect::<Vec<_>>(),
    )
}

/// Convention: dotted lowercase segments; `{…}` holes allowed.
fn valid_site(template: &str) -> bool {
    if template.is_empty() {
        return false;
    }
    template.split('.').all(|seg| {
        if seg.is_empty() {
            return false;
        }
        let mut in_hole = false;
        for c in seg.chars() {
            match c {
                '{' if !in_hole => in_hole = true,
                '}' if in_hole => in_hole = false,
                _ if in_hole => {} // hole contents are format syntax
                c if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' => {}
                _ => return false,
            }
        }
        !in_hole
    })
}

fn diag(s: &SiteLit, msg: String, suggestion: String) -> Diag {
    Diag {
        file: s.file.clone(),
        line: s.line,
        col: s.col,
        rule: "site-names",
        severity: Severity::Error,
        msg,
        suggestion: Some(suggestion),
    }
}

pub fn check(ws: &Workspace, out: &mut Vec<Diag>) {
    let m = &ws.model;

    // 1. Convention, over every site literal we know about.
    for s in m.fault_templates.iter().chain(&m.metric_names) {
        if !valid_site(&s.template) {
            out.push(diag(
                s,
                format!(
                    "site name `{}` violates the dotted-lowercase convention",
                    s.template
                ),
                "use `component.subsystem.verb` segments of [a-z0-9_] (format `{…}` holes allowed)"
                    .into(),
            ));
        }
    }

    // Only well-formed production templates participate in arming checks;
    // malformed ones were already reported above.
    let live_templates: Vec<&SiteLit> = m
        .fault_templates
        .iter()
        .filter(|t| !t.in_test && valid_site(&t.template))
        .collect();

    // 2. Every armed site in the cluster layer must be an instance of
    //    some attached template. Scoped to `crates/core/`: unit tests in
    //    the leaf crates arm ad-hoc names against their own local
    //    registries, which is fine — only the cluster integration layer
    //    arms the shared attach()ed sites.
    for a in m
        .armed_sites
        .iter()
        .filter(|a| a.file.starts_with("crates/core/"))
    {
        if !live_templates
            .iter()
            .any(|t| template_matches(&t.template, &a.template))
        {
            out.push(diag(
                a,
                format!(
                    "armed fault site `{}` matches no attached fault template",
                    a.template
                ),
                "the fault will never fire; check the name against the attach() sites".into(),
            ));
        }
    }

    // 3. Every production template must be armed by at least one test
    //    (or production arm — any FaultSpec counts as coverage).
    let mut seen = std::collections::BTreeSet::new();
    for t in &live_templates {
        if !seen.insert(t.template.as_str()) {
            continue; // report each template once, at its first attach site
        }
        if !m
            .armed_sites
            .iter()
            .any(|a| template_matches(&t.template, &a.template))
        {
            out.push(diag(
                t,
                format!(
                    "fault site `{}` is attached but never armed by any test",
                    t.template
                ),
                "add a fault-matrix case arming it, or remove the dead injection point".into(),
            ));
        }
    }

    // 4. Registered metric handles must be recorded somewhere.
    for (field, (file, line, col)) in &m.metric_registered {
        if !m.metric_recorded.contains(field) {
            out.push(Diag {
                file: file.clone(),
                line: *line,
                col: *col,
                rule: "site-names",
                severity: Severity::Error,
                msg: format!(
                    "metric handle `{field}` is registered but never recorded (no inc/add/set/observe call)"
                ),
                suggestion: Some(
                    "record into the handle on the relevant path, or drop the registration".into(),
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::source::SourceFile;

    fn run(srcs: &[(&str, &str)]) -> Vec<Diag> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse((*p).into(), (*s).into()))
            .collect();
        let model = model::build(&files);
        let ws = crate::Workspace { files, model };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn template_matching_semantics() {
        assert!(template_matches("net.request", "net.request"));
        assert!(template_matches("osd{}.data", "osd0.data"));
        assert!(template_matches("osd{}.data", "osd12.data.write")); // check_io verb
        assert!(template_matches("node{node}.journal", "node3.journal"));
        assert!(!template_matches("osd{}.data", "osd0.journal"));
        assert!(!template_matches("net.request", "net.reply"));
        assert!(!template_matches("osd{}.data", "osd0.data.write.extra"));
        assert!(!template_matches("osd{}.data", "osd.data")); // hole eats >= 1 char
                                                              // Healing-loop sites (heartbeats, peering, recovery pushes).
        assert!(template_matches("net.heartbeat", "net.heartbeat"));
        assert!(template_matches("net.peering", "net.peering"));
        assert!(template_matches("net.push", "net.push"));
        assert!(template_matches(
            "osd{}.recovery.pushes",
            "osd3.recovery.pushes"
        ));
        assert!(template_matches(
            "osd{}.peering.rounds",
            "osd12.peering.rounds"
        ));
        assert!(!template_matches("net.heartbeat", "net.peering"));
        assert!(!template_matches(
            "osd{}.recovery.pushes",
            "osd3.peering.pushes"
        ));
        // Multi-stream device metrics: per-stream byte counters and the
        // GC copy-forward accounting exported by the stream-aware FTL.
        assert!(template_matches(
            "osd{}.data.stream.{}.bytes",
            "osd0.data.stream.journal.bytes"
        ));
        assert!(template_matches(
            "osd{}.data.stream.{}.bytes",
            "osd3.data.stream.kv_compaction.bytes"
        ));
        assert!(template_matches(
            "osd{}.data.gc.copied_bytes",
            "osd1.data.gc.copied_bytes"
        ));
        assert!(template_matches(
            "osd{}.data.gc.pauses",
            "osd0.data.gc.pauses"
        ));
        assert!(!template_matches(
            "osd{}.data.stream.{}.bytes",
            "osd0.data.stream.bytes" // hole eats >= 1 segment char, not zero segments
        ));
    }

    #[test]
    fn convention_checks() {
        assert!(valid_site("net.request"));
        assert!(valid_site("osd{}.data"));
        assert!(valid_site("node{node}.journal"));
        assert!(valid_site("osd{}.data.stream.{}.bytes"));
        assert!(valid_site("osd{}.data.gc.copied_bytes"));
        assert!(!valid_site("Net.Request"));
        assert!(!valid_site("osd..data"));
        assert!(!valid_site("osd-0.data"));
        assert!(!valid_site("osd 0.data"));
        assert!(!valid_site(""));
    }

    #[test]
    fn bad_convention_is_flagged_at_the_literal() {
        let v = run(&[(
            "crates/core/src/cluster.rs",
            "fn wire(reg: &R) { dev.attach(reg, \"Osd-Zero.Data\".to_string()); }\n",
        )]);
        assert!(
            v.iter().any(|d| d.msg.contains("dotted-lowercase")),
            "{v:?}"
        );
    }

    #[test]
    fn armed_site_with_no_template_is_flagged() {
        let v = run(&[
            (
                "crates/core/src/cluster.rs",
                "fn wire(reg: &R) { dev.attach(reg, format!(\"osd{}.data\", id)); }\n",
            ),
            (
                "crates/core/tests/faults.rs",
                "#[test]\nfn t() { reg.install(FaultSpec::new(\"osd0.jornal.write\", FaultKind::Torn)); }\n",
            ),
        ]);
        assert!(
            v.iter()
                .any(|d| d.msg.contains("`osd0.jornal.write` matches no attached")),
            "{v:?}"
        );
    }

    #[test]
    fn unarmed_template_is_flagged_once() {
        let v = run(&[(
            "crates/core/src/cluster.rs",
            "fn wire(reg: &R) {\n    a.attach(reg, \"net.request\".to_string());\n    b.attach(reg, \"net.request\".to_string());\n}\n",
        )]);
        let hits: Vec<_> = v.iter().filter(|d| d.msg.contains("never armed")).collect();
        assert_eq!(hits.len(), 1, "{v:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn armed_template_is_clean() {
        let v = run(&[
            (
                "crates/core/src/cluster.rs",
                "fn wire(reg: &R) { dev.attach(reg, format!(\"osd{}.data\", id)); }\n",
            ),
            (
                "crates/core/tests/faults.rs",
                "#[test]\nfn t() { reg.install(FaultSpec::new(\"osd1.data.write\", FaultKind::Torn)); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unarmed_healing_sites_are_flagged() {
        // The self-healing loop's injection points (heartbeat drops,
        // peering-info drops, push drops) participate in arming coverage
        // like any other site: attached-but-unarmed is dead surface.
        let v = run(&[(
            "crates/core/src/cluster.rs",
            "fn wire(reg: &R) {\n    a.attach(reg, \"net.heartbeat\".to_string());\n    b.attach(reg, \"net.push\".to_string());\n}\n",
        ), (
            "crates/core/tests/recovery.rs",
            "#[test]\nfn t() { reg.install(FaultSpec::new(\"net.heartbeat\", FaultKind::Drop)); }\n",
        )]);
        let unarmed: Vec<_> = v.iter().filter(|d| d.msg.contains("never armed")).collect();
        assert_eq!(unarmed.len(), 1, "{v:?}");
        assert!(unarmed[0].msg.contains("`net.push`"), "{v:?}");
    }

    #[test]
    fn registered_but_never_recorded_metric_is_flagged() {
        let v = run(&[(
            "crates/device/src/lib.rs",
            "struct S { writes: Counter, depth: Gauge }\nimpl S {\n  fn reg(&self, m: &M) {\n    m.register_counter(\"dev.writes\", &self.writes);\n    m.register_gauge(\"dev.depth\", &self.depth);\n  }\n  fn hit(&self) { self.writes.inc(1); }\n}\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0]
            .msg
            .contains("`depth` is registered but never recorded"));
    }
}
