//! `pg-state-confinement`: `Pg::state` may be locked only inside the
//! pending-queue entry points (`Pg::drain`, `Pg::lock_measured` in
//! `pg.rs`); every other path must go through the pending FIFO so
//! per-PG ordering is preserved.
//!
//! Re-expressed on the token stream (the original line-grep version
//! matched `.state.lock()` textually and misfired on comments and
//! string literals; tokens make that impossible by construction, and
//! the sanctioned-function check now uses real `fn` body spans instead
//! of a brace-counting line mask).

use crate::source::SourceFile;
use crate::{Diag, Severity};

/// Directory the rule applies to.
const SCOPE: &str = "crates/core/src/osd";

/// (file suffix, function names) whose bodies may lock `state` directly.
const SANCTIONED: (&str, &[&str]) = ("/pg.rs", &["drain", "lock_measured"]);

pub fn check(f: &SourceFile, out: &mut Vec<Diag>) {
    if !f.path.starts_with(SCOPE) {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        // . state . {lock | try_lock} (
        let shape = t[i].is_ident("state")
            && i >= 1
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('.'))
            && t.get(i + 2)
                .is_some_and(|x| x.is_ident("lock") || x.is_ident("try_lock"))
            && t.get(i + 3).is_some_and(|x| x.is_punct('('));
        if !shape {
            continue;
        }
        let sanctioned = f.path.ends_with(SANCTIONED.0)
            && f.enclosing_fn(i)
                .is_some_and(|fun| SANCTIONED.1.contains(&fun.name.as_str()));
        if sanctioned {
            continue;
        }
        out.push(Diag {
            file: f.path.clone(),
            line: t[i].line,
            col: t[i].col,
            rule: "pg-state-confinement",
            severity: Severity::Error,
            msg: "direct Pg::state lock outside Pg::drain/Pg::lock_measured".into(),
            suggestion: Some("go through the pending queue so per-PG ordering is preserved".into()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Diag> {
        let f = SourceFile::parse(path.into(), src.into());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    // -------- migrated fixtures -------- //

    #[test]
    fn pg_state_lock_outside_entry_points_is_flagged() {
        let src = "fn sneaky(pg: &Pg) {\n    let g = pg.state.lock();\n}\n";
        let v = run("crates/core/src/osd/mod.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pg-state-confinement");
        assert_eq!((v[0].line, v[0].col), (2, 16));
    }

    #[test]
    fn pg_state_lock_inside_drain_and_lock_measured_is_sanctioned() {
        let src = "impl Pg {\n    pub fn drain(&self) {\n        let g = self.state.try_lock();\n    }\n    pub fn lock_measured(&self) {\n        let g = self.state.lock();\n    }\n}\n";
        assert!(run("crates/core/src/osd/pg.rs", src).is_empty());
    }

    #[test]
    fn pg_state_lock_elsewhere_in_pg_rs_is_flagged() {
        let src = "impl Pg {\n    pub fn backdoor(&self) {\n        let g = self.state.lock();\n    }\n}\n";
        assert_eq!(run("crates/core/src/osd/pg.rs", src).len(), 1);
    }

    #[test]
    fn pg_state_rule_scoped_to_osd_dir() {
        let src = "fn f(t: &Throttle) { let g = t.state.lock(); }\n";
        assert!(run("crates/filestore/src/throttle.rs", src).is_empty());
    }

    // -------- the false positives the rewrite fixes -------- //

    #[test]
    fn commented_state_lock_is_not_flagged() {
        let src = "fn doc() {\n    // never call pg.state.lock() here\n    /* pg.state.try_lock() is also banned */\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn string_literal_state_lock_is_not_flagged() {
        let src = "fn msg() -> &'static str {\n    \"do not call pg.state.lock() directly\"\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn other_state_methods_are_not_flagged() {
        let src = "fn ok(pg: &Pg) { let n = pg.state_len(); pg.state.read_only(); }\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }
}
