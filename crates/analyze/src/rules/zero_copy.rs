//! `hot-path-copy`: deep copies of op payload buffers inside the write
//! hot path (`crates/core/src/osd`, `crates/journal/src`).
//!
//! The zero-copy pipeline threads one shared `Bytes` buffer from
//! messenger decode through the PG queue, the journal record, and the
//! filestore apply. A `payload.to_vec()` or a `.clone()` of a payload
//! buffer re-introduces a per-op memcpy (and an allocator round trip)
//! that the pipeline exists to eliminate — at 4K ops it costs more than
//! the journal flush it rides along with.
//!
//! `Bytes::clone` is a refcount bump, not a byte copy, but the lexer
//! cannot see types: a clone of a payload-named binding must carry a
//! `// zero-copy-ok:` comment on or above the line saying why it is
//! cheap (or why a real copy is unavoidable there).

use crate::source::SourceFile;
use crate::{Diag, Severity};

/// The write-path scopes the rule polices.
const SCOPES: &[&str] = &["crates/core/src/osd", "crates/journal/src"];

/// Comment marker that waives a specific line.
const WAIVER: &str = "zero-copy-ok:";

/// Whether `name` binds an op payload buffer by this codebase's naming
/// conventions (`payload`, `payload2`, `data`, `buf`).
fn is_payload_ident(name: &str) -> bool {
    name.contains("payload") || name == "data" || name == "buf"
}

pub fn check(f: &SourceFile, out: &mut Vec<Diag>) {
    if !SCOPES.iter().any(|s| f.path.starts_with(s)) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        if f.is_test(i) {
            continue;
        }
        // `<payload>.to_vec()` / `<payload>.clone()`: a method call on a
        // payload-named receiver.
        let receiver_is_payload = i >= 2
            && t[i - 1].is_punct('.')
            && t[i - 2].kind == crate::lexer::Kind::Ident
            && is_payload_ident(&t[i - 2].text);
        if !receiver_is_payload || !t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
            continue;
        }
        let what = if t[i].is_ident("to_vec") || t[i].is_ident("to_owned") {
            "payload deep copy"
        } else if t[i].is_ident("clone") {
            "payload clone"
        } else {
            continue;
        };
        if f.line_justified(t[i].line, WAIVER) {
            continue;
        }
        out.push(Diag {
            file: f.path.clone(),
            line: t[i].line,
            col: t[i].col,
            rule: "hot-path-copy",
            severity: Severity::Error,
            msg: format!(
                "{what} (`{}.{}()`) in the write hot path",
                t[i - 2].text,
                t[i].text
            ),
            suggestion: Some(format!(
                "thread the shared `Bytes` through instead; if this is a \
                 refcount bump or a cold path, waive with a `// {WAIVER}` \
                 comment saying why"
            )),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Diag> {
        let f = SourceFile::parse(path.into(), src.into());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn payload_to_vec_is_flagged() {
        let src = "fn submit(&self, payload: Bytes) {\n    let copy = payload.to_vec();\n}\n";
        let v = run("crates/journal/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-path-copy");
        assert!(v[0].msg.contains("to_vec"));
    }

    #[test]
    fn payload_clone_is_flagged_without_waiver() {
        let src = "fn queue(&self, payload: Bytes) {\n    let p = payload.clone();\n    let d = data.clone();\n}\n";
        let v = run("crates/core/src/osd/mod.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn waiver_comment_silences_the_line() {
        let src = "fn queue(&self, payload: Bytes) {\n    // zero-copy-ok: Bytes refcount bump, no byte copy\n    let p = payload.clone();\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn non_payload_clones_and_other_scopes_are_exempt() {
        let src = "fn f(&self, payload: Bytes) {\n    let t = txn_name.clone();\n    let s = self.stats.clone();\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
        let copy = "fn g(d: &[u8]) -> Vec<u8> { payload.to_vec() }\n";
        assert!(run("crates/core/src/client/rados.rs", copy).is_empty());
    }

    #[test]
    fn tests_inside_scope_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let p = payload.to_vec(); }\n}\n";
        assert!(run("crates/journal/src/lib.rs", src).is_empty());
    }
}
