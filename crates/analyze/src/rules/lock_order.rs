//! `lock-order`: static extraction of nested `TrackedMutex` /
//! `TrackedRwLock` acquisitions, checked against the hierarchy declared
//! in `crates/common/src/lockdep.rs`.
//!
//! The runtime lockdep only sees interleavings that a test happens to
//! execute; this rule walks every production function and reports
//! acquisition pairs that the runtime would panic on *if* they ran:
//!
//! - acquiring a class whose rank does not strictly exceed every held
//!   class's rank (mirrors `rt::on_acquire`);
//! - re-acquiring a class that is already held (recursive deadlock);
//! - a nested pair involving a class missing from `DECLARED_ORDER`
//!   (the hierarchy must stay total, so the doc/render stays honest).
//!
//! Guard liveness is approximated: `let`-bound guards live until their
//! enclosing block closes or an explicit `drop(name)`; guards that are
//! never bound (`foo.lock().bar()`) are transient and only checked
//! against the held set at the acquisition instant. Lock fields resolve
//! to classes via the `TrackedMutex::new(&classes::X, ..)` constructor
//! map built by [`crate::model`]; unresolvable fields are skipped, so
//! the rule cannot misfire on ambiguous names.

use crate::model::UNRANKED;
use crate::source::SourceFile;
use crate::{Diag, Severity, Workspace};

/// Methods that acquire a tracked lock. All take no arguments, which is
/// what disambiguates `.read()` / `.write()` from device I/O calls.
const ACQUIRE_METHODS: &[&str] = &["lock", "try_lock", "read", "write"];

#[derive(Debug)]
struct Held {
    /// Binding name for `let g = ...` guards; `None` never occurs in the
    /// held list (transient guards are checked, not pushed).
    guard: String,
    /// Lock-class ident (e.g. `PG_STATE`).
    class: String,
    rank: u32,
    /// Brace depth at binding time; popped when the block closes.
    depth: usize,
}

pub fn check(ws: &Workspace, f: &SourceFile, out: &mut Vec<Diag>) {
    if f.non_prod {
        return;
    }
    let t = &f.toks;
    let mut depth: usize = 0;
    let mut held: Vec<Held> = Vec::new();

    for i in 0..t.len() {
        if t[i].is_punct('{') {
            depth += 1;
            continue;
        }
        if t[i].is_punct('}') {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
            continue;
        }
        if f.is_test(i) {
            continue;
        }
        // drop(name) releases a bound guard early.
        if t[i].is_ident("drop")
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            && t.get(i + 2)
                .is_some_and(|x| x.kind == crate::lexer::Kind::Ident)
            && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            let name = t[i + 2].text.as_str();
            held.retain(|h| h.guard != name);
            continue;
        }
        // . field . {lock|try_lock|read|write} ( )
        let is_acquire = t[i].kind == crate::lexer::Kind::Ident
            && i >= 1
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('.'))
            && t.get(i + 2).is_some_and(|x| {
                x.kind == crate::lexer::Kind::Ident && ACQUIRE_METHODS.contains(&x.text.as_str())
            })
            && t.get(i + 3).is_some_and(|x| x.is_punct('('))
            && t.get(i + 4).is_some_and(|x| x.is_punct(')'));
        if !is_acquire {
            continue;
        }
        let Some(class) = ws.model.resolve_class(&f.path, &t[i].text) else {
            continue;
        };
        let (line, col) = (t[i].line, t[i].col);

        // Check the new acquisition against everything held.
        for h in &held {
            if h.class == class.ident {
                out.push(Diag {
                    file: f.path.clone(),
                    line,
                    col,
                    rule: "lock-order",
                    severity: Severity::Error,
                    msg: format!(
                        "recursive acquisition of lock class `{}` ({}); guard `{}` of the same class is still live",
                        class.ident, class.site, h.guard
                    ),
                    suggestion: Some(format!(
                        "drop `{}` first, or split the critical sections",
                        h.guard
                    )),
                });
                continue;
            }
            let undeclared: Vec<&str> = [h.class.as_str(), class.ident.as_str()]
                .into_iter()
                .filter(|c| !ws.model.declared_order.iter().any(|d| d == c))
                .collect();
            if !undeclared.is_empty() {
                out.push(Diag {
                    file: f.path.clone(),
                    line,
                    col,
                    rule: "lock-order",
                    severity: Severity::Error,
                    msg: format!(
                        "nested acquisition `{}` -> `{}`, but `{}` is missing from lockdep::DECLARED_ORDER",
                        h.class,
                        class.ident,
                        undeclared.join("`, `")
                    ),
                    suggestion: Some(
                        "add the class to DECLARED_ORDER so the hierarchy stays total".into(),
                    ),
                });
                continue;
            }
            if h.rank != UNRANKED && class.rank != UNRANKED && h.rank >= class.rank {
                out.push(Diag {
                    file: f.path.clone(),
                    line,
                    col,
                    rule: "lock-order",
                    severity: Severity::Error,
                    msg: format!(
                        "acquiring `{}` (rank {}) while holding `{}` (rank {}, guard `{}`) contradicts lockdep::DECLARED_ORDER",
                        class.ident, class.rank, h.class, h.rank, h.guard
                    ),
                    suggestion: Some(format!(
                        "acquire `{}` before `{}`, or drop `{}` first",
                        class.ident, h.class, h.guard
                    )),
                });
            }
        }

        // `let g = ...` / `let mut g = ...` binds the guard for the block —
        // but only when the acquire call ends the statement. In
        // `let tx = inner.done_tx.lock().clone();` the guard is a
        // temporary dropped at the `;`; the binding holds the clone.
        if !t.get(i + 5).is_some_and(|x| x.is_punct(';')) {
            continue;
        }
        let mut k = i;
        while k >= 2 && t[k - 1].is_punct('.') && t[k - 2].kind == crate::lexer::Kind::Ident {
            k -= 2;
        }
        let is_let_binding = k >= 3
            && t[k - 1].is_punct('=')
            && t[k - 2].kind == crate::lexer::Kind::Ident
            && (t[k - 3].is_ident("let")
                || (k >= 4 && t[k - 3].is_ident("mut") && t[k - 4].is_ident("let")));
        let bound = is_let_binding.then(|| t[k - 2].text.clone());
        if let Some(guard) = bound {
            // Shadowing: a rebind of the same name drops the old guard.
            held.retain(|h| h.guard != guard);
            held.push(Held {
                guard,
                class: class.ident.clone(),
                rank: class.rank,
                depth,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::source::SourceFile;

    /// Minimal lockdep + user files; returns diagnostics for `user.rs`.
    fn run(user_src: &str) -> Vec<Diag> {
        let lockdep = r#"
pub mod classes {
    use super::LockClass;
    pub static LOW: LockClass = LockClass { name: "t.low", rank: 10, no_block_while_held: true };
    pub static HIGH: LockClass = LockClass { name: "t.high", rank: 20, no_block_while_held: true };
    pub static GHOST: LockClass = LockClass { name: "t.ghost", rank: 30, no_block_while_held: true };
}
pub static DECLARED_ORDER: &[&LockClass] = &[&classes::LOW, &classes::HIGH];
"#;
        let files = vec![
            SourceFile::parse(model::LOCKDEP_PATH.into(), lockdep.into()),
            SourceFile::parse("crates/core/src/user.rs".into(), user_src.into()),
        ];
        let model = model::build(&files);
        let ws = crate::Workspace { files, model };
        let mut out = Vec::new();
        check(&ws, &ws.files[1], &mut out);
        out
    }

    const CTORS: &str =
        "struct S { lo: TrackedMutex<u32>, hi: TrackedMutex<u32>, gh: TrackedMutex<u32> }\n\
        impl S { fn new() -> Self { Self {\n\
            lo: TrackedMutex::new(&classes::LOW, 0),\n\
            hi: TrackedMutex::new(&classes::HIGH, 0),\n\
            gh: TrackedMutex::new(&classes::GHOST, 0),\n\
        } } }\n";

    #[test]
    fn in_order_nesting_is_clean() {
        let src = format!("{CTORS}fn ok(s: &S) {{ let a = s.lo.lock(); let b = s.hi.lock(); }}\n");
        assert!(run(&src).is_empty());
    }

    #[test]
    fn inversion_is_flagged_at_inner_site() {
        let src = format!(
            "{CTORS}fn bad(s: &S) {{\n    let a = s.hi.lock();\n    let b = s.lo.lock();\n}}\n"
        );
        let v = run(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0]
            .msg
            .contains("`LOW` (rank 10) while holding `HIGH` (rank 20"));
        assert_eq!(v[0].line, 9);
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let src =
            format!("{CTORS}fn twice(s: &S) {{ let a = s.lo.lock(); let b = s.lo.lock(); }}\n");
        let v = run(&src);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("recursive acquisition"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = format!(
            "{CTORS}fn ok(s: &S) {{ let a = s.hi.lock(); drop(a); let b = s.lo.lock(); }}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn block_close_releases_the_guard() {
        let src =
            format!("{CTORS}fn ok(s: &S) {{ {{ let a = s.hi.lock(); }} let b = s.lo.lock(); }}\n");
        assert!(run(&src).is_empty());
    }

    #[test]
    fn transient_guard_is_checked_but_not_held() {
        // The transient `s.hi.lock()` must not poison the rest of the fn.
        let src =
            format!("{CTORS}fn ok(s: &S) {{ s.hi.lock().checked_add(1); let b = s.lo.lock(); }}\n");
        assert!(run(&src).is_empty());
        let bad = format!(
            "{CTORS}fn bad(s: &S) {{ let a = s.hi.lock(); s.lo.lock().checked_add(1); }}\n"
        );
        assert_eq!(run(&bad).len(), 1);
    }

    #[test]
    fn let_bound_clone_of_locked_value_is_transient() {
        // The guard is a temporary; the binding holds the clone, so the
        // later acquisition is not nested.
        let src = format!(
            "{CTORS}fn ok(s: &S) {{ let tx = s.hi.lock().clone(); let b = s.lo.lock(); }}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn class_missing_from_declared_order_is_flagged() {
        let src = format!("{CTORS}fn bad(s: &S) {{ let a = s.hi.lock(); let b = s.gh.lock(); }}\n");
        let v = run(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0]
            .msg
            .contains("`GHOST` is missing from lockdep::DECLARED_ORDER"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!(
            "{CTORS}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t(s: &S) {{ let a = s.hi.lock(); let b = s.lo.lock(); }}\n}}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn unresolvable_fields_are_skipped() {
        let src = "fn f(m: &M) { let a = m.mystery.lock(); let b = m.other.lock(); }\n";
        assert!(run(src).is_empty());
    }
}
