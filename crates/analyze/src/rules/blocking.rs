//! `hot-path-blocking`: sleeps, unbounded channel receives, and direct
//! file I/O inside the OSD op path (`crates/core/src/osd`).
//!
//! The op path runs on the worker threads that drain PG pending queues;
//! a blocked worker stalls every PG hashed onto it, which shows up as
//! tail latency long before it shows up as a hang. Blocking belongs in
//! the dedicated worker loops that exist for it:
//!
//! - `Osd::spawn` — ticker/timer closures (rep timer sleep, reader
//!   worker recv) are set up here by design;
//! - `completion_worker_loop` — the journal-completion drain loop
//!   blocks on its channel, that is its job.
//!
//! Anything else needs a `// blocking-ok:` comment on or above the line
//! saying why the wait is bounded or off the op path.

use crate::source::SourceFile;
use crate::{Diag, Severity};

/// The op path the rule polices.
const SCOPE: &str = "crates/core/src/osd";

/// Functions (by name, within [`SCOPE`]) whose bodies may block: the
/// worker/ticker entry points.
const SANCTIONED_FNS: &[&str] = &["spawn", "completion_worker_loop"];

/// Comment marker that waives a specific line.
const WAIVER: &str = "blocking-ok:";

pub fn check(f: &SourceFile, out: &mut Vec<Diag>) {
    if !f.path.starts_with(SCOPE) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        if f.is_test(i) {
            continue;
        }
        let found: Option<(&'static str, &'static str)> =
            // thread::sleep(..) — std sleep in the op path.
            if t[i].is_ident("sleep")
                && i >= 3
                && t[i - 1].is_punct(':')
                && t[i - 2].is_punct(':')
                && t[i - 3].is_ident("thread")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                Some(("thread::sleep", "use a timer wheel or an event, not a stalled worker"))
            }
            // .recv() with no timeout — unbounded channel wait.
            else if t[i].is_ident("recv")
                && i >= 1
                && t[i - 1].is_punct('.')
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && t.get(i + 2).is_some_and(|x| x.is_punct(')'))
            {
                Some(("unbounded recv()", "use recv_timeout / try_recv, or move the wait into a worker loop"))
            }
            // Direct std::fs access — storage I/O must go through the
            // device/filestore layers where faults and metrics attach.
            else if t[i].is_ident("fs")
                && i >= 3
                && t[i - 1].is_punct(':')
                && t[i - 2].is_punct(':')
                && t[i - 3].is_ident("std")
            {
                Some(("std::fs call", "go through the filestore/device layer"))
            }
            // File::open / File::create / OpenOptions::new
            else if (t[i].is_ident("File") || t[i].is_ident("OpenOptions"))
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| {
                    x.is_ident("open") || x.is_ident("create") || x.is_ident("new")
                })
                && t.get(i + 4).is_some_and(|x| x.is_punct('('))
            {
                Some(("blocking file open", "go through the filestore/device layer"))
            } else {
                None
            };
        let Some((what, fix)) = found else { continue };
        if f.enclosing_fn(i)
            .is_some_and(|fun| SANCTIONED_FNS.contains(&fun.name.as_str()))
        {
            continue;
        }
        if f.line_justified(t[i].line, WAIVER) {
            continue;
        }
        out.push(Diag {
            file: f.path.clone(),
            line: t[i].line,
            col: t[i].col,
            rule: "hot-path-blocking",
            severity: Severity::Error,
            msg: format!("{what} in the OSD op path"),
            suggestion: Some(format!(
                "{fix}; or waive with a `// {WAIVER}` comment explaining why the wait is bounded"
            )),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Diag> {
        let f = SourceFile::parse(path.into(), src.into());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn sleep_in_op_path_is_flagged() {
        let src = "fn handle_op(&self) {\n    std::thread::sleep(Duration::from_millis(1));\n}\n";
        let v = run("crates/core/src/osd/mod.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-path-blocking");
        assert!(v[0].msg.contains("thread::sleep"));
    }

    #[test]
    fn sleep_in_sanctioned_fns_is_clean() {
        let src = "impl Osd {\n    pub fn spawn(&self) {\n        std::thread::sleep(t);\n        let m = self.rx.recv();\n    }\n}\nfn completion_worker_loop(rx: &Receiver<u32>) {\n    while let Ok(x) = rx.recv() {}\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn unbounded_recv_is_flagged_but_timeout_variants_are_clean() {
        let src = "fn wait(&self) {\n    let a = self.rx.recv();\n    let b = self.rx.recv_timeout(d);\n    let c = self.rx.try_recv();\n}\n";
        let v = run("crates/core/src/osd/pg.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("recv"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn direct_file_io_is_flagged() {
        let src = "fn bad(&self) {\n    let f = File::open(p);\n    let m = std::fs::metadata(p);\n    let o = OpenOptions::new();\n}\n";
        assert_eq!(run("crates/core/src/osd/mod.rs", src).len(), 3);
    }

    #[test]
    fn waiver_comment_silences_the_line() {
        let src = "fn backoff(&self) {\n    // blocking-ok: bounded 1ms backoff on journal-full, measured\n    std::thread::sleep(Duration::from_millis(1));\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn outside_scope_and_tests_are_exempt() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert!(run("crates/core/src/client/rados.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::sleep(d); let _ = rx.recv(); }\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", test_src).is_empty());
    }
}
