//! `qos-tag`: untagged op-queue submissions in the OSD (`crates/core/src/osd`).
//!
//! Client ops must enter the op queue through `queue_client(&qos, ..)` so
//! the per-volume QoS scheduler sees every tagged request. The bare
//! `queue_pg(..)` path bypasses the scheduler entirely — a client op
//! routed through it silently escapes its volume's min/max/burst contract
//! and is billed to nobody, which is exactly the kind of leak that shows
//! up as "QoS works except under X" months later.
//!
//! Internal traffic (replication sub-ops, acks, recovery pushes, peering)
//! is *supposed* to bypass the scheduler; each such call site carries a
//! `// qos-ok:` comment saying why it is internal.

use crate::source::SourceFile;
use crate::{Diag, Severity};

/// The OSD sources the rule polices.
const SCOPES: &[&str] = &["crates/core/src/osd"];

/// Comment marker that waives a specific line.
const WAIVER: &str = "qos-ok:";

pub fn check(f: &SourceFile, out: &mut Vec<Diag>) {
    if !SCOPES.iter().any(|s| f.path.starts_with(s)) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 0..t.len() {
        if f.is_test(i) {
            continue;
        }
        // `.queue_pg(` — a call site; `fn queue_pg` (the definition) has
        // no leading dot and stays exempt.
        let untagged_call = i >= 1
            && t[i].is_ident("queue_pg")
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('('));
        if !untagged_call {
            continue;
        }
        if f.line_justified(t[i].line, WAIVER) {
            continue;
        }
        out.push(Diag {
            file: f.path.clone(),
            line: t[i].line,
            col: t[i].col,
            rule: "qos-tag",
            severity: Severity::Error,
            msg: "op queued without a QoS tag (`queue_pg(..)` bypasses the per-volume scheduler)"
                .into(),
            suggestion: Some(format!(
                "route client ops through `queue_client(&op.qos, ..)` so the \
                 volume's min/max/burst contract applies; if this is internal \
                 traffic (replication, recovery, peering), waive with a \
                 `// {WAIVER}` comment saying so"
            )),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Diag> {
        let f = SourceFile::parse(path.into(), src.into());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn untagged_queue_is_flagged() {
        let src = "fn handle(&self) {\n    self.queue_pg(pg, work);\n}\n";
        let v = run("crates/core/src/osd/mod.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "qos-tag");
        assert_eq!(v[0].severity, Severity::Error);
    }

    #[test]
    fn tagged_path_and_definition_pass() {
        let src = "fn queue_pg(&self, pg: Arc<Pg>, work: PgWork) {\n    todo!()\n}\nfn handle(&self, op: &ClientOp) {\n    self.queue_client(&op.qos, pg, work);\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn waiver_comment_silences_the_line() {
        let src = "fn handle_repop(&self) {\n    // qos-ok: replica-side sub-op — internal traffic is never shaped.\n    self.queue_pg(pg, work);\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", src).is_empty());
    }

    #[test]
    fn other_scopes_and_tests_are_exempt() {
        let src = "fn f(&self) { self.queue_pg(pg, work); }\n";
        assert!(run("crates/core/src/pg.rs", src).is_empty());
        assert!(run("crates/journal/src/lib.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { osd.queue_pg(pg, work); }\n}\n";
        assert!(run("crates/core/src/osd/mod.rs", test_src).is_empty());
    }
}
