//! A lightweight Rust tokenizer with line:col spans.
//!
//! Just enough lexing for static analysis: identifiers, numbers, string
//! and char literals (cooked, raw, byte), lifetimes, single-char
//! punctuation, and comments (line and nested block). No keyword table,
//! no multi-char operators — rules match token *sequences* instead.
//!
//! The payoff over the old line-grep linter: commentary and string
//! literals can never trigger (or mask) a rule, and every diagnostic
//! carries an exact `line:col` anchor.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
}

/// One token with its source anchor (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: Kind,
    /// Raw source text of the token (quotes included for literals).
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == Kind::Ident && self.text == word
    }

    /// True if this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// For [`Kind::Str`] tokens: the literal's contents with the quotes
    /// and any `r#`/`b` prefix stripped. Escapes are *not* processed —
    /// site names and rule patterns never contain them.
    pub fn str_value(&self) -> &str {
        let t = self.text.as_str();
        let t = t.strip_prefix('b').unwrap_or(t);
        let t = t.strip_prefix('r').unwrap_or(t);
        let t = t.trim_matches('#');
        t.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(t)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }
}

/// Tokenize `src`. Never fails: unterminated literals simply run to the
/// end of input (the analysis is best-effort over code rustc may reject).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while cur.pos < cur.src.len() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let b = cur.peek(0);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == b'/' => {
                while cur.pos < cur.src.len() && cur.peek(0) != b'\n' {
                    cur.bump();
                }
                Kind::LineComment
            }
            b'/' if cur.peek(1) == b'*' => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while cur.pos < cur.src.len() && depth > 0 {
                    if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    } else {
                        cur.bump();
                    }
                }
                Kind::BlockComment
            }
            b'"' => {
                lex_cooked_string(&mut cur);
                Kind::Str
            }
            b'r' | b'b' if starts_string_prefix(&cur) => {
                lex_prefixed_string(&mut cur);
                Kind::Str
            }
            b'\'' => {
                if is_lifetime(&cur) {
                    cur.bump(); // '
                    while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
                        cur.bump();
                    }
                    Kind::Lifetime
                } else {
                    cur.bump(); // opening '
                    lex_char_body(&mut cur);
                    Kind::Char
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
                    cur.bump();
                }
                Kind::Ident
            }
            b'0'..=b'9' => {
                lex_number(&mut cur);
                Kind::Num
            }
            _ => {
                cur.bump();
                Kind::Punct
            }
        };
        out.push(Tok {
            kind,
            text: src[start..cur.pos].to_string(),
            line,
            col,
        });
    }
    out
}

/// `r"`, `r#`, `b"`, `b'`, `br"`, `br#` begin a literal rather than an
/// identifier. `r#ident` (raw identifier) does not.
fn starts_string_prefix(cur: &Cursor<'_>) -> bool {
    match (cur.peek(0), cur.peek(1), cur.peek(2)) {
        (b'r', b'"', _) => true,
        (b'r', b'#', n) => n == b'"' || n == b'#', // r#"…"# or r##"…"##
        (b'b', b'"', _) | (b'b', b'\'', _) => true,
        (b'b', b'r', b'"') | (b'b', b'r', b'#') => true,
        _ => false,
    }
}

/// A `'` starts a lifetime when followed by an identifier char that is
/// not itself a closing `'` one char later (`'a'` is a char literal,
/// `'a` a lifetime; `'\n'` is always a char).
fn is_lifetime(cur: &Cursor<'_>) -> bool {
    let c1 = cur.peek(1);
    (c1.is_ascii_alphabetic() || c1 == b'_') && cur.peek(2) != b'\''
}

fn lex_cooked_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening "
    while cur.pos < cur.src.len() {
        match cur.bump() {
            b'\\' if cur.pos < cur.src.len() => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Literal starting with `r`/`b`/`br` prefix: raw strings count `#`s,
/// byte strings/chars reuse the cooked scanners.
fn lex_prefixed_string(cur: &mut Cursor<'_>) {
    if cur.peek(0) == b'b' {
        cur.bump();
    }
    if cur.peek(0) == b'\'' {
        cur.bump();
        lex_char_body(cur);
        return;
    }
    if cur.peek(0) != b'r' {
        lex_cooked_string(cur);
        return;
    }
    cur.bump(); // r
    let mut hashes = 0usize;
    while cur.peek(0) == b'#' {
        cur.bump();
        hashes += 1;
    }
    if cur.peek(0) == b'"' {
        cur.bump();
    }
    while cur.pos < cur.src.len() {
        if cur.bump() == b'"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek(0) == b'#' {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

fn lex_char_body(cur: &mut Cursor<'_>) {
    // Called after the opening quote; consumes through the closing one.
    while cur.pos < cur.src.len() {
        match cur.bump() {
            b'\\' if cur.pos < cur.src.len() => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
        cur.bump();
    }
    // Float part: `.` only when followed by a digit (so `0..5` stays a
    // range and `1.max(2)` a method call).
    if cur.peek(0) == b'.' && cur.peek(1).is_ascii_digit() {
        cur.bump();
        while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_spans() {
        let toks = lex("fn f() {\n    x.lock();\n}\n");
        assert!(toks[0].is_ident("fn"));
        let lock = toks.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!((lock.line, lock.col), (2, 7));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = kinds("a // b.lock()\n/* c /* nested */ d */ e");
        assert_eq!(toks[0], (Kind::Ident, "a".into()));
        assert_eq!(toks[1].0, Kind::LineComment);
        assert_eq!(toks[2].0, Kind::BlockComment);
        assert_eq!(toks[3], (Kind::Ident, "e".into()));
    }

    #[test]
    fn string_flavors_and_values() {
        let toks = lex(r####"let s = "a.b"; let r = r#"x "q" y"#; let b = b"z";"####);
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[0].str_value(), "a.b");
        assert_eq!(strs[1].str_value(), r#"x "q" y"#);
        assert_eq!(strs[2].str_value(), "z");
    }

    #[test]
    fn string_containing_comment_marker_stays_one_token() {
        let toks = kinds(r#"let s = "see // not a comment"; x"#);
        assert!(toks.iter().all(|(k, _)| *k != Kind::LineComment));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && t == "x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifes = toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == Kind::Char).count();
        assert_eq!((lifes, chars), (2, 2));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..15 { let f = 1.5; let h = 0xFF_u32; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "15", "1.5", "0xFF_u32"]);
    }
}
