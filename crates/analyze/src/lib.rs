//! Cross-file static analysis for the afcstore workspace.
//!
//! This crate is the engine behind `cargo xtask analyze` (and its
//! deprecated alias `cargo xtask lint`). It replaces the original
//! line-grep linter with a lightweight Rust tokenizer ([`lexer`]) and an
//! item/block scanner ([`source`]) producing span-accurate diagnostics
//! (`file:line:col`, rule id, severity, suggestion), machine-readable
//! `--json` output, and a shrink-only baseline file
//! (`analyze-baseline.txt`, generalizing the old `lint-allow.txt`
//! ratchet).
//!
//! Rule catalog (see [`rules`]):
//!
//! | rule id               | checks                                                    |
//! |-----------------------|-----------------------------------------------------------|
//! | `no-std-sync`         | `std::sync` lock primitives outside lockdep               |
//! | `no-unwrap-on-sync`   | unwrap/expect on lock/channel results in hot-path crates  |
//! | `no-println-in-lib`   | `println!`/`eprintln!` in library code                    |
//! | `pg-state-confinement`| `Pg::state` locked outside the pending-queue entry points |
//! | `no-discarded-io`     | `let _ =` on fallible I/O results in storage crates       |
//! | `lock-order`          | nested Tracked* acquisitions contradicting `DECLARED_ORDER` |
//! | `site-names`          | fault/metric site naming, unarmed fault sites, dead metrics |
//! | `atomic-ordering`     | unjustified `SeqCst`, unpaired Acquire/Release            |
//! | `hot-path-blocking`   | sleeps / blocking recv / file I/O in the OSD op path      |
//! | `hot-path-copy`       | deep copies of op payload buffers in the write hot path   |
//!
//! The whole pass is plain-text + tokenizer work: no rustc plumbing, no
//! network, and it finishes in well under a second on this workspace.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod source;

use std::fmt;
use std::path::Path;

/// Diagnostic severity. Only `Error` fails the pass; `Warn` is advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One finding at one source location.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line; 0 for file-level findings.
    pub line: u32,
    /// 1-based column; 0 when no finer anchor exists.
    pub col: u32,
    /// Rule slug.
    pub rule: &'static str,
    pub severity: Severity,
    /// Human explanation of the defect.
    pub msg: String,
    /// Actionable fix hint, when one exists.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.file,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.msg
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// Everything the rules need: scanned files plus the cross-file model.
pub struct Workspace {
    pub files: Vec<source::SourceFile>,
    pub model: model::Model,
}

/// Result of one analysis pass, after baseline application.
pub struct Report {
    /// Surviving diagnostics, sorted by (file, line, col, rule).
    pub diags: Vec<Diag>,
    pub files_scanned: usize,
    /// Diagnostics suppressed by the baseline budgets.
    pub suppressed: usize,
}

impl Report {
    /// True when nothing error-level survived the baseline.
    pub fn is_clean(&self) -> bool {
        self.diags.iter().all(|d| d.severity != Severity::Error)
    }
}

/// Run the full pass over the workspace at `root`: scan, build the
/// model, run every rule, then apply the shrink-only baseline.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let files = source::collect(root)?;
    let files_scanned = files.len();
    let model = model::build(&files);
    let ws = Workspace { files, model };
    let mut diags = rules::run_all(&ws);
    let base = baseline::load(root);
    let suppressed = baseline::apply(&mut diags, &base);
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report {
        diags,
        files_scanned,
        suppressed,
    })
}

/// Render a report as the stable `afc-analyze/1` JSON schema (hand
/// rolled — this crate is dependency-free by design).
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"schema\": \"afc-analyze/1\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"clean\": {},\n",
        report.files_scanned,
        report.suppressed,
        report.is_clean()
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"severity\": {}, \"msg\": {}",
            json_str(&d.file),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(d.severity.as_str()),
            json_str(&d.msg)
        ));
        if let Some(s) = &d.suggestion {
            out.push_str(&format!(", \"suggestion\": {}", json_str(s)));
        }
        out.push('}');
    }
    if !report.diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let report = Report {
            diags: vec![Diag {
                file: "crates/x.rs".into(),
                line: 3,
                col: 7,
                rule: "lock-order",
                severity: Severity::Error,
                msg: "say \"hi\"".into(),
                suggestion: Some("fix\nit".into()),
            }],
            files_scanned: 2,
            suppressed: 1,
        };
        let j = to_json(&report);
        assert!(j.contains("\"schema\": \"afc-analyze/1\""));
        assert!(j.contains("\"msg\": \"say \\\"hi\\\"\""));
        assert!(j.contains("\"suggestion\": \"fix\\nit\""));
        assert!(j.contains("\"clean\": false"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Report {
            diags: Vec::new(),
            files_scanned: 0,
            suppressed: 0,
        };
        assert!(report.is_clean());
        assert!(to_json(&report).contains("\"diagnostics\": []"));
    }
}
