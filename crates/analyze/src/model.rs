//! The cross-file workspace model the semantic rules check against.
//!
//! Built in one pass over every scanned file *before* rules run:
//!
//! - the declared lock hierarchy, parsed out of
//!   `crates/common/src/lockdep.rs` (`LockClass` statics + the
//!   `DECLARED_ORDER` listing) so the analysis can never drift from the
//!   runtime lockdep's source of truth;
//! - a field → lock-class map resolved from `TrackedMutex::new(&classes::X, …)`
//!   / `TrackedRwLock::new(&classes::X, …)` constructor calls, kept
//!   per-file with a global unambiguous fallback;
//! - every atomic operation carrying an explicit `Ordering::…` argument,
//!   keyed by the receiver field name;
//! - metric-typed struct fields, where they are registered and where
//!   they are recorded;
//! - fault/metric site-name literals: attach templates, armed
//!   `FaultSpec::new` sites, and registered metric names.

use crate::lexer::{Kind, Tok};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Path of the runtime lockdep declarations the model is parsed from.
pub const LOCKDEP_PATH: &str = "crates/common/src/lockdep.rs";

/// Rank value that opts a class out of rank checking (mirrors
/// `afc_common::lockdep::UNRANKED`).
pub const UNRANKED: u32 = 0;

/// One `LockClass` static parsed from the lockdep module.
#[derive(Debug, Clone)]
pub struct LockClassInfo {
    /// The static's identifier (`PG_STATE`).
    pub ident: String,
    /// The runtime label (`"pg.state"`).
    pub site: String,
    /// Declared rank; [`UNRANKED`] is graph-only.
    pub rank: u32,
}

/// One atomic operation with an explicit memory ordering.
#[derive(Debug)]
pub struct AtomicUse {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Receiver field/variable name (`shutdown` in `self.shutdown.load(…)`).
    pub field: String,
    pub kind: AtomicKind,
    /// Every `Ordering::X` ident appearing in the call's arguments.
    pub orderings: Vec<String>,
    /// A `// ordering:` justification comment is adjacent.
    pub justified: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    Load,
    Store,
    /// swap / fetch_* / compare_exchange*: acts as both load and store.
    Rmw,
}

/// A site-name string literal and where it appeared.
#[derive(Debug, Clone)]
pub struct SiteLit {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// The literal text, possibly a `format!` template with `{…}` holes.
    pub template: String,
    /// The literal sits in test-only code.
    pub in_test: bool,
}

#[derive(Debug, Default)]
pub struct Model {
    /// Lock classes by ident.
    pub classes: BTreeMap<String, LockClassInfo>,
    /// Class idents in `DECLARED_ORDER` listing order.
    pub declared_order: Vec<String>,
    /// (file, field) → class ident, from Tracked* constructors.
    pub field_class: BTreeMap<(String, String), String>,
    /// field → class ident when unambiguous workspace-wide, else `None`.
    pub field_class_global: BTreeMap<String, Option<String>>,
    /// Every explicit-ordering atomic op in production code.
    pub atomics: Vec<AtomicUse>,
    /// Metric-typed struct field names declared anywhere.
    pub metric_fields: BTreeSet<String>,
    /// Metric field name → first registration site.
    pub metric_registered: BTreeMap<String, (String, u32, u32)>,
    /// Field/variable names a record method is called on anywhere.
    pub metric_recorded: BTreeSet<String>,
    /// Fault-site templates from `attach(…)` / `attach_faults(…)` calls.
    pub fault_templates: Vec<SiteLit>,
    /// Sites armed via `FaultSpec::new("…", …)`.
    pub armed_sites: Vec<SiteLit>,
    /// Metric names passed to registry registration calls.
    pub metric_names: Vec<SiteLit>,
}

/// Atomic methods that take `Ordering` arguments, by kind.
const ATOMIC_LOADS: &[&str] = &["load"];
const ATOMIC_STORES: &[&str] = &["store"];
const ATOMIC_RMWS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Crates whose production atomics are audited (the hot path).
pub const ATOMIC_SCOPES: &[&str] = &[
    "crates/core/src",
    "crates/journal/src",
    "crates/filestore/src",
    "crates/device/src",
    "crates/common/src",
    "crates/messenger/src",
    "crates/kvstore/src",
    "crates/logging/src",
];

/// Struct-field types treated as metric handles.
const METRIC_TYPES: &[&str] = &["Counter", "Gauge", "Histogram", "MetricCounter"];

/// Methods that record into a metric handle.
const RECORD_METHODS: &[&str] = &["inc", "add", "sub", "set", "observe", "observe_us"];

/// Registry calls whose string argument is a metric site name.
const METRIC_REGISTER_CALLS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "register_counter",
    "register_gauge",
    "register_histogram",
];

pub fn build(files: &[SourceFile]) -> Model {
    let mut m = Model::default();
    for f in files {
        if f.path == LOCKDEP_PATH || f.path.ends_with("/common/src/lockdep.rs") {
            parse_lockdep(f, &mut m);
        }
    }
    for f in files {
        collect_field_classes(f, &mut m);
        collect_atomics(f, &mut m);
        collect_metric_fields(f, &mut m);
        collect_sites(f, &mut m);
    }
    // Global fallback map: a field name maps workspace-wide only when
    // every constructor agrees on its class.
    for ((_, field), class) in &m.field_class {
        m.field_class_global
            .entry(field.clone())
            .and_modify(|c| {
                if c.as_deref() != Some(class) {
                    *c = None;
                }
            })
            .or_insert_with(|| Some(class.clone()));
    }
    m
}

impl Model {
    /// Resolve an acquisition receiver field to a lock class: the file's
    /// own constructors win, then the global unambiguous map.
    pub fn resolve_class(&self, file: &str, field: &str) -> Option<&LockClassInfo> {
        let ident = self
            .field_class
            .get(&(file.to_string(), field.to_string()))
            .or_else(|| self.field_class_global.get(field).and_then(|c| c.as_ref()))?;
        self.classes.get(ident)
    }
}

/// Parse `pub static IDENT: LockClass = LockClass { name: "…", rank: N, … }`
/// statics and the `DECLARED_ORDER` slice from the lockdep source.
fn parse_lockdep(f: &SourceFile, m: &mut Model) {
    let t = &f.toks;
    for i in 0..t.len() {
        // IDENT : LockClass = LockClass { … name … "site" … rank … N … }
        if t[i].is_ident("LockClass")
            && i >= 2
            && t[i - 1].is_punct(':')
            && t[i - 2].kind == Kind::Ident
            && t.get(i + 1).is_some_and(|x| x.is_punct('='))
        {
            let ident = t[i - 2].text.clone();
            let Some(open) = t[i..].iter().position(|x| x.is_punct('{')).map(|p| i + p) else {
                continue;
            };
            let close = crate::source::match_brace(t, open);
            let body = &t[open..=close];
            let mut site = None;
            let mut rank = None;
            for j in 0..body.len() {
                if body[j].is_ident("name") {
                    site = body[j + 1..]
                        .iter()
                        .find(|x| x.kind == Kind::Str)
                        .map(|x| x.str_value().to_string());
                }
                if body[j].is_ident("rank") && body.get(j + 1).is_some_and(|x| x.is_punct(':')) {
                    rank = body.get(j + 2).and_then(|x| match x.kind {
                        Kind::Num => x.text.replace('_', "").parse::<u32>().ok(),
                        // `rank: UNRANKED`
                        Kind::Ident if x.text == "UNRANKED" => Some(UNRANKED),
                        _ => None,
                    });
                }
            }
            if let (Some(site), Some(rank)) = (site, rank) {
                m.classes
                    .insert(ident.clone(), LockClassInfo { ident, site, rank });
            }
        }
        // DECLARED_ORDER … = &[ &classes::A, &classes::B, … ] — find the
        // `[` after the `=` (the type annotation also contains brackets).
        if t[i].is_ident("DECLARED_ORDER") {
            let Some(eq) = t[i..].iter().position(|x| x.is_punct('=')).map(|p| i + p) else {
                continue;
            };
            let Some(open) = t[eq..].iter().position(|x| x.is_punct('[')).map(|p| eq + p) else {
                continue;
            };
            let mut j = open;
            while j < t.len() && !t[j].is_punct(']') {
                if t[j].is_ident("classes")
                    && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(j + 2).is_some_and(|x| x.is_punct(':'))
                {
                    if let Some(c) = t.get(j + 3) {
                        if c.kind == Kind::Ident {
                            m.declared_order.push(c.text.clone());
                        }
                    }
                    j += 4;
                    continue;
                }
                j += 1;
            }
        }
    }
}

/// `field: TrackedMutex::new(&classes::CLASS, …)` (wrappers like
/// `Arc::new(…)` between the field and the constructor are skipped).
fn collect_field_classes(f: &SourceFile, m: &mut Model) {
    let t = &f.toks;
    for i in 0..t.len() {
        if !(t[i].is_ident("TrackedMutex") || t[i].is_ident("TrackedRwLock")) {
            continue;
        }
        // …::new(&classes::CLASS
        if t.len() <= i + 9 {
            continue;
        }
        let shape = t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("new")
            && t[i + 4].is_punct('(')
            && t[i + 5].is_punct('&')
            && t[i + 6].is_ident("classes")
            && t[i + 7].is_punct(':')
            && t[i + 8].is_punct(':')
            && t[i + 9].kind == Kind::Ident;
        if !shape {
            continue;
        }
        let class = t[i + 9].text.clone();
        // Walk back over constructor wrappers to the `field:` anchor. A
        // single `:` (not part of `::`) preceded by an ident is the
        // struct-literal field.
        let mut j = i;
        let mut field = None;
        while j >= 2 && i - j < 12 {
            if t[j - 1].is_punct(':')
                && !t[j].is_punct(':')
                && !t[j - 2].is_punct(':')
                && t[j - 2].kind == Kind::Ident
            {
                field = Some(t[j - 2].text.clone());
                break;
            }
            let wrapper = t[j - 1].kind == Kind::Ident
                || t[j - 1].is_punct('(')
                || t[j - 1].is_punct(':')
                || t[j - 1].is_punct('&');
            if !wrapper {
                break;
            }
            j -= 1;
        }
        if let Some(field) = field {
            m.field_class.insert((f.path.clone(), field), class.clone());
        }
    }
}

fn atomic_kind(name: &str) -> Option<AtomicKind> {
    if ATOMIC_LOADS.contains(&name) {
        Some(AtomicKind::Load)
    } else if ATOMIC_STORES.contains(&name) {
        Some(AtomicKind::Store)
    } else if ATOMIC_RMWS.contains(&name) {
        Some(AtomicKind::Rmw)
    } else {
        None
    }
}

/// `recv.field.load(Ordering::X)`-shaped calls in scoped production code.
fn collect_atomics(f: &SourceFile, m: &mut Model) {
    if !ATOMIC_SCOPES.iter().any(|s| f.path.starts_with(s)) || f.non_prod {
        return;
    }
    let t = &f.toks;
    for i in 2..t.len() {
        let Some(kind) = atomic_kind(&t[i].text).filter(|_| t[i].kind == Kind::Ident) else {
            continue;
        };
        if !(t[i - 1].is_punct('.')
            && t[i - 2].kind == Kind::Ident
            && t.get(i + 1).is_some_and(|x| x.is_punct('(')))
        {
            continue;
        }
        if f.is_test(i) {
            continue;
        }
        // Scan the argument list for Ordering::X idents.
        let close = match_paren(t, i + 1);
        let mut orderings = Vec::new();
        let mut j = i + 2;
        while j + 3 <= close {
            if t[j].is_ident("Ordering") && t[j + 1].is_punct(':') && t[j + 2].is_punct(':') {
                orderings.push(t[j + 3].text.clone());
                j += 4;
                continue;
            }
            j += 1;
        }
        if orderings.is_empty() {
            // Not an atomic op (e.g. `FileStore::store(…)`, channel send).
            continue;
        }
        m.atomics.push(AtomicUse {
            file: f.path.clone(),
            line: t[i].line,
            col: t[i].col,
            field: t[i - 2].text.clone(),
            kind,
            orderings,
            justified: f.line_justified(t[i].line, "ordering:"),
        });
    }
}

/// Index of the `)` matching the `(` at `open`.
pub fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Metric-handle struct fields: declaration, registration, recording.
fn collect_metric_fields(f: &SourceFile, m: &mut Model) {
    let t = &f.toks;
    for i in 0..t.len() {
        // `field: Counter,` / `pub field: Gauge,` struct declarations —
        // require a bare type path ending the field (next token `,` or
        // `}`), which excludes `&Counter` params and generic uses.
        if t[i].kind == Kind::Ident
            && METRIC_TYPES.contains(&t[i].text.as_str())
            && i >= 2
            && t[i - 1].is_punct(':')
            && !t[i - 2].is_punct(':')
            && t[i - 2].kind == Kind::Ident
            && t.get(i + 1)
                .is_none_or(|x| x.is_punct(',') || x.is_punct('}'))
        {
            m.metric_fields.insert(t[i - 2].text.clone());
        }
        // `x.inc(` / `x.observe(` — recording through a handle.
        if t[i].kind == Kind::Ident
            && RECORD_METHODS.contains(&t[i].text.as_str())
            && i >= 2
            && t[i - 1].is_punct('.')
            && t[i - 2].kind == Kind::Ident
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            m.metric_recorded.insert(t[i - 2].text.clone());
        }
        // `m.register_counter(…, &self.field)` — the last ident before
        // the closing paren is the registered handle. Require the
        // method-call form (skips the registry's own `fn register_*`
        // definitions) and a field-path handle (`x.field`): bare locals
        // like the `cell` loop variable in `attach_metrics` are
        // indirection the name-join cannot follow.
        if t[i].kind == Kind::Ident
            && t[i].text.starts_with("register_")
            && METRIC_REGISTER_CALLS.contains(&t[i].text.as_str())
            && i >= 1
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            let close = match_paren(t, i + 1);
            if let Some(k) = (i + 2..close).rev().find(|&k| t[k].kind == Kind::Ident) {
                if t[k - 1].is_punct('.') {
                    m.metric_registered
                        .entry(t[k].text.clone())
                        .or_insert_with(|| (f.path.clone(), t[k].line, t[k].col));
                }
            }
        }
    }
}

/// Collect site-name literals from attach calls, `FaultSpec::new`, and
/// metric registry registration calls.
fn collect_sites(f: &SourceFile, m: &mut Model) {
    let t = &f.toks;
    for i in 0..t.len() {
        let in_test = f.is_test(i);
        // attach(…) / attach_faults(…): every string literal inside the
        // call (classify-hook closures included) is a fault-site template.
        if (t[i].is_ident("attach") || t[i].is_ident("attach_faults"))
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            let close = match_paren(t, i + 1);
            for s in t[i + 2..close].iter().filter(|x| x.kind == Kind::Str) {
                m.fault_templates.push(site_lit(f, s, in_test));
            }
        }
        // FaultSpec::new("site", …)
        if t[i].is_ident("FaultSpec")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("new"))
            && t.get(i + 4).is_some_and(|x| x.is_punct('('))
        {
            let close = match_paren(t, i + 4);
            if let Some(s) = t[i + 5..close].iter().find(|x| x.kind == Kind::Str) {
                m.armed_sites.push(site_lit(f, s, in_test));
            }
        }
        // Metric registration: the first string literal in the call.
        if t[i].kind == Kind::Ident
            && METRIC_REGISTER_CALLS.contains(&t[i].text.as_str())
            && i >= 1
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            let close = match_paren(t, i + 1);
            if let Some(s) = t[i + 2..close].iter().find(|x| x.kind == Kind::Str) {
                m.metric_names.push(site_lit(f, s, in_test));
            }
        }
    }
}

fn site_lit(f: &SourceFile, s: &Tok, in_test: bool) -> SiteLit {
    SiteLit {
        file: f.path.clone(),
        line: s.line,
        col: s.col,
        template: s.str_value().to_string(),
        in_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path.into(), src.into())
    }

    const LOCKDEP_SRC: &str = r#"
        pub static FIRST: LockClass = LockClass { name: "mini.first", rank: 10, no_block_while_held: true };
        pub static SECOND: LockClass = LockClass { name: "mini.second", rank: 20, no_block_while_held: false };
        pub static LOOSE: LockClass = LockClass { name: "mini.loose", rank: UNRANKED, no_block_while_held: false };
        pub static DECLARED_ORDER: &[&LockClass] = &[&classes::FIRST, &classes::SECOND];
    "#;

    #[test]
    fn lockdep_classes_and_order_are_parsed() {
        let f = file("crates/common/src/lockdep.rs", LOCKDEP_SRC);
        let m = build(std::slice::from_ref(&f));
        assert_eq!(m.classes.len(), 3);
        assert_eq!(m.classes["FIRST"].rank, 10);
        assert_eq!(m.classes["SECOND"].site, "mini.second");
        assert_eq!(m.classes["LOOSE"].rank, UNRANKED);
        assert_eq!(m.declared_order, vec!["FIRST", "SECOND"]);
    }

    #[test]
    fn field_class_resolves_through_wrappers() {
        let src = "fn build() { Foo {\n  state: TrackedMutex::new(&classes::FIRST, 0),\n  map: Arc::new(TrackedRwLock::new(&classes::SECOND, 0)),\n} }";
        let lockdep = file("crates/common/src/lockdep.rs", LOCKDEP_SRC);
        let f = file("crates/core/src/x.rs", src);
        let m = build(&[lockdep, f]);
        assert_eq!(
            m.resolve_class("crates/core/src/x.rs", "state")
                .unwrap()
                .ident,
            "FIRST"
        );
        assert_eq!(
            m.resolve_class("crates/core/src/x.rs", "map")
                .unwrap()
                .ident,
            "SECOND"
        );
    }

    #[test]
    fn ambiguous_global_field_is_dropped_but_per_file_wins() {
        let lockdep = file("crates/common/src/lockdep.rs", LOCKDEP_SRC);
        let a = file(
            "crates/core/src/a.rs",
            "fn f() { X { state: TrackedMutex::new(&classes::FIRST, 0) } }",
        );
        let b = file(
            "crates/journal/src/b.rs",
            "fn f() { Y { state: TrackedMutex::new(&classes::SECOND, 0) } }",
        );
        let m = build(&[lockdep, a, b]);
        assert_eq!(
            m.resolve_class("crates/core/src/a.rs", "state")
                .unwrap()
                .ident,
            "FIRST"
        );
        assert_eq!(
            m.resolve_class("crates/journal/src/b.rs", "state")
                .unwrap()
                .ident,
            "SECOND"
        );
        assert!(m.resolve_class("crates/device/src/c.rs", "state").is_none());
    }

    #[test]
    fn atomics_are_collected_with_kind_and_orderings() {
        let src = "fn f(&self) {\n  self.shutdown.store(true, Ordering::SeqCst);\n  let x = self.armed.load(Ordering::Relaxed);\n  self.n.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire).ok();\n  self.store.flush();\n}";
        let f = file("crates/core/src/x.rs", src);
        let m = build(std::slice::from_ref(&f));
        assert_eq!(m.atomics.len(), 3);
        assert_eq!(m.atomics[0].field, "shutdown");
        assert_eq!(m.atomics[0].kind, AtomicKind::Store);
        assert_eq!(m.atomics[1].orderings, vec!["Relaxed"]);
        assert_eq!(m.atomics[2].kind, AtomicKind::Rmw);
        assert_eq!(m.atomics[2].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn metric_fields_registration_and_recording() {
        let src = "struct S { writes: Counter, depth: Gauge }\nimpl S {\n  fn reg(&self, m: &Metrics) {\n    m.register_counter(\"osd0.data.writes\", &self.writes);\n    m.register_gauge(\"osd0.data.depth\", &self.depth);\n  }\n  fn hit(&self) { self.writes.inc(1); }\n}";
        let f = file("crates/device/src/x.rs", src);
        let m = build(std::slice::from_ref(&f));
        assert!(m.metric_fields.contains("writes"));
        assert!(m.metric_fields.contains("depth"));
        assert!(m.metric_registered.contains_key("writes"));
        assert!(m.metric_registered.contains_key("depth"));
        assert!(m.metric_recorded.contains("writes"));
        assert!(!m.metric_recorded.contains("depth"));
        assert_eq!(m.metric_names.len(), 2);
    }

    #[test]
    fn fault_templates_and_armed_sites() {
        let prod = file(
            "crates/core/src/cluster.rs",
            "fn wire(reg: &R) {\n  ssd.faults().attach(reg, format!(\"osd{}.data\", id));\n  net.attach_faults(reg, |m| Some(match m { A => \"net.request\", B => \"net.reply\" }));\n}",
        );
        let test = file(
            "crates/core/tests/faults.rs",
            "fn t() { reg.install(FaultSpec::new(\"osd0.data.write\", FaultKind::Torn)); }",
        );
        let m = build(&[prod, test]);
        let templates: Vec<&str> = m
            .fault_templates
            .iter()
            .map(|s| s.template.as_str())
            .collect();
        assert_eq!(templates, vec!["osd{}.data", "net.request", "net.reply"]);
        assert_eq!(m.armed_sites.len(), 1);
        assert!(m.armed_sites[0].in_test);
        assert_eq!(m.armed_sites[0].template, "osd0.data.write");
    }
}
