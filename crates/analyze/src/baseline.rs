//! The shrink-only diagnostic baseline.
//!
//! `analyze-baseline.txt` (workspace root) budgets known violations per
//! `(rule, file)` so a new rule can land without a big-bang cleanup,
//! while ratcheting: the pass fails if a budget exceeds the live count,
//! so every fix must shrink the baseline in the same change. The legacy
//! `crates/xtask/lint-allow.txt` is still honored, interpreted as
//! `no-unwrap-on-sync` budgets.
//!
//! Format, one entry per line (`#` comments):
//!
//! ```text
//! <rule-id> <workspace-relative-path> <count>
//! ```

use crate::{Diag, Severity};
use std::collections::BTreeMap;
use std::path::Path;

/// Baseline file name at the workspace root.
pub const BASELINE_PATH: &str = "analyze-baseline.txt";
/// Legacy allowlist (rule `no-unwrap-on-sync` only).
pub const LEGACY_ALLOW_PATH: &str = "crates/xtask/lint-allow.txt";

/// Parsed budgets: (rule, file) → allowed count.
#[derive(Debug, Default)]
pub struct Baseline {
    pub budgets: BTreeMap<(String, String), usize>,
}

/// Read both baseline files under `root`. Missing files mean empty.
pub fn load(root: &Path) -> Baseline {
    let mut b = Baseline::default();
    let main = std::fs::read_to_string(root.join(BASELINE_PATH)).unwrap_or_default();
    for line in main.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(rule), Some(path), Some(n)) = (it.next(), it.next(), it.next()) {
            if let Ok(n) = n.parse::<usize>() {
                b.budgets.insert((rule.to_string(), path.to_string()), n);
            }
        }
    }
    let legacy = std::fs::read_to_string(root.join(LEGACY_ALLOW_PATH)).unwrap_or_default();
    for line in legacy.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(path), Some(n)) = (it.next(), it.next()) {
            if let Ok(n) = n.parse::<usize>() {
                *b.budgets
                    .entry(("no-unwrap-on-sync".to_string(), path.to_string()))
                    .or_insert(0) += n;
            }
        }
    }
    b
}

/// Apply the baseline to `diags` in place. Returns how many diagnostics
/// the budgets suppressed. Semantics per `(rule, file)` group:
///
/// - live count ≤ budget → the group is suppressed;
/// - live count > budget → every diagnostic in the group is reported
///   (forcing the author to either fix or consciously grow the file's
///   entry);
/// - live count < budget → the entry is **stale** and reported as its
///   own failure, naming the nearest surviving violation line so the
///   count can be re-ratcheted without hunting.
pub fn apply(diags: &mut Vec<Diag>, base: &Baseline) -> usize {
    if base.budgets.is_empty() {
        return 0;
    }
    let mut counts: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
    for d in diags.iter() {
        if d.severity == Severity::Error {
            counts
                .entry((d.rule.to_string(), d.file.clone()))
                .or_default()
                .push(d.line);
        }
    }
    let before = diags.len();
    diags.retain(|d| {
        if d.severity != Severity::Error {
            return true;
        }
        let key = (d.rule.to_string(), d.file.clone());
        match (base.budgets.get(&key), counts.get(&key)) {
            (Some(budget), Some(lines)) => lines.len() > *budget,
            _ => true,
        }
    });
    let suppressed = before - diags.len();
    for ((rule, path), budget) in &base.budgets {
        let lines = counts
            .get(&(rule.clone(), path.clone()))
            .cloned()
            .unwrap_or_default();
        if lines.len() < *budget {
            let survivors = if lines.is_empty() {
                format!("no {rule} violations remain in {path}")
            } else {
                format!(
                    "nearest surviving {rule} violation{} at line{} {}",
                    if lines.len() == 1 { "" } else { "s" },
                    if lines.len() == 1 { "" } else { "s" },
                    lines
                        .iter()
                        .take(3)
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            diags.push(Diag {
                file: path.clone(),
                line: 0,
                col: 0,
                rule: "stale-baseline",
                severity: Severity::Error,
                msg: format!(
                    "baseline permits {budget} {rule} violation(s) but only {} remain: {survivors}",
                    lines.len()
                ),
                suggestion: Some(format!(
                    "shrink the `{rule} {path}` entry in {BASELINE_PATH} to {} (the baseline may only shrink)",
                    lines.len()
                )),
            });
        }
    }
    suppressed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32) -> Diag {
        Diag {
            file: file.into(),
            line,
            col: 1,
            rule,
            severity: Severity::Error,
            msg: "m".into(),
            suggestion: None,
        }
    }

    fn base(entries: &[(&str, &str, usize)]) -> Baseline {
        Baseline {
            budgets: entries
                .iter()
                .map(|(r, p, n)| ((r.to_string(), p.to_string()), *n))
                .collect(),
        }
    }

    #[test]
    fn exact_budget_suppresses() {
        let mut d = vec![diag("lock-order", "a.rs", 3), diag("lock-order", "a.rs", 9)];
        let n = apply(&mut d, &base(&[("lock-order", "a.rs", 2)]));
        assert_eq!(n, 2);
        assert!(d.is_empty());
    }

    #[test]
    fn over_budget_reports_all() {
        let mut d = vec![diag("lock-order", "a.rs", 3), diag("lock-order", "a.rs", 9)];
        apply(&mut d, &base(&[("lock-order", "a.rs", 1)]));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn stale_entry_reports_nearest_surviving_line() {
        let mut d = vec![diag("lock-order", "a.rs", 42)];
        apply(&mut d, &base(&[("lock-order", "a.rs", 5)]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "stale-baseline");
        assert!(d[0].msg.contains("line 42"), "{}", d[0].msg);
        assert!(d[0].suggestion.as_ref().unwrap().contains("to 1"));
    }

    #[test]
    fn stale_entry_for_clean_file_says_so() {
        let mut d = Vec::new();
        apply(&mut d, &base(&[("no-unwrap-on-sync", "b.rs", 2)]));
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("no no-unwrap-on-sync violations remain"));
    }

    #[test]
    fn unrelated_rules_pass_through() {
        let mut d = vec![diag("site-names", "a.rs", 1)];
        let n = apply(&mut d, &base(&[("lock-order", "a.rs", 1)]));
        assert_eq!(n, 0);
        // The site-names diag survives; the lock-order entry is stale.
        assert_eq!(d.len(), 2);
    }
}
