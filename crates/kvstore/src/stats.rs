//! Database statistics: write amplification, stalls, compaction work.

use afc_common::metrics::{Counter, Metrics};

/// Snapshot of database activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Payload bytes handed to `put`/`write_batch` by callers.
    pub user_bytes: u64,
    /// Batches committed.
    pub commits: u64,
    /// WAL bytes written to the device.
    pub wal_bytes: u64,
    /// Memtable flushes to L0.
    pub flushes: u64,
    /// Bytes written flushing memtables.
    pub flush_bytes: u64,
    /// L0→L1 compactions performed.
    pub compactions: u64,
    /// Bytes read by compaction inputs.
    pub compact_read_bytes: u64,
    /// Bytes written by compaction outputs.
    pub compact_write_bytes: u64,
    /// Writer stalls (memtable/L0 backpressure events).
    pub stalls: u64,
    /// Total time writers spent stalled, microseconds.
    pub stall_us: u64,
    /// Point lookups served.
    pub gets: u64,
    /// SSTable probes that charged a device read.
    pub table_reads: u64,
    /// Background table I/O charges that failed (injected device faults).
    /// The data itself is safe (tables are built in memory before the
    /// charge), so the worker proceeds — but loudly, not silently.
    pub table_io_errors: u64,
}

impl DbStats {
    /// Total bytes the device saw for writes (WAL + flush + compaction).
    pub fn device_write_bytes(&self) -> u64 {
        self.wal_bytes + self.flush_bytes + self.compact_write_bytes
    }

    /// Write amplification: device write bytes per user byte. The paper's
    /// §3.4 observation (4 KB blocks → ~2 GB extra per 2 GB user data) is
    /// this ratio climbing for small entries.
    pub fn write_amplification(&self) -> f64 {
        if self.user_bytes == 0 {
            return 0.0;
        }
        self.device_write_bytes() as f64 / self.user_bytes as f64
    }

    /// Extra (non-user) bytes written.
    pub fn extra_bytes(&self) -> u64 {
        self.device_write_bytes().saturating_sub(self.user_bytes)
    }
}

/// Thread-safe accumulator behind [`DbStats`]. Fields are shared metric
/// cells registrable into a cluster [`Metrics`] registry.
#[derive(Debug, Default)]
pub struct DbStatsCell {
    pub(crate) user_bytes: Counter,
    pub(crate) commits: Counter,
    pub(crate) wal_bytes: Counter,
    pub(crate) flushes: Counter,
    pub(crate) flush_bytes: Counter,
    pub(crate) compactions: Counter,
    pub(crate) compact_read_bytes: Counter,
    pub(crate) compact_write_bytes: Counter,
    pub(crate) stalls: Counter,
    pub(crate) stall_us: Counter,
    pub(crate) gets: Counter,
    pub(crate) table_reads: Counter,
    pub(crate) table_io_errors: Counter,
}

impl DbStatsCell {
    /// Snapshot current values.
    pub fn snapshot(&self) -> DbStats {
        DbStats {
            user_bytes: self.user_bytes.get(),
            commits: self.commits.get(),
            wal_bytes: self.wal_bytes.get(),
            flushes: self.flushes.get(),
            flush_bytes: self.flush_bytes.get(),
            compactions: self.compactions.get(),
            compact_read_bytes: self.compact_read_bytes.get(),
            compact_write_bytes: self.compact_write_bytes.get(),
            stalls: self.stalls.get(),
            stall_us: self.stall_us.get(),
            gets: self.gets.get(),
            table_reads: self.table_reads.get(),
            table_io_errors: self.table_io_errors.get(),
        }
    }

    /// Register every cell under `<prefix>.<field>` (e.g.
    /// `osd0.kv.wal_bytes`).
    pub fn register_into(&self, m: &Metrics, prefix: &str) {
        let fields: [(&str, &Counter); 13] = [
            ("user_bytes", &self.user_bytes),
            ("commits", &self.commits),
            ("wal_bytes", &self.wal_bytes),
            ("flushes", &self.flushes),
            ("flush_bytes", &self.flush_bytes),
            ("compactions", &self.compactions),
            ("compact_read_bytes", &self.compact_read_bytes),
            ("compact_write_bytes", &self.compact_write_bytes),
            ("stalls", &self.stalls),
            ("stall_us", &self.stall_us),
            ("gets", &self.gets),
            ("table_reads", &self.table_reads),
            ("table_io_errors", &self.table_io_errors),
        ];
        for (name, cell) in fields {
            m.register_counter(format!("{prefix}.{name}"), cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_math() {
        let s = DbStats {
            user_bytes: 100,
            wal_bytes: 120,
            flush_bytes: 100,
            compact_write_bytes: 80,
            ..Default::default()
        };
        assert_eq!(s.device_write_bytes(), 300);
        assert!((s.write_amplification() - 3.0).abs() < 1e-9);
        assert_eq!(s.extra_bytes(), 200);
    }

    #[test]
    fn zero_user_bytes_safe() {
        let s = DbStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        assert_eq!(s.extra_bytes(), 0);
    }

    #[test]
    fn cell_snapshot() {
        let c = DbStatsCell::default();
        c.user_bytes.add(5);
        c.stalls.inc();
        let s = c.snapshot();
        assert_eq!(s.user_bytes, 5);
        assert_eq!(s.stalls, 1);
    }
}
