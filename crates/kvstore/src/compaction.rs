//! Background flush and compaction worker.
//!
//! One thread per [`crate::Db`] (LevelDB-style): it drains frozen memtables
//! into L0 tables, and merges L0 pile-ups plus the current L1 into a fresh
//! L1 run. All table I/O is charged to the backing device, which is where
//! the paper's write-amplification and latency-instability observations
//! come from.

use crate::db::DbConfig;
use crate::db::{Inner, State};
use crate::memtable::MemTable;
use crate::sstable::{merge_runs, SsTable};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A unit of background work.
pub(crate) enum CompactionJob {
    /// Flush the oldest frozen memtable (WAL release mark attached).
    Flush(Arc<MemTable>, u64),
    /// Merge these L0 tables (by id) and the current L1.
    Compact(Vec<Arc<SsTable>>, Option<Arc<SsTable>>),
}

/// Choose the next job under the state lock, flushes first.
pub(crate) fn pick_job(st: &mut State, cfg: &DbConfig) -> Option<CompactionJob> {
    if let (Some(imm), Some(mark)) = (st.imms.front(), st.freeze_marks.front()) {
        return Some(CompactionJob::Flush(Arc::clone(imm), *mark));
    }
    if st.l0.len() >= cfg.l0_compact_threshold {
        return Some(CompactionJob::Compact(st.l0.clone(), st.l1.clone()));
    }
    None
}

/// The worker loop. Exits when the DB shuts down and no work remains.
pub(crate) fn run(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut st = inner.state.lock();
            loop {
                if let Some(job) = pick_job(&mut st, &inner.cfg) {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                inner.work_cv.wait(&mut st);
            }
        };
        let Some(job) = job else { return };
        match job {
            CompactionJob::Flush(imm, mark) => {
                let ops: Vec<_> = imm.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                let id = inner.table_seq.fetch_add(1, Ordering::Relaxed);
                let table = SsTable::build(id, ops);
                let bytes = table.bytes();
                // Device charge can only fail on injected faults. The table
                // is built in memory regardless, so the flush proceeds — but
                // the failure is accounted, never silently discarded.
                if inner.charge_table_write(bytes).is_err() {
                    inner.stats.table_io_errors.inc();
                }
                {
                    let mut st = inner.state.lock();
                    st.l0.push(Arc::new(table));
                    st.imms.pop_front();
                    st.freeze_marks.pop_front();
                }
                inner.stats.flushes.inc();
                inner.stats.flush_bytes.add(bytes);
                inner.stall_cv.notify_all();
                let mut wal = inner.commit.lock();
                wal.drop_through(mark);
            }
            CompactionJob::Compact(l0s, l1) => {
                let read_bytes: u64 = l0s.iter().map(|t| t.bytes()).sum::<u64>()
                    + l1.as_ref().map(|t| t.bytes()).unwrap_or(0);
                if inner.charge_table_read(read_bytes).is_err() {
                    inner.stats.table_io_errors.inc();
                }
                // Newest first: L0 back-to-front, then L1.
                let mut runs: Vec<&[_]> = l0s.iter().rev().map(|t| t.entries()).collect();
                if let Some(l1) = &l1 {
                    runs.push(l1.entries());
                }
                let merged = merge_runs(&runs, true);
                let id = inner.table_seq.fetch_add(1, Ordering::Relaxed);
                let table = SsTable::build(id, merged);
                let out_bytes = table.bytes();
                if inner.charge_table_write(out_bytes).is_err() {
                    inner.stats.table_io_errors.inc();
                }
                {
                    let mut st = inner.state.lock();
                    let taken: Vec<u64> = l0s.iter().map(|t| t.id()).collect();
                    st.l0.retain(|t| !taken.contains(&t.id()));
                    st.l1 = Some(Arc::new(table));
                }
                inner.stats.compactions.inc();
                inner.stats.compact_read_bytes.add(read_bytes);
                inner.stats.compact_write_bytes.add(out_bytes);
                inner.stall_cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::db::{Db, DbConfig, WriteOptions};
    use afc_device::{Nvram, NvramConfig};
    use bytes::Bytes;
    use std::sync::Arc;

    #[test]
    fn pick_job_prefers_flush() {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        let cfg = DbConfig {
            memtable_bytes: 256,
            l0_compact_threshold: 1,
            ..DbConfig::default()
        };
        let db = Db::open(dev, cfg).unwrap();
        // Fill enough that a freeze happens; the worker may have already
        // drained it, so just assert the API doesn't wedge.
        for i in 0..50 {
            db.put(
                Bytes::from(format!("k{i}")),
                Bytes::from(vec![0u8; 32]),
                WriteOptions::async_(),
            )
            .unwrap();
        }
        let _ = db.pick_job_for_test();
        db.flush().unwrap();
        db.wait_idle();
        assert!(db.stats().flushes >= 1);
    }
}
