//! Write-ahead log for the memtable.
//!
//! Each committed batch appends one record. **Sync** commits charge the
//! backing device immediately; **async** commits buffer and are charged in
//! larger aggregated writes (group commit), which is how LevelDB's
//! non-sync writes behave. Records are kept in memory for crash replay until
//! the covering memtable is durable in L0, after which
//! [`Wal::drop_through`] releases them.
//!
//! The size of WAL device traffic is where the baseline-vs-batched
//! difference shows up: N single-op commits cost N record headers and (when
//! sync) N device writes; one N-op batch costs a single record.

use crate::batch::BatchOp;
use afc_common::Result;
use afc_device::{BlockDev, IoReq, StreamId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-record header overhead (sequence, checksum, length framing).
pub const RECORD_HEADER: u64 = 24;

struct Record {
    ops: Vec<BatchOp>,
    durable: bool,
}

/// The write-ahead log. Not internally synchronized: [`crate::Db`]
/// serializes appends under its commit lock, matching LevelDB's single
/// log-writer design.
pub struct Wal {
    dev: Arc<dyn BlockDev>,
    cursor: u64,
    region: u64,
    records: VecDeque<Record>,
    appended_records: u64,
    dropped_records: u64,
    appended_bytes: u64,
    pending_async: u64,
}

impl Wal {
    /// Create a WAL over a device region of `region` bytes.
    pub fn new(dev: Arc<dyn BlockDev>, region: u64) -> Self {
        let region = region.min(dev.capacity()).max(4096);
        Wal {
            dev,
            cursor: 0,
            region,
            records: VecDeque::new(),
            appended_records: 0,
            dropped_records: 0,
            appended_bytes: 0,
            pending_async: 0,
        }
    }

    /// Encoded size of a batch on the log.
    pub fn encoded_size(ops: &[BatchOp]) -> u64 {
        RECORD_HEADER
            + ops
                .iter()
                .map(|(k, v)| 8 + k.len() as u64 + v.as_ref().map(|v| v.len() as u64).unwrap_or(0))
                .sum::<u64>()
    }

    fn device_write(&mut self, size: u64) -> Result<()> {
        let size = size.clamp(1, self.region);
        if self.cursor + size > self.region {
            self.cursor = 0;
        }
        self.dev.submit(IoReq::write_stream(
            self.cursor,
            size as u32,
            StreamId::KvWal,
        ))?;
        self.cursor += size;
        self.appended_bytes += size;
        Ok(())
    }

    /// Append a record and write it to the device (sync commit).
    /// Returns the bytes charged to the device.
    pub fn append_sync(&mut self, ops: &[BatchOp]) -> Result<u64> {
        let size = Self::encoded_size(ops) + self.pending_async;
        self.device_write(size)?;
        self.pending_async = 0;
        self.records.push_back(Record {
            ops: ops.to_vec(),
            durable: true,
        });
        self.appended_records += 1;
        // Earlier async records ride along on this sync write (group commit).
        for r in self.records.iter_mut() {
            r.durable = true;
        }
        Ok(size)
    }

    /// Append a record without forcing a device write (async commit).
    /// Buffered bytes are written once `group_bytes` accumulate; returns the
    /// bytes charged to the device (0 when only buffered).
    pub fn append_async(&mut self, ops: &[BatchOp], group_bytes: u64) -> Result<u64> {
        self.pending_async += Self::encoded_size(ops);
        self.records.push_back(Record {
            ops: ops.to_vec(),
            durable: false,
        });
        self.appended_records += 1;
        if self.pending_async >= group_bytes {
            let size = self.pending_async;
            self.device_write(size)?;
            self.pending_async = 0;
            for r in self.records.iter_mut() {
                r.durable = true;
            }
            return Ok(size);
        }
        Ok(0)
    }

    /// Force any buffered async bytes to the device.
    pub fn sync(&mut self) -> Result<u64> {
        if self.pending_async == 0 {
            return Ok(0);
        }
        let size = self.pending_async;
        self.device_write(size)?;
        self.pending_async = 0;
        for r in self.records.iter_mut() {
            r.durable = true;
        }
        Ok(size)
    }

    /// Cumulative count of records ever appended (freeze marks).
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Drop buffered records up to cumulative mark `mark` (their memtable
    /// is durable in L0 now).
    pub fn drop_through(&mut self, mark: u64) {
        while self.dropped_records < mark {
            if self.records.pop_front().is_none() {
                break;
            }
            self.dropped_records += 1;
        }
    }

    /// Replayable records (oldest first). `durable_only` models a power
    /// failure: async records never written to the device are lost.
    pub fn replay_records(&self, durable_only: bool) -> Vec<&[BatchOp]> {
        self.records
            .iter()
            .filter(|r| !durable_only || r.durable)
            .map(|r| r.ops.as_slice())
            .collect()
    }

    /// Simulate a crash: discard records that never reached the device.
    pub fn drop_volatile(&mut self) {
        let before = self.records.len() as u64;
        self.records.retain(|r| r.durable);
        let lost = before - self.records.len() as u64;
        // Lost records still advanced appended_records; account them as
        // dropped so later marks stay consistent.
        self.dropped_records += lost;
        self.pending_async = 0;
    }

    /// Number of currently buffered (replayable) records.
    pub fn buffered_len(&self) -> usize {
        self.records.len()
    }

    /// Total bytes ever charged to the device.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_device::{Nvram, NvramConfig};
    use bytes::Bytes;

    fn ops(n: usize) -> Vec<BatchOp> {
        (0..n)
            .map(|i| {
                (
                    Bytes::from(format!("key{i:04}")),
                    Some(Bytes::from(vec![0u8; 100])),
                )
            })
            .collect()
    }

    fn wal() -> Wal {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g().with_capacity(1 << 20)));
        Wal::new(dev, 1 << 20)
    }

    #[test]
    fn sync_append_charges_device() {
        let mut w = wal();
        let charged = w.append_sync(&ops(3)).unwrap();
        assert!(charged > 0);
        assert_eq!(w.buffered_len(), 1);
        assert_eq!(w.appended_records(), 1);
        assert_eq!(w.appended_bytes(), charged);
    }

    #[test]
    fn async_appends_group_commit() {
        let mut w = wal();
        let mut charged_total = 0;
        let mut writes = 0;
        for _ in 0..100 {
            let c = w.append_async(&ops(1), 4096).unwrap();
            if c > 0 {
                writes += 1;
                charged_total += c;
            }
        }
        assert!(writes < 100, "grouping did not happen");
        assert!(writes > 0);
        assert!(charged_total > 0);
        assert_eq!(w.buffered_len(), 100);
    }

    #[test]
    fn sync_flushes_pending_async() {
        let mut w = wal();
        w.append_async(&ops(1), u64::MAX).unwrap();
        assert_eq!(w.replay_records(true).len(), 0);
        let c = w.sync().unwrap();
        assert!(c > 0);
        assert_eq!(w.replay_records(true).len(), 1);
        assert_eq!(w.sync().unwrap(), 0);
    }

    #[test]
    fn drop_through_uses_cumulative_marks() {
        let mut w = wal();
        for _ in 0..5 {
            w.append_sync(&ops(1)).unwrap();
        }
        let mark = w.appended_records(); // 5
        for _ in 0..3 {
            w.append_sync(&ops(1)).unwrap();
        }
        w.drop_through(mark);
        assert_eq!(w.buffered_len(), 3);
        // Dropping the same mark again is a no-op.
        w.drop_through(mark);
        assert_eq!(w.buffered_len(), 3);
        w.drop_through(w.appended_records());
        assert_eq!(w.buffered_len(), 0);
    }

    #[test]
    fn crash_loses_only_volatile_records() {
        let mut w = wal();
        w.append_sync(&ops(1)).unwrap();
        w.append_async(&ops(2), u64::MAX).unwrap();
        assert_eq!(w.replay_records(false).len(), 2);
        w.drop_volatile();
        let kept = w.replay_records(false);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].len(), 1);
    }

    #[test]
    fn sync_append_makes_prior_async_durable() {
        let mut w = wal();
        w.append_async(&ops(1), u64::MAX).unwrap();
        w.append_sync(&ops(1)).unwrap();
        assert_eq!(w.replay_records(true).len(), 2);
    }

    #[test]
    fn batched_record_smaller_than_singles() {
        let batch = ops(10);
        let batched = Wal::encoded_size(&batch);
        let singles: u64 = batch
            .iter()
            .map(|op| Wal::encoded_size(std::slice::from_ref(op)))
            .sum();
        assert_eq!(singles - batched, 9 * RECORD_HEADER);
    }
}
