//! Atomic write batches.
//!
//! A [`WriteBatch`] applies all of its operations atomically: one WAL record,
//! one memtable pass. The light-weight transaction optimization (§3.4) turns
//! a filestore transaction's N omap/PG-log puts into one batch; the baseline
//! path issues one single-op batch per key.

use crate::{Key, Value};

/// One operation inside a batch. `None` value is a delete (tombstone).
pub type BatchOp = (Key, Option<Value>);

/// An ordered set of puts/deletes applied atomically.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a put.
    pub fn put(&mut self, key: impl Into<Key>, value: impl Into<Value>) -> &mut Self {
        self.ops.push((key.into(), Some(value.into())));
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: impl Into<Key>) -> &mut Self {
        self.ops.push((key.into(), None));
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations in insertion order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Consume into the op list.
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }

    /// Total payload bytes (keys + values), the "user bytes" of the batch.
    pub fn payload_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|(k, v)| k.len() as u64 + v.as_ref().map(|v| v.len() as u64).unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_in_order() {
        let mut b = WriteBatch::new();
        b.put(&b"a"[..], &b"1"[..])
            .delete(&b"b"[..])
            .put(&b"c"[..], &b"33"[..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.ops()[0].0.as_ref(), b"a");
        assert!(b.ops()[1].1.is_none());
        assert_eq!(b.payload_bytes(), 1 + 1 + 1 + 1 + 2);
    }

    #[test]
    fn empty_batch() {
        let b = WriteBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.payload_bytes(), 0);
        assert_eq!(b.into_ops().len(), 0);
    }

    #[test]
    fn duplicate_keys_keep_insertion_order() {
        let mut b = WriteBatch::new();
        b.put(&b"k"[..], &b"old"[..]).put(&b"k"[..], &b"new"[..]);
        let ops = b.into_ops();
        assert_eq!(ops[1].1.as_ref().unwrap().as_ref(), b"new");
    }
}
