//! Immutable sorted runs (SSTables).
//!
//! An SSTable is a sorted vector of `(key, value-or-tombstone)` plus a tiny
//! hash filter so point lookups skip tables that cannot contain the key —
//! the structure that makes L0 pile-ups expensive (every L0 table may need
//! probing) and compaction worthwhile.

use crate::batch::BatchOp;
use crate::Value;
use afc_common::rng::hash_bytes;

/// An immutable sorted run.
#[derive(Debug)]
pub struct SsTable {
    id: u64,
    entries: Vec<BatchOp>,
    /// Key-hash filter (sorted), probed before binary search.
    filter: Vec<u64>,
    bytes: u64,
}

impl SsTable {
    /// Build a table from sorted, deduplicated ops. Panics (debug) if the
    /// input is unsorted — callers construct from `BTreeMap` iterations.
    pub fn build(id: u64, entries: Vec<BatchOp>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "unsorted sstable input"
        );
        let bytes = entries
            .iter()
            .map(|(k, v)| k.len() as u64 + v.as_ref().map(|v| v.len() as u64).unwrap_or(0) + 8)
            .sum();
        let mut filter: Vec<u64> = entries.iter().map(|(k, _)| hash_bytes(k)).collect();
        filter.sort_unstable();
        SsTable {
            id,
            entries,
            filter,
            bytes,
        }
    }

    /// Table id (monotonic; larger = newer).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Encoded size in bytes (what flushing/compacting charges the device).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.entries.first().map(|(k, _)| k.as_ref())
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.entries.last().map(|(k, _)| k.as_ref())
    }

    /// Point lookup. `Some(None)` = tombstone.
    pub fn get(&self, key: &[u8]) -> Option<Option<Value>> {
        if self.filter.binary_search(&hash_bytes(key)).is_err() {
            return None;
        }
        self.entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| self.entries[i].1.clone())
    }

    /// Entries with `lo <= key < hi` in key order.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> &[BatchOp] {
        let start = self.entries.partition_point(|(k, _)| k.as_ref() < lo);
        let end = self.entries.partition_point(|(k, _)| k.as_ref() < hi);
        &self.entries[start..end]
    }

    /// All entries in key order.
    pub fn entries(&self) -> &[BatchOp] {
        &self.entries
    }
}

/// Merge several runs (newest first) into one sorted, deduplicated run.
/// `drop_tombstones` is set when merging into the bottom level.
pub fn merge_runs(newest_first: &[&[BatchOp]], drop_tombstones: bool) -> Vec<BatchOp> {
    // Newest-wins: insert older runs only where the key is absent.
    let mut map: std::collections::BTreeMap<crate::Key, Option<Value>> =
        std::collections::BTreeMap::new();
    for run in newest_first {
        for (k, v) in *run {
            map.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }
    map.into_iter()
        .filter(|(_, v)| !(drop_tombstones && v.is_none()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn op(k: &str, v: Option<&str>) -> BatchOp {
        (
            Bytes::copy_from_slice(k.as_bytes()),
            v.map(|v| Bytes::copy_from_slice(v.as_bytes())),
        )
    }

    fn table(id: u64, items: &[(&str, Option<&str>)]) -> SsTable {
        SsTable::build(id, items.iter().map(|(k, v)| op(k, *v)).collect())
    }

    #[test]
    fn point_lookup_and_filter() {
        let t = table(1, &[("a", Some("1")), ("c", None), ("e", Some("5"))]);
        assert_eq!(t.get(b"a").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(t.get(b"c"), Some(None));
        assert_eq!(t.get(b"b"), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.min_key(), Some(b"a" as &[u8]));
        assert_eq!(t.max_key(), Some(b"e" as &[u8]));
    }

    #[test]
    fn range_query() {
        let t = table(
            1,
            &[
                ("a", Some("1")),
                ("b", Some("2")),
                ("c", Some("3")),
                ("d", Some("4")),
            ],
        );
        let r = t.range(b"b", b"d");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0.as_ref(), b"b");
        assert_eq!(r[1].0.as_ref(), b"c");
        assert!(t.range(b"x", b"z").is_empty());
    }

    #[test]
    fn bytes_accounts_payload() {
        let t = table(1, &[("key", Some("value"))]);
        assert_eq!(t.bytes(), 3 + 5 + 8);
    }

    #[test]
    fn merge_newest_wins() {
        let newer = [op("a", Some("new")), op("b", None)];
        let older = [op("a", Some("old")), op("b", Some("2")), op("c", Some("3"))];
        let merged = merge_runs(&[&newer, &older], false);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].1.as_ref().unwrap().as_ref(), b"new");
        assert_eq!(merged[1].1, None); // tombstone preserved
        assert_eq!(merged[2].1.as_ref().unwrap().as_ref(), b"3");
    }

    #[test]
    fn merge_drops_tombstones_at_bottom() {
        let newer = [op("b", None)];
        let older = [op("a", Some("1")), op("b", Some("2"))];
        let merged = merge_runs(&[&newer, &older], true);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].0.as_ref(), b"a");
    }

    #[test]
    fn empty_table() {
        let t = SsTable::build(9, Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.min_key(), None);
    }
}
