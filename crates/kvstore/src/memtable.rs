//! The in-memory sorted write buffer.

use crate::batch::BatchOp;
use crate::{Key, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory table. `None` values are tombstones, which must be
/// preserved until compaction drops them at the bottom level.
#[derive(Debug, Default, Clone)]
pub struct MemTable {
    map: BTreeMap<Key, Option<Value>>,
    approx_bytes: u64,
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one op, maintaining the size estimate.
    pub fn apply(&mut self, key: Key, value: Option<Value>) {
        let add = key.len() as u64 + value.as_ref().map(|v| v.len() as u64).unwrap_or(0) + 16;
        if let Some(old) = self.map.insert(key, value) {
            let remove = old.map(|v| v.len() as u64).unwrap_or(0);
            self.approx_bytes = self.approx_bytes.saturating_sub(remove);
            self.approx_bytes += add.saturating_sub(16); // key already counted
        } else {
            self.approx_bytes += add;
        }
    }

    /// Apply a slice of batch ops.
    pub fn apply_ops(&mut self, ops: &[BatchOp]) {
        for (k, v) in ops {
            self.apply(k.clone(), v.clone());
        }
    }

    /// Look a key up. `Some(None)` means "deleted here" (stop searching).
    pub fn get(&self, key: &[u8]) -> Option<Option<Value>> {
        self.map.get(key).cloned()
    }

    /// Entries with `lo <= key < hi`, in key order.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> impl Iterator<Item = (&Key, &Option<Value>)> {
        self.map
            .range::<[u8], _>((Bound::Included(lo), Bound::Excluded(hi)))
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Estimated resident bytes (keys + values + fixed overhead).
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// Drain into a sorted op vector (for SSTable construction).
    pub fn into_sorted_ops(self) -> Vec<BatchOp> {
        self.map.into_iter().collect()
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Option<Value>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_overwrite() {
        let mut m = MemTable::new();
        m.apply(k("a"), Some(k("1")));
        m.apply(k("a"), Some(k("2")));
        assert_eq!(m.get(b"a"), Some(Some(k("2"))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstone_is_visible() {
        let mut m = MemTable::new();
        m.apply(k("a"), Some(k("1")));
        m.apply(k("a"), None);
        assert_eq!(m.get(b"a"), Some(None));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn range_is_half_open_and_sorted() {
        let mut m = MemTable::new();
        for s in ["d", "a", "c", "b", "e"] {
            m.apply(k(s), Some(k("v")));
        }
        let keys: Vec<&[u8]> = m.range(b"b", b"e").map(|(key, _)| key.as_ref()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c", b"d"]);
    }

    #[test]
    fn size_estimate_grows_and_tracks_overwrites() {
        let mut m = MemTable::new();
        m.apply(k("key1"), Some(Bytes::from(vec![0u8; 100])));
        let s1 = m.approx_bytes();
        assert!(s1 >= 104);
        m.apply(k("key1"), Some(Bytes::from(vec![0u8; 10])));
        assert!(m.approx_bytes() < s1);
        m.apply(k("key2"), Some(Bytes::from(vec![0u8; 50])));
        assert!(m.approx_bytes() > 60);
    }

    #[test]
    fn into_sorted_ops_ordered() {
        let mut m = MemTable::new();
        for s in ["z", "m", "a"] {
            m.apply(k(s), Some(k("v")));
        }
        let ops = m.into_sorted_ops();
        let keys: Vec<&[u8]> = ops.iter().map(|(key, _)| key.as_ref()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"m", b"z"]);
    }
}
