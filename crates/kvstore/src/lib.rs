//! An LSM-tree key-value store — the LevelDB/RocksDB substrate.
//!
//! Ceph's filestore keeps object omap data and the PG log in an LSM
//! key-value DB. The paper's light-weight transaction work exists largely
//! because of this component's behaviour under small random writes:
//!
//! - **Write amplification** (§3.4): "when a client writes a total of 2GB
//!   using 4MB block size, 30MB of additional data is written. However, if
//!   the block size is 4KB instead, 2GB of additional data is written."
//!   Compaction rewrites resident data; the smaller the entries, the more
//!   often levels churn. [`DbStats::write_amplification`] exposes the ratio.
//! - **Unstable latency**: "latency of each requested operation becomes
//!   unstable because key-value DB performs compaction or construction of
//!   immutable table". We reproduce this with real background flush and
//!   compaction plus write **stalls** when they fall behind.
//! - **Batched insertion**: the light-weight transaction folds all of a
//!   transaction's keys into one [`WriteBatch`] (one WAL device write, one
//!   memtable pass) instead of one put per key.
//!
//! Structure: an active [`memtable::MemTable`] backed by a WAL on the
//! configured device; frozen memtables flush to L0 SSTables; L0 compacts
//! into a single sorted L1 run. All device traffic (WAL appends, flushes,
//! compaction reads/writes) is charged to the underlying [`afc_device::BlockDev`] so
//! upper layers see realistic timing and the stats see real amplification.

pub mod batch;
pub mod compaction;
pub mod db;
pub mod memtable;
pub mod sstable;
pub mod stats;
pub mod wal;

pub use batch::WriteBatch;
pub use db::{Db, DbConfig, WriteOptions};
pub use stats::DbStats;

/// Key type (cheaply clonable).
pub type Key = bytes::Bytes;
/// Value type (cheaply clonable).
pub type Value = bytes::Bytes;
